"""Root pytest configuration.

Puts ``src`` on the import path (so a bare ``pytest`` works without
``PYTHONPATH=src``) and registers the SPMD leak-guard plugin
(:mod:`repro.verify.pytest_plugin`): every test fails if it leaves
behind a live, never-completed nonblocking request.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

pytest_plugins = ("repro.verify.pytest_plugin",)
