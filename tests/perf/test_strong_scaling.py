"""Unit tests for the strong-scaling study."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perf.scaling import StrongScalingStudy


@pytest.fixture(scope="module")
def study():
    return StrongScalingStudy(
        n_dof=262144, n_snapshots=800, k=10, r1=50, calibrate=False
    )


class TestStrongScalingShape:
    def test_near_linear_speedup_at_small_p(self, study):
        result = study.run([1, 2, 4, 8])
        speedups = study.speedups(result)
        assert speedups[1] > 1.8
        assert speedups[2] > 3.5
        assert speedups[3] > 6.5

    def test_compute_term_shrinks(self, study):
        assert study.point(8).compute_s < study.point(1).compute_s / 6

    def test_communication_grows(self, study):
        assert study.point(64).gather_s > study.point(2).gather_s

    def test_turnover_exists(self, study):
        """The strong-scaling wall: beyond some p, more ranks hurt."""
        turnover = study.turnover_ranks()
        assert 8 <= turnover < 1 << 20
        # past the turnover the time actually increases
        t_turn = study.point(turnover).total_s
        t_past = study.point(turnover * 4).total_s
        assert t_past > t_turn

    def test_speedup_not_superlinear(self, study):
        result = study.run([1, 2, 4, 8, 16])
        speedups = study.speedups(result)
        assert np.all(speedups <= result.ranks + 1e-9)

    def test_run_validation(self, study):
        with pytest.raises(ConfigurationError):
            study.run([])
        with pytest.raises(ConfigurationError):
            study.run([8, 4])
        with pytest.raises(ConfigurationError):
            study.point(0)

    def test_construction_validation(self):
        with pytest.raises(ConfigurationError):
            StrongScalingStudy(n_dof=0, calibrate=False)

    def test_calibrated_runs(self):
        study = StrongScalingStudy(
            n_dof=8192, n_snapshots=64, k=4, r1=8, calibrate=True
        )
        result = study.run([1, 2, 4])
        assert np.all(result.times > 0)
        assert study.speedups(result)[1] > 1.0
