"""Unit tests for the machine models."""

import pytest

from repro.exceptions import ConfigurationError
from repro.perf.machine import LAPTOP, THETA_KNL, MachineModel


class TestPresets:
    def test_theta_parameters(self):
        assert THETA_KNL.ranks_per_node == 64
        assert THETA_KNL.flops_per_second > 1e9
        assert THETA_KNL.latency_s > 0

    def test_laptop_exists(self):
        assert LAPTOP.name == "laptop"


class TestCosts:
    @pytest.fixture
    def machine(self):
        return MachineModel(
            name="unit",
            flops_per_second=1e9,
            latency_s=1e-6,
            bandwidth_bytes_per_s=1e9,
            ranks_per_node=4,
        )

    def test_compute_seconds(self, machine):
        assert machine.compute_seconds(1e9) == pytest.approx(1.0)
        assert machine.compute_seconds(0) == 0.0

    def test_p2p_alpha_beta(self, machine):
        assert machine.p2p_seconds(0) == pytest.approx(1e-6)
        assert machine.p2p_seconds(1e9) == pytest.approx(1.0 + 1e-6)

    def test_gather_linear_in_ranks(self, machine):
        t4 = machine.gather_seconds(4, 1000)
        t8 = machine.gather_seconds(8, 1000)
        assert t8 == pytest.approx(t4 * 7 / 3)

    def test_gather_single_rank_free(self, machine):
        assert machine.gather_seconds(1, 1000) == 0.0

    def test_bcast_logarithmic(self, machine):
        t2 = machine.bcast_seconds(2, 1000)
        t16 = machine.bcast_seconds(16, 1000)
        assert t16 == pytest.approx(4 * t2)

    def test_bcast_single_rank_free(self, machine):
        assert machine.bcast_seconds(1, 1e6) == 0.0

    def test_nodes_for(self, machine):
        assert machine.nodes_for(8) == 2.0

    def test_validation(self, machine):
        with pytest.raises(ConfigurationError):
            machine.compute_seconds(-1)
        with pytest.raises(ConfigurationError):
            machine.gather_seconds(0, 10)
        with pytest.raises(ConfigurationError):
            machine.p2p_seconds(-5)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            MachineModel("x", -1, 1e-6, 1e9)
        with pytest.raises(ConfigurationError):
            MachineModel("x", 1e9, -1e-6, 1e9)
        with pytest.raises(ConfigurationError):
            MachineModel("x", 1e9, 1e-6, 0)
        with pytest.raises(ConfigurationError):
            MachineModel("x", 1e9, 1e-6, 1e9, ranks_per_node=0)
