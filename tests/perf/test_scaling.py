"""Unit tests for the weak-scaling study."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perf.machine import THETA_KNL
from repro.perf.scaling import (
    WeakScalingStudy,
    measure_effective_flops,
    measure_local_compute,
)


@pytest.fixture(scope="module")
def study():
    # analytic (calibrate=False) keeps the tests deterministic and fast
    return WeakScalingStudy(
        points_per_rank=1024, n_snapshots=800, k=10, r1=50,
        machine=THETA_KNL, calibrate=False,
    )


class TestMeasurement:
    def test_effective_flops_positive(self):
        rate = measure_effective_flops(size=64, repeats=2, rng=0)
        assert rate > 1e6

    def test_local_compute_positive(self):
        t = measure_local_compute(128, 40, 10, 4, repeats=2, rng=0)
        assert t > 0

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            measure_effective_flops(size=0)
        with pytest.raises(ConfigurationError):
            measure_local_compute(10, 10, 5, 2, repeats=0)


class TestModelShape:
    def test_compute_term_constant(self, study):
        result = study.run([1, 16, 256, 4096])
        computes = [p.compute_s for p in result.points]
        assert len(set(computes)) == 1

    def test_communication_grows(self, study):
        result = study.run([2, 64, 1024, 16384])
        gathers = [p.gather_s for p in result.points]
        assert all(a < b for a, b in zip(gathers, gathers[1:]))

    def test_near_ideal_at_small_scale(self, study):
        """Weak scaling stays near ideal at modest rank counts (the paper:
        'scaling is seen to follow the ideal trend appropriately')."""
        result = study.run([1, 2, 4, 8, 16, 32, 64])
        assert result.efficiency[-1] > 0.8

    def test_efficiency_degrades_monotonically(self, study):
        result = study.run(study.paper_rank_counts(max_nodes=256))
        assert np.all(np.diff(result.efficiency) <= 1e-12)

    def test_total_is_sum_of_parts(self, study):
        p = study.point(64)
        assert p.total_s == pytest.approx(
            p.compute_s + p.root_svd_s + p.gather_s + p.bcast_s
        )

    def test_nodes_reported(self, study):
        p = study.point(128)
        assert p.nodes == pytest.approx(2.0)

    def test_paper_rank_counts(self, study):
        counts = study.paper_rank_counts(max_nodes=256)
        assert counts[0] == 1
        assert counts[-1] == 16384
        assert all(b == 2 * a for a, b in zip(counts, counts[1:]))

    def test_run_validation(self, study):
        with pytest.raises(ConfigurationError):
            study.run([])
        with pytest.raises(ConfigurationError):
            study.run([4, 2])
        with pytest.raises(ConfigurationError):
            study.run([0, 2])


class TestTrafficValidation:
    def test_model_matches_runtime(self):
        study = WeakScalingStudy(
            points_per_rank=64, n_snapshots=24, k=3, r1=6, calibrate=False
        )
        report = study.validate_traffic(3)
        assert report["measured_gather_root"] == report["model_gather_root"]
        assert report["measured_bcast"] == report["model_bcast"]

    def test_single_rank_traffic_zero(self):
        study = WeakScalingStudy(
            points_per_rank=32, n_snapshots=16, k=2, r1=4, calibrate=False
        )
        report = study.validate_traffic(1)
        assert report["measured_gather_root"] == 0
        assert report["model_gather_root"] == 0


class TestConstruction:
    def test_calibrated_study_runs(self):
        study = WeakScalingStudy(
            points_per_rank=64, n_snapshots=24, k=3, r1=6, calibrate=True
        )
        result = study.run([1, 2, 4])
        assert np.all(result.times > 0)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            WeakScalingStudy(points_per_rank=0)
