"""Unit tests for the flop/traffic cost formulas."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.perf.costs import (
    apmos_local_flops,
    apmos_root_svd_flops,
    apmos_traffic,
    flops_eigh,
    flops_gemm,
    flops_qr,
    flops_svd,
)


class TestFlopCounts:
    def test_gemm(self):
        assert flops_gemm(2, 3, 4) == 48.0

    def test_qr_scaling(self):
        # doubling rows doubles the dominant 2mn^2 term
        small = flops_qr(100, 10)
        large = flops_qr(200, 10)
        assert large / small == pytest.approx(2.0, rel=0.05)

    def test_svd_handles_wide(self):
        assert flops_svd(10, 100) == flops_svd(100, 10)

    def test_eigh_cubic(self):
        assert flops_eigh(20) / flops_eigh(10) == pytest.approx(8.0)

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            flops_qr(0, 3)
        with pytest.raises(ConfigurationError):
            flops_gemm(2, -1, 3)


class TestApmosTraffic:
    def test_exact_bytes(self):
        t = apmos_traffic(p=4, n=40, r1=10, k=4)
        assert t.gather_bytes_per_rank == 40 * 10 * 8
        assert t.gather_bytes_root_total == 3 * 40 * 10 * 8
        assert t.bcast_bytes == (40 * 4 + 4) * 8

    def test_r1_clipped_to_n(self):
        t = apmos_traffic(p=2, n=5, r1=100, k=3)
        assert t.gather_bytes_per_rank == 5 * 5 * 8

    def test_k_clipped_to_n(self):
        t = apmos_traffic(p=2, n=3, r1=3, k=50)
        assert t.bcast_bytes == (3 * 3 + 3) * 8

    def test_single_rank_no_gather(self):
        t = apmos_traffic(p=1, n=10, r1=5, k=2)
        assert t.gather_bytes_root_total == 0

    def test_itemsize(self):
        t8 = apmos_traffic(p=2, n=10, r1=5, k=2, itemsize=8)
        t4 = apmos_traffic(p=2, n=10, r1=5, k=2, itemsize=4)
        assert t8.gather_bytes_per_rank == 2 * t4.gather_bytes_per_rank

    def test_matches_measured_bytes(self):
        """The formulas must equal the tracer-recorded traffic exactly."""
        from repro.perf.scaling import WeakScalingStudy

        study = WeakScalingStudy(
            points_per_rank=64, n_snapshots=30, k=3, r1=8, calibrate=False
        )
        for ranks in (2, 3, 4):
            report = study.validate_traffic(ranks)
            assert report["measured_gather_root"] == report["model_gather_root"]
            assert report["measured_bcast"] == report["model_bcast"]


class TestApmosFlops:
    def test_local_flops_grow_with_m(self):
        small = apmos_local_flops(100, 40, 10, 4)
        large = apmos_local_flops(200, 40, 10, 4)
        assert large > small

    def test_methods_differ(self):
        mos = apmos_local_flops(1000, 50, 10, 4, method="mos")
        svd = apmos_local_flops(1000, 50, 10, 4, method="svd")
        assert mos != svd
        with pytest.raises(ConfigurationError):
            apmos_local_flops(10, 5, 2, 2, method="bogus")

    def test_root_svd_grows_linearly_when_randomized(self):
        f1 = apmos_root_svd_flops(64, 800, 50, 10, randomized=True)
        f2 = apmos_root_svd_flops(128, 800, 50, 10, randomized=True)
        assert f2 / f1 == pytest.approx(2.0, rel=0.15)

    def test_root_svd_superlinear_when_dense_and_narrow(self):
        # while r1 * p < n the dense SVD cost grows superlinearly in p
        f1 = apmos_root_svd_flops(4, 800, 50, 10, randomized=False)
        f2 = apmos_root_svd_flops(8, 800, 50, 10, randomized=False)
        assert f2 / f1 > 2.5

    def test_randomized_cheaper_at_scale(self):
        dense = apmos_root_svd_flops(1024, 800, 50, 10, randomized=False)
        rand = apmos_root_svd_flops(1024, 800, 50, 10, randomized=True)
        assert rand < dense
