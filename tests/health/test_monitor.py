"""`repro.health.HealthMonitor`: beat-age classification, retired/failed
rank handling, proactive escalation through ``World.fail_rank``, and the
``repro.health.*`` metrics it publishes."""

import time

import pytest

from repro.config import HealthConfig
from repro.exceptions import HealthError
from repro.health import (
    RANK_ALIVE,
    RANK_DEAD,
    RANK_STRAGGLER,
    RANK_SUSPECT,
    HealthMonitor,
)
from repro.obs import runtime as obs_rt
from repro.smpi.world import World

# alive <= 0.2s, straggler <= 1.0s, suspect <= 3.0s, dead beyond.
CFG = HealthConfig(
    enabled=True,
    heartbeat_interval=0.05,
    suspect_after=1.0,
    straggler_factor=4.0,
    dead_after=3.0,
)


def beaten_world(size=4):
    world = World(size)
    for rank in range(size):
        world.heartbeat(rank)
    return world, time.monotonic()


class TestConfig:
    def test_effective_dead_after_defaults_to_twice_suspect(self):
        assert HealthConfig(suspect_after=0.4).effective_dead_after == pytest.approx(0.8)
        assert CFG.effective_dead_after == pytest.approx(3.0)

    def test_thresholds_validated(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            HealthConfig(heartbeat_interval=0.0)
        with pytest.raises(ConfigurationError):
            HealthConfig(suspect_after=-1.0)
        with pytest.raises(ConfigurationError):
            HealthConfig(straggler_factor=0.0)

    def test_json_round_trip_carries_health_section(self):
        from repro.config import RunConfig

        cfg = RunConfig(health=CFG)
        clone = RunConfig.from_dict(cfg.to_dict())
        assert clone.health == CFG


class TestClassification:
    @pytest.mark.parametrize(
        "age, expected",
        [
            (0.0, RANK_ALIVE),
            (0.19, RANK_ALIVE),
            (0.5, RANK_STRAGGLER),
            (2.0, RANK_SUSPECT),
            (10.0, RANK_DEAD),
        ],
    )
    def test_beat_age_bands(self, age, expected):
        world, t0 = beaten_world()
        monitor = HealthMonitor(world, CFG)
        states = monitor.observe(now=t0 + age)
        assert states == {rank: expected for rank in range(4)}

    def test_failed_rank_is_dead_regardless_of_beat(self):
        world, t0 = beaten_world()
        world.fail_rank(2, RuntimeError("boom"))
        states = HealthMonitor(world, CFG).observe(now=t0)
        assert states[2] == RANK_DEAD
        assert all(states[r] == RANK_ALIVE for r in (0, 1, 3))

    def test_retired_rank_is_alive_regardless_of_beat(self):
        world, t0 = beaten_world()
        world.retire_rank(1)
        states = HealthMonitor(world, CFG).observe(now=t0 + 100.0)
        assert states[1] == RANK_ALIVE
        assert all(states[r] == RANK_DEAD for r in (0, 2, 3))

    def test_observe_has_no_side_effects(self):
        world, t0 = beaten_world()
        HealthMonitor(world, CFG).observe(now=t0 + 100.0)
        assert world.failed_ranks() == {}

    def test_has_unhealthy(self):
        world, t0 = beaten_world(2)
        monitor = HealthMonitor(world, CFG)
        assert not monitor.has_unhealthy()
        world.fail_rank(1, RuntimeError("boom"))
        assert monitor.has_unhealthy()

    def test_monitor_attaches_as_world_health(self):
        world, _ = beaten_world(2)
        monitor = HealthMonitor(world, CFG)
        assert world.health is monitor


class TestEscalation:
    def test_check_fails_newly_dead_rank_with_health_error(self):
        world, t0 = beaten_world(3)
        monitor = HealthMonitor(world, CFG)
        # Ranks 0 and 1 departed cleanly; rank 2 just went silent.
        world.retire_rank(0)
        world.retire_rank(1)
        monitor.check(now=t0 + 10.0)
        failed = world.failed_ranks()
        assert set(failed) == {2}
        assert isinstance(failed[2], HealthError)
        assert "declared dead" in str(failed[2])

    def test_check_is_idempotent_for_already_failed_ranks(self):
        world, t0 = beaten_world(2)
        world.retire_rank(0)
        monitor = HealthMonitor(world, CFG)
        monitor.check(now=t0 + 10.0)
        first = world.failed_ranks()[1]
        monitor.check(now=t0 + 20.0)
        assert world.failed_ranks()[1] is first

    def test_escalation_wakes_blocked_peer_before_deadlock_timeout(self):
        """The point of the monitor: a peer blocked on a dead rank wakes
        in milliseconds, not after the (30s here) deadlock timeout."""
        from repro.smpi import FailedRankError, create_communicator

        comms = create_communicator("threads", 2, timeout=30.0)
        comm = comms[0]
        world = comm.world
        cfg = HealthConfig(
            enabled=True, heartbeat_interval=0.01, suspect_after=0.02,
            dead_after=0.05,
        )
        monitor = HealthMonitor(world, cfg)
        world.heartbeat(0)
        world.heartbeat(1)

        import threading

        stop = threading.Event()

        def keep_checking():
            while not stop.is_set():
                world.heartbeat(0)
                monitor.check()
                time.sleep(0.01)

        checker = threading.Thread(target=keep_checking, daemon=True)
        checker.start()
        start = time.monotonic()
        try:
            with pytest.raises(FailedRankError, match="rank 1"):
                comm.recv(source=1, tag=77)  # rank 1 never sends nor beats
        finally:
            stop.set()
            checker.join(timeout=5.0)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, f"woke after {elapsed:.3f}s — timeout burned"


class TestMetrics:
    def test_check_publishes_counters_and_gauges(self):
        obs_rt.install(metrics=True)
        try:
            world, t0 = beaten_world(3)
            monitor = HealthMonitor(world, CFG)
            world.retire_rank(2)
            monitor.check(now=t0 + 10.0)  # ranks 0,1 stale -> declared dead
            snap = obs_rt.default_registry().snapshot()
            counters, gauges = snap["counters"], snap["gauges"]
            assert counters["repro.health.checks"]["value"] >= 1
            assert counters["repro.health.deaths_declared"]["value"] == 2
            assert gauges["repro.health.dead_ranks"] == 2
            assert gauges["repro.health.alive_ranks"] == 1  # the retiree
            assert gauges["repro.health.suspect_ranks"] == 0
            assert gauges["repro.health.straggler_ranks"] == 0
        finally:
            obs_rt.uninstall()

    def test_disabled_observability_costs_nothing(self):
        assert obs_rt.state() is None
        world, t0 = beaten_world(2)
        monitor = HealthMonitor(world, CFG)
        monitor.check(now=t0)  # must not raise without a registry
