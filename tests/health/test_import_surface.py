"""Import surface: the failure/health taxonomy is reachable from
``repro.exceptions`` AND the package root, and the names are the same
objects wherever they are imported from."""

import repro
import repro.api
import repro.exceptions
import repro.health
import repro.smpi
import repro.smpi.exceptions


class TestExceptionSurface:
    def test_smpi_errors_reexported_from_repro_exceptions(self):
        assert (
            repro.exceptions.DeadlockError
            is repro.smpi.exceptions.DeadlockError
        )
        assert (
            repro.exceptions.FailedRankError
            is repro.smpi.exceptions.FailedRankError
        )
        assert repro.exceptions.SmpiError is repro.smpi.exceptions.SmpiError

    def test_top_level_matches_repro_exceptions(self):
        for name in (
            "DeadlockError",
            "FailedRankError",
            "HealthError",
            "RescaleError",
        ):
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(
                repro.exceptions, name
            ), name

    def test_smpi_surface_still_exports_them(self):
        assert repro.smpi.DeadlockError is repro.exceptions.DeadlockError
        assert repro.smpi.FailedRankError is repro.exceptions.FailedRankError

    def test_hierarchy(self):
        exc = repro.exceptions
        assert issubclass(exc.FailedRankError, exc.SmpiError)
        assert issubclass(exc.DeadlockError, exc.SmpiError)
        assert issubclass(exc.HealthError, exc.ReproError)
        assert issubclass(exc.HealthError, RuntimeError)
        assert issubclass(exc.RescaleError, exc.HealthError)

    def test_failed_rank_error_carries_ranks(self):
        err = repro.exceptions.FailedRankError("two down", failed_ranks=(1, 3))
        assert err.failed_ranks == (1, 3)

    def test_catching_communicator_error_covers_failures(self):
        from repro.smpi.exceptions import CommunicatorError

        assert issubclass(repro.exceptions.FailedRankError, CommunicatorError)
        assert issubclass(repro.exceptions.DeadlockError, CommunicatorError)
        # RescaleError is deliberately NOT recoverable-by-retry.
        assert not issubclass(repro.exceptions.RescaleError, CommunicatorError)


class TestHealthSurface:
    def test_health_config_in_api_and_root(self):
        assert "HealthConfig" in repro.api.__all__
        assert "HealthConfig" in repro.__all__
        assert repro.HealthConfig is repro.api.HealthConfig

    def test_health_package_exports(self):
        for name in ("HealthMonitor", "ProgressDaemon", "ElasticSession"):
            assert name in repro.health.__all__, name
            assert name in repro.__all__, name
            assert getattr(repro, name) is getattr(repro.health, name), name

    def test_rank_states_exported(self):
        assert repro.health.RANK_ALIVE == "alive"
        assert repro.health.RANK_DEAD == "dead"
        assert set(repro.health.__all__) >= {
            "RANK_ALIVE",
            "RANK_STRAGGLER",
            "RANK_SUSPECT",
            "RANK_DEAD",
        }
