"""`repro.health.ProgressDaemon`: heartbeating, background completion of
overlapped pipelined steps (no explicit access), retirement on clean
stop, error capture, and the timed dead-rank declaration that beats the
deadlock timeout."""

import threading
import time

import numpy as np
import pytest

from repro.config import HealthConfig, SolverConfig
from repro.core import ParSVDParallel
from repro.health import HealthMonitor, ProgressDaemon, communicator_world
from repro.obs import runtime as obs_rt
from repro.smpi import FailedRankError, create_communicator
from repro.smpi.selfcomm import SelfCommunicator
from repro.smpi.world import World


class TestCommunicatorWorld:
    def test_threads_comm_resolves_world_and_rank(self):
        comms = create_communicator("threads", 2)
        world, rank = communicator_world(comms[1])
        assert world is comms[1].world
        assert rank == 1

    def test_selfcomm_degrades_to_none(self):
        assert communicator_world(SelfCommunicator()) == (None, None)

    def test_unwraps_proxy_chains(self):
        class Wrapper:
            def __init__(self, inner):
                self.inner = inner

        comms = create_communicator("threads", 2)
        world, rank = communicator_world(Wrapper(Wrapper(comms[0])))
        assert world is comms[0].world
        assert rank == 0


class TestHeartbeat:
    def test_daemon_beats_and_retires_on_stop(self):
        world = World(2)
        before = world.last_beat(0)
        daemon = ProgressDaemon(0.01, world=world, world_rank=0).start()
        try:
            deadline = time.monotonic() + 5.0
            while world.last_beat(0) <= before:
                assert time.monotonic() < deadline, "no beat within 5s"
                time.sleep(0.005)
        finally:
            daemon.stop(retire=True)
        assert 0 in world.retired_ranks()
        assert not daemon.running

    def test_stop_without_retire_leaves_rank_active(self):
        world = World(2)
        daemon = ProgressDaemon(0.01, world=world, world_rank=0).start()
        daemon.stop(retire=False)
        assert 0 not in world.retired_ranks()

    def test_beats_are_metered(self):
        obs_rt.install(metrics=True)
        try:
            world = World(1)
            daemon = ProgressDaemon(0.01, world=world, world_rank=0).start()
            time.sleep(0.1)
            daemon.stop()
            counters = obs_rt.default_registry().snapshot()["counters"]
            assert counters["repro.health.beats"]["value"] >= 1
        finally:
            obs_rt.uninstall()


class TestAdvance:
    def test_advance_error_is_captured_and_daemon_keeps_beating(self):
        world = World(1)

        def exploding():
            raise ValueError("poisoned step")

        daemon = ProgressDaemon(
            0.01, world=world, world_rank=0, advance=exploding
        ).start()
        try:
            deadline = time.monotonic() + 5.0
            while daemon.error is None:
                assert time.monotonic() < deadline, "error never captured"
                time.sleep(0.005)
            assert isinstance(daemon.error, ValueError)
            before = world.last_beat(0)
            deadline = time.monotonic() + 5.0
            while world.last_beat(0) <= before:
                assert time.monotonic() < deadline, "beat stopped after error"
                time.sleep(0.005)
        finally:
            daemon.stop()

    def test_daemon_completes_overlapped_step_without_access(self):
        """The tentpole behaviour: with daemons running, an overlap=True
        step posted by ``incorporate_data`` reaches completion without
        anyone touching the driver again."""
        ranks = 2
        comms = create_communicator("threads", ranks)
        solver = SolverConfig(K=4, ff=1.0, qr_variant="gather", overlap=True)
        drivers = [ParSVDParallel(c, solver=solver) for c in comms]
        rng = np.random.default_rng(3)
        data = rng.standard_normal((32, 12))

        def feed(i):
            rows = np.array_split(data, ranks, axis=0)[i]
            drivers[i].initialize(rows[:, :6])
            drivers[i].incorporate_data(rows[:, 6:])  # posts, never finalizes

        threads = [
            threading.Thread(target=feed, args=(i,)) for i in range(ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert any(d.pending_update for d in drivers)

        daemons = []
        try:
            for i, (comm, driver) in enumerate(zip(comms, drivers)):
                world, world_rank = communicator_world(comm)
                daemons.append(
                    ProgressDaemon(
                        0.005,
                        world=world,
                        world_rank=world_rank,
                        advance=driver.try_finalize_pending,
                    ).start()
                )
            deadline = time.monotonic() + 10.0
            while any(d.pending_update for d in drivers):
                assert time.monotonic() < deadline, "daemons never finished it"
                time.sleep(0.005)
        finally:
            for daemon in daemons:
                daemon.stop()
        for daemon in daemons:
            assert daemon.error is None
        for driver in drivers:
            assert driver.singular_values.shape == (4,)


class TestTimedDeclaration:
    def test_dead_rank_declared_before_deadlock_timeout(self):
        """Acceptance: with a 30s deadlock timeout, a blocked peer must be
        woken by the health monitor in well under a second."""
        comms = create_communicator("threads", 2, timeout=30.0)
        comm = comms[0]
        world, world_rank = communicator_world(comm)
        cfg = HealthConfig(
            enabled=True,
            heartbeat_interval=0.01,
            suspect_after=0.03,
            dead_after=0.08,
        )
        monitor = HealthMonitor(world, cfg)
        world.heartbeat(1)  # rank 1 was alive once, then fell silent
        daemon = ProgressDaemon(
            cfg.heartbeat_interval,
            world=world,
            world_rank=world_rank,
            monitor=monitor,
        ).start()
        start = time.monotonic()
        try:
            with pytest.raises(FailedRankError, match="rank 1"):
                comm.recv(source=1, tag=9)
        finally:
            daemon.stop()
        elapsed = time.monotonic() - start
        assert elapsed < 5.0, (
            f"monitor took {elapsed:.3f}s — the 30s timeout did the work"
        )
