"""Unit tests for ASCII plotting."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.postprocessing.plots import (
    ascii_field,
    ascii_lineplot,
    plot_1d_modes,
    plot_mode_comparison,
    plot_singular_values,
    save_series_csv,
)


class TestLineplot:
    def test_renders_with_legend(self):
        out = ascii_lineplot({"a": np.sin(np.linspace(0, 6, 50))})
        assert "legend: *=a" in out
        assert out.count("\n") > 10

    def test_multiple_series_distinct_markers(self):
        out = ascii_lineplot({"x": np.ones(10), "y": np.zeros(10)})
        assert "*=x" in out and "o=y" in out

    def test_title(self):
        out = ascii_lineplot({"s": np.arange(5.0)}, title="my title")
        assert out.startswith("my title")

    def test_logy(self):
        out = ascii_lineplot({"s": np.array([1.0, 0.1, 0.01])}, logy=True)
        assert "(log10)" in out

    def test_constant_series_no_crash(self):
        out = ascii_lineplot({"c": np.full(8, 3.0)})
        assert "legend" in out

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            ascii_lineplot({})
        with pytest.raises(ShapeError):
            ascii_lineplot({"e": np.array([])})

    def test_too_small_canvas(self):
        with pytest.raises(ShapeError):
            ascii_lineplot({"s": np.ones(4)}, width=4, height=2)

    def test_dimensions(self):
        out = ascii_lineplot({"s": np.arange(10.0)}, width=40, height=10)
        body = [l for l in out.splitlines() if l.startswith("|")]
        assert len(body) == 10
        assert all(len(l) == 41 for l in body)


class TestField:
    def test_renders(self, rng):
        out = ascii_field(rng.standard_normal((20, 30)), title="field")
        assert out.startswith("field")
        assert "max=" in out and "min=" in out

    def test_constant_field(self):
        out = ascii_field(np.zeros((5, 5)))
        assert "max=" in out

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            ascii_field(np.ones(5))

    def test_row_count(self, rng):
        out = ascii_field(rng.standard_normal((10, 10)), height=12, width=20)
        rows = out.splitlines()
        # max line + 12 body rows + min line
        assert len(rows) == 14


class TestConvenienceWrappers:
    def test_plot_singular_values(self):
        out = plot_singular_values(np.array([1.0, 0.5, 0.1]))
        assert "sigma" in out

    def test_plot_1d_modes(self, rng):
        out = plot_1d_modes(rng.standard_normal((30, 3)), mode_indices=(0, 2))
        assert "mode1" in out and "mode3" in out

    def test_plot_1d_modes_bad_index(self, rng):
        with pytest.raises(ShapeError):
            plot_1d_modes(rng.standard_normal((30, 2)), mode_indices=(5,))

    def test_mode_comparison_aligns_signs(self, rng):
        ref = rng.standard_normal((30, 2))
        out = plot_mode_comparison(ref, -ref, mode=0)
        assert "serial" in out and "parallel" in out

    def test_mode_comparison_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            plot_mode_comparison(
                rng.standard_normal((30, 2)), rng.standard_normal((31, 2)), 0
            )


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = save_series_csv(
            tmp_path / "out.csv",
            {"x": np.arange(4.0), "y": np.arange(4.0) ** 2},
        )
        loaded = np.loadtxt(path, delimiter=",", skiprows=1)
        assert loaded.shape == (4, 2)
        assert np.allclose(loaded[:, 1], np.arange(4.0) ** 2)
        header = path.read_text().splitlines()[0]
        assert header == "x,y"

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ShapeError):
            save_series_csv(
                tmp_path / "bad.csv", {"a": np.ones(3), "b": np.ones(4)}
            )

    def test_empty_raises(self, tmp_path):
        with pytest.raises(ShapeError):
            save_series_csv(tmp_path / "e.csv", {})
