"""Unit tests for table/report formatting."""

import pytest

from repro.exceptions import ShapeError
from repro.postprocessing.report import format_table, scaling_report


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "--" in lines[1]
        assert len(lines) == 4

    def test_float_formatting(self):
        out = format_table(["v"], [[0.5], [1e-7], [12345.6]])
        assert "0.5" in out
        assert "1.000e-07" in out
        assert "1.235e+04" in out

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_string_cells(self):
        out = format_table(["name"], [["hello"]])
        assert "hello" in out

    def test_bool_cells(self):
        out = format_table(["flag"], [[True]])
        assert "True" in out

    def test_empty_rows_ok(self):
        out = format_table(["h"], [])
        assert "h" in out

    def test_no_headers_raises(self):
        with pytest.raises(ShapeError):
            format_table([], [])

    def test_ragged_row_raises(self):
        with pytest.raises(ShapeError):
            format_table(["a", "b"], [[1]])


class TestScalingReport:
    def test_ideal_and_efficiency(self):
        out = scaling_report([1, 2, 4], [1.0, 1.1, 1.25], label="weak")
        assert out.startswith("weak")
        assert "efficiency" in out
        # efficiency of point 0 is 1.0
        assert "1" in out.splitlines()[3]

    def test_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            scaling_report([1, 2], [1.0])

    def test_empty(self):
        with pytest.raises(ShapeError):
            scaling_report([], [])
