"""Property-based tests: nonblocking collectives and prefetched streams.

Covers the pipelined-engine contracts:

* nonblocking collectives complete correctly regardless of the order their
  requests are waited in (requests posted in the same program order on
  every rank, completed in arbitrary per-rank order);
* ``waitall`` is idempotent — repeated completion returns the same cached
  results without re-communicating;
* ``PrefetchStream`` yields exactly the wrapped stream's batches, in
  order, across backend x dtype when driving the distributed SVD.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ParSVDParallel
from repro.data import PrefetchStream, array_stream
from repro.smpi import SUM, run_backend, run_spmd, waitall
from repro.utils.partition import block_partition


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
    reverse=st.booleans(),
)
def test_completion_order_independence(nprocs, seed, reverse):
    """ibcast / iallreduce / igatherv_rows posted in order, completed in
    forward or reverse order, still produce the blocking results."""
    rng = np.random.default_rng(seed)
    payload = rng.standard_normal(5)
    contributions = rng.standard_normal((nprocs, 4))
    rows = [rng.standard_normal((r + 1, 3)) for r in range(nprocs)]
    stacked = np.concatenate(rows, axis=0)

    def job(comm):
        requests = [
            comm.ibcast(payload if comm.rank == 0 else None, root=0),
            comm.iallreduce(contributions[comm.rank], SUM),
            comm.igatherv_rows(rows[comm.rank], root=0),
        ]
        ordered = list(reversed(requests)) if reverse else list(requests)
        for request in ordered:
            request.wait()
        # Reading results again (post-completion) must be free and stable.
        bcast_v = requests[0].wait()
        reduced = requests[1].wait()
        gathered = requests[2].wait()
        return bcast_v, reduced, gathered

    expected = contributions[0].copy()
    for i in range(1, nprocs):
        expected = expected + contributions[i]
    for rank, (bcast_v, reduced, gathered) in enumerate(run_spmd(nprocs, job)):
        assert np.array_equal(bcast_v, payload)
        assert np.array_equal(reduced, expected)
        if rank == 0:
            assert np.array_equal(gathered, stacked)
        else:
            assert gathered is None


@settings(max_examples=15, deadline=None)
@given(nprocs=st.integers(1, 5), seed=st.integers(0, 2**31 - 1))
def test_waitall_idempotent(nprocs, seed):
    """waitall twice (and mixed with individual waits) returns identical
    results — completion is cached, never re-communicated."""
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 100, size=(nprocs, nprocs))

    def job(comm):
        requests = [
            comm.ialltoall([int(x) for x in table[comm.rank]]),
            comm.iallreduce(float(comm.rank), SUM),
        ]
        first = waitall(requests)
        second = waitall(requests)
        third = [requests[0].wait(), requests[1].wait()]
        assert first == second == third
        return first

    results = run_spmd(nprocs, job)
    expected_sum = float(sum(range(nprocs)))
    for rank, (received, reduced) in enumerate(results):
        assert received == [int(x) for x in table[:, rank]]
        assert reduced == expected_sum


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
    length=st.integers(1, 8),
)
def test_allreduce_out_matches_allocating_fold(nprocs, seed, length):
    """allreduce(out=) fills the caller's buffer with exactly the
    allocating fold's numbers, on every rank."""
    rng = np.random.default_rng(seed)
    contributions = rng.standard_normal((nprocs, length))

    def job(comm):
        plain = comm.allreduce(contributions[comm.rank], SUM)
        out = np.empty(length)
        filled = comm.allreduce(contributions[comm.rank], SUM, out=out)
        assert filled is out
        return np.asarray(plain), out

    for plain, filled in run_spmd(nprocs, job):
        assert np.array_equal(plain, filled)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    batch=st.integers(1, 7),
    n_batches=st.integers(1, 6),
    depth=st.integers(1, 3),
)
def test_prefetch_yields_wrapped_batches_in_order(
    seed, batch, n_batches, depth
):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((5, batch * n_batches))
    base = array_stream(data, batch)
    direct = list(base)
    prefetched = list(PrefetchStream(base, depth=depth))
    assert len(direct) == len(prefetched)
    for a, b in zip(direct, prefetched):
        assert np.array_equal(a, b)


def test_prefetch_snapshots_reused_source_buffers():
    """An in-situ source may reuse one buffer per batch; the prefetch
    producer must snapshot before queueing or the consumer reads
    overwritten data."""
    from repro.data import function_stream

    scratch = np.empty((3, 2))

    def produce(index):
        if index >= 4:
            return None
        scratch[...] = float(index)
        return scratch

    direct = [b.copy() for b in function_stream(produce, n_dof=3)]
    prefetched = list(
        PrefetchStream(function_stream(produce, n_dof=3), depth=2)
    )
    assert len(direct) == len(prefetched) == 4
    for a, b in zip(direct, prefetched):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("backend,nranks", [("threads", 3), ("self", 1)])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_prefetched_stream_drives_svd_identically(backend, nranks, dtype):
    """backend x dtype: an SVD fed through PrefetchStream (+ overlap)
    equals the directly-fed reference bit-for-bit (asserted to 1e-12)."""
    rng = np.random.default_rng(11)
    m, batch = 90, 10
    data = (
        rng.standard_normal((m, 4)) @ rng.standard_normal((4, 6 * batch))
    ).astype(dtype)

    def job(comm, prefetch):
        part = block_partition(m, comm.size)
        stream = array_stream(data, batch).restrict_rows(
            part.slice_of(comm.rank)
        )
        if prefetch:
            stream = PrefetchStream(stream, depth=2)
        svd = ParSVDParallel(comm, K=4, ff=0.97, overlap=prefetch)
        svd.fit_stream(stream)
        return np.array(svd.modes), np.array(svd.singular_values)

    ref_modes, ref_values = run_backend(backend, nranks, job, False)[0]
    pf_modes, pf_values = run_backend(backend, nranks, job, True)[0]
    assert pf_modes.dtype == ref_modes.dtype
    assert np.max(np.abs(pf_modes - ref_modes)) <= 1e-12
    assert np.max(np.abs(pf_values - ref_values)) <= 1e-12
