"""Property-based tests for the snapshot container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.io import SnapshotDataset, write_snapshot_dataset

_elements = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 40),
    n=st.integers(1, 20),
    data=st.data(),
)
def test_roundtrip_any_shape(m, n, data, tmp_path_factory):
    a = data.draw(arrays(np.float64, (m, n), elements=_elements))
    path = tmp_path_factory.mktemp("io") / "x.rsnap"
    write_snapshot_dataset(path, a)
    assert np.array_equal(SnapshotDataset.open(path).read(), a)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(2, 50),
    n=st.integers(1, 12),
    nranks=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_rank_blocks_always_tile(m, n, nranks, seed, tmp_path_factory):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    path = tmp_path_factory.mktemp("io") / "tile.rsnap"
    write_snapshot_dataset(path, a)
    dataset = SnapshotDataset.open(path)
    blocks = [dataset.read_rows_for_rank(r, nranks) for r in range(nranks)]
    assert np.array_equal(np.concatenate(blocks, axis=0), a)


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(1, 30),
    n=st.integers(2, 16),
    batch=st.integers(1, 16),
    seed=st.integers(0, 2**31 - 1),
)
def test_column_batches_always_tile(m, n, batch, seed, tmp_path_factory):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    path = tmp_path_factory.mktemp("io") / "cols.rsnap"
    write_snapshot_dataset(path, a)
    dataset = SnapshotDataset.open(path)
    batches = list(dataset.column_batches(batch))
    assert np.array_equal(np.concatenate(batches, axis=1), a)
    assert all(b.shape[1] <= batch for b in batches)


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(2, 30),
    n=st.integers(2, 12),
    seed=st.integers(0, 2**31 - 1),
    data=st.data(),
)
def test_arbitrary_windows_consistent(m, n, seed, data, tmp_path_factory):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    path = tmp_path_factory.mktemp("io") / "win.rsnap"
    write_snapshot_dataset(path, a)
    dataset = SnapshotDataset.open(path)
    r0 = data.draw(st.integers(0, m - 1))
    r1 = data.draw(st.integers(r0, m))
    c0 = data.draw(st.integers(0, n - 1))
    c1 = data.draw(st.integers(c0, n))
    assert np.array_equal(
        dataset.read_window(r0, r1, c0, c1), a[r0:r1, c0:c1]
    )


@settings(max_examples=15, deadline=None)
@given(
    m=st.integers(2, 20),
    n=st.integers(2, 12),
    seed=st.integers(0, 2**31 - 1),
    order=st.permutations(list(range(4))),
)
def test_out_of_order_column_writes(m, n, seed, order, tmp_path_factory):
    """Writing column chunks in any order reproduces the matrix."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    bounds = np.linspace(0, n, 5).astype(int)
    path = tmp_path_factory.mktemp("io") / "ooo.rsnap"
    dataset = SnapshotDataset.create(path, (m, n))
    for idx in order:
        lo, hi = bounds[idx], bounds[idx + 1]
        if hi > lo:
            dataset.write_columns(lo, a[:, lo:hi])
    assert np.array_equal(SnapshotDataset.open(path).read(), a)
