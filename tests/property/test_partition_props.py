"""Property-based tests for the block partition arithmetic."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.utils.partition import block_partition


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 64))
def test_counts_sum_and_balance(total, parts):
    p = block_partition(total, parts)
    assert sum(p.counts) == total
    # balanced: no two parts differ by more than one item
    assert max(p.counts) - min(p.counts) <= 1


@settings(max_examples=200, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 64))
def test_ranges_are_contiguous_and_ordered(total, parts):
    p = block_partition(total, parts)
    cursor = 0
    for start, stop in p:
        assert start == cursor
        assert stop >= start
        cursor = stop
    assert cursor == total


@settings(max_examples=200, deadline=None)
@given(st.integers(1, 5_000), st.integers(1, 64), st.data())
def test_owner_and_local_index_consistent(total, parts, data):
    p = block_partition(total, parts)
    index = data.draw(st.integers(0, total - 1))
    owner, local = p.local_index(index)
    start, stop = p.range_of(owner)
    assert start <= index < stop
    assert local == index - start
    assert 0 <= local < p.counts[owner]


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 500), st.integers(1, 16))
def test_scatter_gather_identity(total, parts):
    p = block_partition(total, parts)
    a = np.arange(total, dtype=float).reshape(total, 1)
    assert np.array_equal(p.gather(p.scatter(a)), a)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 1000), st.integers(1, 32))
def test_front_loaded_remainder(total, parts):
    """The first (total % parts) parts carry the extra item."""
    p = block_partition(total, parts)
    base, extra = divmod(total, parts)
    for i, count in enumerate(p.counts):
        assert count == base + (1 if i < extra else 0)
