"""Property-based tests: smpi collectives against their numpy references."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.smpi import MAX, MIN, SUM, run_spmd


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
    length=st.integers(1, 16),
)
def test_allreduce_sum_matches_numpy(nprocs, seed, length):
    rng = np.random.default_rng(seed)
    contributions = rng.standard_normal((nprocs, length))

    def job(comm):
        return comm.allreduce(contributions[comm.rank], SUM)

    results = run_spmd(nprocs, job)
    # deterministic rank-ordered fold
    expected = contributions[0].copy()
    for i in range(1, nprocs):
        expected = expected + contributions[i]
    for r in results:
        assert np.array_equal(r, expected)


@settings(max_examples=20, deadline=None)
@given(nprocs=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
def test_allreduce_max_min(nprocs, seed):
    rng = np.random.default_rng(seed)
    values = rng.standard_normal(nprocs)

    def job(comm):
        return (
            comm.allreduce(values[comm.rank], MAX),
            comm.allreduce(values[comm.rank], MIN),
        )

    for max_v, min_v in run_spmd(nprocs, job):
        assert max_v == values.max()
        assert min_v == values.min()


@settings(max_examples=20, deadline=None)
@given(
    nprocs=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
    root=st.data(),
)
def test_gather_then_scatter_roundtrip(nprocs, seed, root):
    root_rank = root.draw(st.integers(0, nprocs - 1))
    rng = np.random.default_rng(seed)
    payloads = [rng.standard_normal(3) for _ in range(nprocs)]

    def job(comm):
        gathered = comm.gather(payloads[comm.rank], root=root_rank)
        return comm.scatter(gathered, root=root_rank)

    results = run_spmd(nprocs, job)
    for rank, r in enumerate(results):
        assert np.array_equal(r, payloads[rank])


@settings(max_examples=20, deadline=None)
@given(nprocs=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
def test_allgather_equals_gather_plus_bcast(nprocs, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 100, size=nprocs)

    def job(comm):
        return comm.allgather(int(values[comm.rank]))

    results = run_spmd(nprocs, job)
    expected = [int(v) for v in values]
    for r in results:
        assert r == expected


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(2, 6),
    seed=st.integers(0, 2**31 - 1),
)
def test_alltoall_is_transpose(nprocs, seed):
    """alltoall implements a matrix transpose of the send pattern."""
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 1000, size=(nprocs, nprocs))

    def job(comm):
        return comm.alltoall([int(x) for x in table[comm.rank]])

    results = run_spmd(nprocs, job)
    received = np.array(results)
    assert np.array_equal(received, table.T)


@settings(max_examples=15, deadline=None)
@given(
    nprocs=st.integers(1, 6),
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(1, 5),
)
def test_gatherv_scatterv_inverse(nprocs, seed, rows):
    rng = np.random.default_rng(seed)
    counts = [int(c) for c in rng.integers(0, rows + 1, size=nprocs)]
    total = sum(counts)
    full = rng.standard_normal((total, 2))

    def job(comm):
        block = comm.scatterv_rows(
            full if comm.rank == 0 else None, counts, root=0
        )
        assert block.shape[0] == counts[comm.rank]
        return comm.gatherv_rows(block, root=0)

    results = run_spmd(nprocs, job)
    assert np.array_equal(results[0], full)
