"""Property-based tests for the randomized SVD."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.randomized import randomized_range_finder, randomized_svd
from repro.data.synthetic import matrix_with_spectrum, spectrum_exponential
from repro.utils.linalg import orthogonality_defect


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(10, 60),
    n=st.integers(5, 30),
    k=st.integers(1, 5),
    p=st.integers(0, 8),
)
def test_factors_always_orthonormal(seed, m, n, k, p):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    u, s, vt = randomized_svd(a, k, oversampling=p, rng=seed)
    assert orthogonality_defect(u) < 1e-9
    assert orthogonality_defect(vt.T) < 1e-9
    assert np.all(np.diff(s) <= 1e-12)
    assert np.all(s >= 0)
    assert u.shape[1] == min(k, m, n)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rank=st.integers(1, 6),
)
def test_exact_recovery_of_low_rank(seed, rank):
    """On an exactly rank-r matrix, rank-r randomized SVD is exact."""
    spectrum = spectrum_exponential(rank, 0.6)
    a, _, s_true, _ = matrix_with_spectrum(50, 30, spectrum, rng=seed)
    u, s, vt = randomized_svd(a, rank, oversampling=5, rng=seed)
    assert np.allclose(s, s_true, rtol=1e-8)
    assert np.linalg.norm(a - (u * s) @ vt) < 1e-8 * np.linalg.norm(a)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_error_never_better_than_optimal(seed):
    """Eckart--Young lower bound: no rank-k factorization can beat the
    optimal truncation error."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((40, 25))
    s_exact = np.linalg.svd(a, compute_uv=False)
    k = 5
    u, s, vt = randomized_svd(a, k, oversampling=5, rng=seed)
    err = np.linalg.norm(a - (u * s) @ vt)
    optimal = np.linalg.norm(s_exact[k:])
    assert err >= optimal - 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_values_never_exceed_exact(seed):
    """Each approximate singular value is at most the exact one (the sketch
    projects onto a subspace; Rayleigh quotients only shrink)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((40, 20))
    s_exact = np.linalg.svd(a, compute_uv=False)
    _, s, _ = randomized_svd(a, 6, oversampling=4, rng=seed)
    assert np.all(s <= s_exact[: s.shape[0]] + 1e-9)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    k=st.integers(1, 6),
)
def test_range_finder_projection_decreases_residual(seed, k):
    """Enlarging the sketch never increases the projection residual."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((50, 25))

    def residual(oversampling):
        q = randomized_range_finder(a, k, oversampling=oversampling, rng=seed)
        return np.linalg.norm(a - q @ (q.T @ a))

    assert residual(8) <= residual(0) + 1e-9
