"""Property-based tests for the streaming SVD invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.streaming import incorporate_batch, initialize_streaming
from repro.utils.linalg import align_signs, orthogonality_defect


def _random_matrix(draw_seed, m, n, rank):
    rng = np.random.default_rng(draw_seed)
    left = rng.standard_normal((m, rank))
    right = rng.standard_normal((rank, n))
    return left @ right


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(20, 80),
    k=st.integers(1, 6),
    batch=st.integers(1, 8),
    nbatches=st.integers(2, 5),
    ff=st.floats(0.5, 1.0),
)
def test_modes_always_orthonormal(seed, m, k, batch, nbatches, ff):
    """After any number of updates the retained modes are orthonormal."""
    data = _random_matrix(seed, m, batch * nbatches, min(m, batch * nbatches))
    state = initialize_streaming(data[:, :batch], k)
    for i in range(1, nbatches):
        state = incorporate_batch(
            state, data[:, i * batch : (i + 1) * batch], k, ff
        )
    assert orthogonality_defect(state.modes) < 1e-8
    assert np.all(np.diff(state.singular_values) <= 1e-12)
    assert np.all(state.singular_values >= 0)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(30, 80),
    rank=st.integers(1, 4),
    batch=st.integers(2, 6),
)
def test_ff_one_exact_for_low_rank_data(seed, m, rank, batch):
    """ff=1 with K >= rank(A): streaming equals the one-shot SVD."""
    n = batch * 4
    data = _random_matrix(seed, m, n, rank)
    k = rank + 1
    state = initialize_streaming(data[:, :batch], k)
    for i in range(1, 4):
        state = incorporate_batch(
            state, data[:, i * batch : (i + 1) * batch], k, 1.0
        )
    u, s, _ = np.linalg.svd(data, full_matrices=False)
    # numerical rank could be < rank for degenerate draws; compare the
    # well-separated leading values only
    lead = min(rank, int(np.sum(s > 1e-8 * s[0])))
    assert np.allclose(state.singular_values[:lead], s[:lead], rtol=1e-6)
    aligned = align_signs(u[:, :lead], state.modes[:, :lead])
    assert np.max(np.abs(aligned - u[:, :lead])) < 1e-5


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    ff=st.floats(0.3, 1.0),
)
def test_singular_values_scale_linearly_with_data(seed, ff):
    """Scaling the data scales the streamed singular values."""
    data = _random_matrix(seed, 40, 20, 6)
    scale = 3.5

    def run(matrix):
        state = initialize_streaming(matrix[:, :10], 4)
        return incorporate_batch(state, matrix[:, 10:], 4, ff)

    a = run(data)
    b = run(scale * data)
    assert np.allclose(
        b.singular_values, scale * a.singular_values, rtol=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_batch_order_independent_counts(seed):
    """n_seen/batches bookkeeping is exact regardless of batch sizes."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(1, 7, size=5)
    data = rng.standard_normal((30, int(np.sum(sizes))))
    offset = int(sizes[0])
    state = initialize_streaming(data[:, :offset], 3)
    for size in sizes[1:]:
        state = incorporate_batch(
            state, data[:, offset : offset + int(size)], 3, 0.9
        )
        offset += int(size)
    assert state.n_seen == data.shape[1]
    assert state.batches == 5
