"""Property-based tests for the dense linear-algebra helpers."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.linalg import (
    align_signs,
    orthogonality_defect,
    qr_positive,
    subspace_angles_deg,
    truncate_svd,
)

# Well-scaled float matrices: magnitudes that keep QR/SVD far from under/
# overflow so properties hold to round-off.
_elements = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _matrix(min_rows=2, max_rows=20, min_cols=1, max_cols=8):
    return st.integers(min_rows, max_rows).flatmap(
        lambda m: st.integers(min_cols, min(max_cols, m)).flatmap(
            lambda n: arrays(np.float64, (m, n), elements=_elements)
        )
    )


@settings(max_examples=60, deadline=None)
@given(_matrix())
def test_qr_positive_reconstructs(a):
    q, r = qr_positive(a)
    assert np.allclose(q @ r, a, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(_matrix())
def test_qr_positive_diag_nonnegative(a):
    _, r = qr_positive(a)
    assert np.all(np.diagonal(r) >= 0)


@settings(max_examples=60, deadline=None)
@given(_matrix())
def test_qr_positive_orthonormal_within_tolerance(a):
    q, _ = qr_positive(a)
    assert orthogonality_defect(q) < 1e-10


@settings(max_examples=60, deadline=None)
@given(_matrix(), st.integers(1, 8))
def test_truncate_never_exceeds(a, k):
    u, s, vt = np.linalg.svd(a, full_matrices=False)
    ut, st_, vtt = truncate_svd(u, s, vt, k)
    assert ut.shape[1] == st_.shape[0] == vtt.shape[0] == min(k, s.shape[0])
    assert np.array_equal(st_, s[: st_.shape[0]])


@settings(max_examples=60, deadline=None)
@given(_matrix(min_rows=3))
def test_align_signs_idempotent_and_colwise(a):
    signs = np.where(np.arange(a.shape[1]) % 2 == 0, 1.0, -1.0)
    flipped = a * signs
    aligned = align_signs(a, flipped)
    # aligning a sign-flipped copy recovers the original where columns are
    # nonzero
    nonzero = np.linalg.norm(a, axis=0) > 0
    assert np.allclose(aligned[:, nonzero], a[:, nonzero])
    # idempotent
    assert np.allclose(align_signs(a, aligned), aligned)


@settings(max_examples=40, deadline=None)
@given(_matrix(min_rows=6, max_rows=20, min_cols=2, max_cols=4))
def test_subspace_angles_bounded(a):
    rng = np.random.default_rng(0)
    b = rng.standard_normal(a.shape)
    angles = subspace_angles_deg(a, b)
    assert np.all(angles >= -1e-9)
    assert np.all(angles <= 90.0 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(_matrix(min_rows=6, max_rows=20, min_cols=2, max_cols=4))
def test_subspace_angles_symmetric(a):
    rng = np.random.default_rng(1)
    b = rng.standard_normal(a.shape)
    ab = subspace_angles_deg(a, b)
    ba = subspace_angles_deg(b, a)
    # arccos near +/-1 has sqrt(eps) sensitivity -> ~1e-6 deg noise
    assert np.allclose(np.sort(ab), np.sort(ba), atol=1e-4)
