"""Property-based tests for APMOS."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.apmos import apmos_svd
from repro.smpi import run_spmd
from repro.utils.partition import block_partition


def _run_apmos(data, nranks, r1, r2):
    def job(comm):
        part = block_partition(data.shape[0], comm.size)
        return apmos_svd(comm, data[part.slice_of(comm.rank), :], r1=r1, r2=r2)

    results = run_spmd(nranks, job)
    u = np.concatenate([r[0] for r in results], axis=0)
    return u, results[0][1]


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(30, 80),
    n=st.integers(6, 16),
    nranks=st.integers(1, 5),
    r2=st.integers(1, 4),
)
def test_untruncated_apmos_equals_svd(seed, m, n, nranks, r2):
    """With r1 = n (no local truncation) APMOS is exact."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((m, n))
    u, s = _run_apmos(data, nranks, r1=n, r2=r2)
    s_ref = np.linalg.svd(data, compute_uv=False)
    k = s.shape[0]
    assert k <= r2
    assert np.allclose(s, s_ref[:k], rtol=1e-8)
    # stacked local blocks form globally orthonormal modes
    gram = u.T @ u
    assert np.allclose(gram, np.eye(k), atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    nranks=st.integers(1, 5),
)
def test_values_independent_of_rank_count(seed, nranks):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((60, 10))
    _, s_one = _run_apmos(data, 1, r1=10, r2=3)
    _, s_p = _run_apmos(data, nranks, r1=10, r2=3)
    assert np.allclose(s_one, s_p, rtol=1e-8)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    r1=st.integers(1, 10),
)
def test_truncation_never_inflates_values(seed, r1):
    """Truncated APMOS singular values can only undershoot the exact ones."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((50, 10))
    _, s = _run_apmos(data, 3, r1=r1, r2=3)
    s_ref = np.linalg.svd(data, compute_uv=False)
    assert np.all(s <= s_ref[: s.shape[0]] * (1 + 1e-9))
    assert np.all(np.diff(s) <= 1e-12)
