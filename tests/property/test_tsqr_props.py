"""Property-based tests for the distributed TSQR variants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.tsqr import tsqr_gather, tsqr_tree
from repro.smpi import run_spmd
from repro.utils.linalg import orthogonality_defect, qr_positive
from repro.utils.partition import block_partition


def _run(data, nranks, fn):
    def job(comm):
        part = block_partition(data.shape[0], comm.size)
        return fn(comm, data[part.slice_of(comm.rank), :])

    results = run_spmd(nranks, job)
    q = np.concatenate([r[0] for r in results], axis=0)
    return q, results[0][1]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(20, 80),
    n=st.integers(1, 8),
    nranks=st.integers(1, 6),
)
def test_tsqr_gather_is_a_qr(seed, m, n, nranks):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    q, r = _run(a, nranks, tsqr_gather)
    assert np.allclose(q @ r, a, atol=1e-8)
    assert orthogonality_defect(q) < 1e-8
    assert np.all(np.diagonal(r) >= 0)
    assert np.allclose(r, np.triu(r), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    m=st.integers(20, 80),
    n=st.integers(1, 8),
    nranks=st.integers(1, 6),
)
def test_tree_equals_gather(seed, m, n, nranks):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    qg, rg = _run(a, nranks, tsqr_gather)
    qt, rt = _run(a, nranks, tsqr_tree)
    assert np.allclose(rg, rt, atol=1e-8)
    assert np.allclose(qg, qt, atol=1e-7)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    nranks=st.integers(1, 6),
)
def test_rank_count_invariance(seed, nranks):
    """The factorization must not depend on how rows are partitioned."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((60, 5))
    q_ref, r_ref = qr_positive(a)
    q, r = _run(a, nranks, tsqr_gather)
    assert np.allclose(r, r_ref, atol=1e-8)
    assert np.allclose(q, q_ref, atol=1e-7)
