"""Runtime lifecycle: refcounted install, null-cost disabled paths,
communicator observation."""

import gc
import itertools
import tracemalloc

import numpy as np

from repro.obs import MetricsRegistry, ObservedCommunicator, SpanTracer, runtime
from repro.smpi import SUM, create_communicator, run_spmd


class TestInstallLifecycle:
    def test_disabled_by_default(self):
        assert runtime.state() is None
        assert not runtime.installed()

    def test_install_uninstall_refcounted(self):
        runtime.install(metrics=True)
        runtime.install(metrics=True)
        assert runtime.installed()
        runtime.uninstall()
        assert runtime.installed()  # one reference still held
        runtime.uninstall()
        assert not runtime.installed()

    def test_extra_uninstall_is_harmless(self):
        runtime.uninstall()
        assert not runtime.installed()

    def test_first_install_decides_components(self):
        state = runtime.install(metrics=True, trace=False)
        assert state.registry is runtime.default_registry()
        assert state.tracer is None

    def test_nested_install_upgrades_never_downgrades(self):
        runtime.install(metrics=True, trace=False)
        state = runtime.install(metrics=False, trace=True)
        assert state.registry is not None  # kept from the outer install
        assert state.tracer is not None  # upgraded by the inner one
        runtime.uninstall()
        assert runtime.state().tracer is not None  # still active at depth 1

    def test_custom_registry_and_tracer(self):
        registry = MetricsRegistry()
        tracer = SpanTracer()
        state = runtime.install(
            metrics=True, trace=True, registry=registry, tracer=tracer
        )
        assert state.registry is registry
        assert state.tracer is tracer
        assert runtime.current_registry() is registry
        assert runtime.current_tracer() is tracer

    def test_current_fall_back_to_defaults_when_off(self):
        assert runtime.current_registry() is runtime.default_registry()
        assert runtime.current_tracer() is runtime.default_tracer()

    def test_defaults_survive_uninstall(self):
        runtime.install(metrics=True)
        runtime.current_registry().counter("kept").inc()
        runtime.uninstall()
        assert runtime.default_registry().counter("kept").value == 1.0
        runtime.reset()
        assert "kept" not in runtime.default_registry().snapshot()["counters"]


class TestSpanDispatch:
    def test_null_span_when_disabled(self):
        span = runtime.span("x", phase="qr")
        assert span is runtime.span("y", phase="svd")  # shared singleton
        with span:
            pass  # no-op

    def test_null_span_when_installed_without_tracer(self):
        runtime.install(metrics=True, trace=False)
        assert runtime.span("x") is runtime.span("y")

    def test_real_span_when_tracing(self):
        tracer = SpanTracer()
        runtime.install(metrics=False, trace=True, tracer=tracer)
        with runtime.span("x", phase="qr", rank=1):
            pass
        (event,) = tracer.events()
        assert event["name"] == "x"
        assert event["rank"] == 1

    def test_null_span_decorator_returns_fn_unchanged(self):
        def fn():
            return 42

        assert runtime.span("x")(fn) is fn


class TestDisabledOverhead:
    def test_disabled_primitives_allocate_nothing(self):
        """The hot-path contract: with observability off, `state()` and
        `span()` allocate zero bytes per call — measured, not assumed.
        The loop harness itself allocates a constant few bytes, so the
        proof is that net bytes do not grow with the iteration count."""
        assert runtime.state() is None

        def measure(n):
            gc.disable()
            tracemalloc.start()
            try:
                before = tracemalloc.get_traced_memory()[0]
                # repeat(None, n): the loop variable never binds a fresh
                # int, unlike range(n) whose last value outlives the loop.
                for _ in itertools.repeat(None, n):
                    st = runtime.state()
                    if st is not None:  # mirrors instrumented call sites
                        raise AssertionError("obs unexpectedly installed")
                    with runtime.span("tsqr.local_qr", phase="qr", rank=0):
                        pass
                after = tracemalloc.get_traced_memory()[0]
            finally:
                tracemalloc.stop()
                gc.enable()
            return after - before

        measure(32)  # warm up caches (interned strings, code objects)
        small = measure(100)
        large = measure(10_000)
        assert large <= small, (small, large)

    def test_disabled_communicator_is_the_raw_object(self):
        comm = create_communicator("self")
        assert not isinstance(comm, ObservedCommunicator)
        assert runtime.observe_communicator(comm) is comm


class TestObserveCommunicator:
    def test_wraps_when_metrics_active(self):
        registry = MetricsRegistry()
        runtime.install(metrics=True, registry=registry)
        comm = create_communicator("self")
        assert isinstance(comm, ObservedCommunicator)
        assert runtime.observe_communicator(comm) is comm  # idempotent

    def test_not_wrapped_when_trace_only(self):
        runtime.install(metrics=False, trace=True)
        comm = create_communicator("self")
        assert not isinstance(comm, ObservedCommunicator)

    def test_ops_meter_calls_bytes_seconds(self):
        registry = MetricsRegistry()
        runtime.install(metrics=True, registry=registry)
        comm = create_communicator("self")
        comm.bcast(np.zeros(8), root=0)
        comm.allreduce(np.ones(4), SUM)
        snap = registry.snapshot()
        assert snap["counters"]["repro.smpi.bcast.calls"]["value"] == 1.0
        assert snap["counters"]["repro.smpi.bcast.bytes"]["value"] == 64.0
        assert snap["counters"]["repro.smpi.allreduce.bytes"]["value"] == 32.0
        assert snap["histograms"]["repro.smpi.allreduce.seconds"]["count"] == 1

    def test_nonblocking_wait_is_timed(self):
        registry = MetricsRegistry()
        runtime.install(metrics=True, registry=registry)
        comm = create_communicator("self")
        result = comm.iallreduce(np.ones(3), SUM).wait()
        assert np.allclose(result, np.ones(3))
        snap = registry.snapshot()
        assert snap["counters"]["repro.smpi.wait.calls"]["value"] == 1.0
        assert snap["histograms"]["repro.smpi.wait.seconds"]["count"] == 1

    def test_split_and_dup_stay_observed(self):
        registry = MetricsRegistry()
        runtime.install(metrics=True, registry=registry)
        comm = create_communicator("self")
        assert isinstance(comm.split(color=0), ObservedCommunicator)
        assert isinstance(comm.dup(), ObservedCommunicator)

    def test_rank_size_and_delegation(self):
        registry = MetricsRegistry()
        runtime.install(metrics=True, registry=registry)
        comm = create_communicator("self")
        assert comm.rank == 0
        assert comm.size == 1
        assert comm.Get_rank() == 0
        assert comm.Get_size() == 1

    def test_run_spmd_ranks_all_report(self):
        registry = MetricsRegistry()
        runtime.install(metrics=True, registry=registry)

        def job(comm):
            comm.bcast(np.zeros(4) if comm.rank == 0 else None, root=0)
            comm.barrier()
            return comm.rank

        assert run_spmd(2, job) == [0, 1]
        snap = registry.snapshot()
        assert snap["counters"]["repro.smpi.bcast.calls"]["value"] == 2.0
        assert snap["counters"]["repro.smpi.barrier.calls"]["value"] == 2.0
