"""End-to-end observability: Session wiring, multi-rank traces, the
hot-path overhead guard with observability disabled."""

import gc
import json
import tracemalloc

import numpy as np
import pytest

from repro.api import (
    BackendConfig,
    ObservabilityConfig,
    RunConfig,
    Session,
    SolverConfig,
    StreamConfig,
)
from repro.obs import runtime, phases_per_rank, validate_chrome_trace


def low_rank_data(n_dof, n_cols, seed=3):
    rng = np.random.default_rng(seed)
    left = rng.standard_normal((n_dof, 6))
    right = rng.standard_normal((6, n_cols))
    return left @ right + 1e-4 * rng.standard_normal((n_dof, n_cols))


def obs_config(*, size=4, overlap=True, prefetch=1, trace=True):
    return RunConfig(
        solver=SolverConfig(K=4, ff=0.95, overlap=overlap),
        backend=BackendConfig(name="threads", size=size),
        stream=StreamConfig(batch=8, prefetch=prefetch),
        obs=ObservabilityConfig(metrics=True, trace=trace),
    )


class TestSessionLifecycle:
    def test_session_installs_and_uninstalls(self):
        cfg = RunConfig(
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
            obs=ObservabilityConfig(metrics=True),
        )
        assert not runtime.installed()
        with Session(cfg) as session:
            assert runtime.installed()
            session.fit_stream(low_rank_data(64, 30))
        assert not runtime.installed()

    def test_disabled_config_installs_nothing(self):
        cfg = RunConfig(
            backend=BackendConfig(name="self"), stream=StreamConfig(batch=10)
        )
        with Session(cfg) as session:
            assert not runtime.installed()
            session.fit_stream(low_rank_data(64, 30))
        assert not runtime.installed()

    def test_obs_section_shortcut(self):
        session = Session(
            backend=BackendConfig(name="self"),
            obs=ObservabilityConfig(metrics=True),
        )
        try:
            assert session.config.obs.metrics is True
            assert runtime.installed()
        finally:
            session.close()

    def test_constructor_failure_releases_install(self):
        cfg = RunConfig(
            backend=BackendConfig(name="threads", size=4),
            obs=ObservabilityConfig(metrics=True),
        )
        from repro.exceptions import ConfigurationError

        # A multi-rank threads Session must go through Session.run; the
        # constructor raises — and must not leak its obs install.
        with pytest.raises(ConfigurationError):
            Session(cfg)
        assert not runtime.installed()

    def test_session_metrics_snapshot(self):
        runtime.reset()
        cfg = RunConfig(
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
            obs=ObservabilityConfig(metrics=True),
        )
        with Session(cfg) as session:
            session.fit_stream(low_rank_data(64, 30))
            snap = session.metrics
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert "repro.core.step_seconds" in snap["histograms"]

    def test_dump_trace_writes_valid_chrome_json(self, tmp_path):
        runtime.reset()
        cfg = RunConfig(
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
            obs=ObservabilityConfig(metrics=True, trace=True),
        )
        path = tmp_path / "trace.json"
        with Session(cfg) as session:
            session.fit_stream(low_rank_data(64, 30))
            assert session.dump_trace(path) == str(path)
        validate_chrome_trace(json.loads(path.read_text()))


class TestMultiRankRun:
    def test_four_rank_trace_has_four_phases_per_rank(self):
        """The PR's acceptance criterion: a 4-rank threads run emits a
        schema-valid Chrome trace with >= 4 distinct phases per rank and
        an overlap_efficiency gauge in the metrics snapshot."""
        runtime.reset()
        data = low_rank_data(128, 48)

        def job(session):
            return session.fit_stream(data).result().singular_values

        values = Session.run(obs_config(size=4), job)
        assert all(np.allclose(v, values[0]) for v in values)
        assert not runtime.installed()  # every rank released its install

        payload = runtime.default_tracer().chrome_trace()
        validate_chrome_trace(payload)
        per_rank = phases_per_rank(payload)
        assert set(per_rank) == {0, 1, 2, 3}
        for rank, phases in per_rank.items():
            assert len(phases) >= 4, (rank, phases)

        snap = runtime.default_registry().snapshot()
        gauge = snap["gauges"].get("repro.core.overlap_efficiency")
        assert gauge is not None
        assert 0.0 <= gauge <= 1.0 + 1e-9
        assert any(
            name.startswith("repro.smpi.") for name in snap["counters"]
        )
        assert snap["histograms"]["repro.core.step_seconds"]["count"] > 0

    def test_prefetch_counters_present(self):
        runtime.reset()
        data = low_rank_data(96, 40)

        def job(session):
            return session.fit_stream(data).result().n_seen

        Session.run(obs_config(size=2, prefetch=2), job)
        snap = runtime.default_registry().snapshot()
        batches = snap["counters"].get("repro.data.prefetch.batches")
        assert batches is not None
        assert batches["value"] > 0

    def test_numbers_identical_with_and_without_obs(self):
        """Instrumentation must never perturb the math."""
        data = low_rank_data(96, 40)

        def job(session):
            return session.fit_stream(data).result().singular_values

        plain_cfg = obs_config(size=2).replace(obs=ObservabilityConfig())
        plain = Session.run(plain_cfg, job)[0]
        runtime.reset()
        observed = Session.run(obs_config(size=2), job)[0]
        np.testing.assert_allclose(observed, plain, rtol=0, atol=0)


class TestServingMetrics:
    def test_flush_and_cache_metrics(self, tmp_path):
        from repro.serving import ModeBaseStore

        runtime.reset()
        data = low_rank_data(80, 40)
        store = ModeBaseStore(tmp_path / "store")
        cfg = RunConfig(
            solver=SolverConfig(K=4, ff=1.0),
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
            obs=ObservabilityConfig(metrics=True, trace=True),
        )

        with Session(cfg) as session:
            session.fit_stream(data)
            version = session.export_to_store(store, "demo")
            engine = session.query_engine(store)
            queries = [data[:, i : i + 2] for i in (0, 4, 8)]
            tickets = [
                engine.submit_project("demo", q, version) for q in queries
            ]
            assert engine.flush() == 3
            assert all(t.done for t in tickets)

        snap = runtime.default_registry().snapshot()
        assert snap["counters"]["repro.serving.queries"]["value"] == 3.0
        assert snap["histograms"]["repro.serving.flush_batch"]["count"] == 1
        assert snap["histograms"]["repro.serving.flush_batch"]["max"] == 3.0
        assert snap["histograms"]["repro.serving.flush_seconds"]["count"] == 1
        assert snap["counters"]["repro.serving.cache_misses"]["value"] >= 1.0
        flush_phases = [
            e
            for e in runtime.default_tracer().events()
            if e["phase"] == "flush"
        ]
        assert len(flush_phases) == 1


class TestDisabledStepOverhead:
    def test_disabled_steps_allocate_flat(self):
        """With observability off, steady-state streaming steps must not
        allocate more than before the instrumentation existed — the same
        flatness contract the hot-path bench gates, run small."""
        m, batch, steps, warmup = 240, 10, 40, 8
        data = low_rank_data(m, batch * (steps + 1), seed=11)
        cfg = RunConfig(
            solver=SolverConfig(K=6, ff=0.95),
            backend=BackendConfig(name="self"),
        )
        assert not runtime.installed()
        with Session(cfg) as session:
            session.initialize(data[:, :batch])
            for step in range(warmup):
                lo = (step + 1) * batch
                session.incorporate_data(data[:, lo : lo + batch])
            per_step = []
            gc.disable()
            tracemalloc.start()
            try:
                for step in range(warmup, steps):
                    lo = (step + 1) * batch
                    tracemalloc.reset_peak()
                    before = tracemalloc.get_traced_memory()[0]
                    session.incorporate_data(data[:, lo : lo + batch])
                    _, peak = tracemalloc.get_traced_memory()
                    per_step.append(peak - before)
            finally:
                tracemalloc.stop()
                gc.enable()
        early = float(np.mean(per_step[:5]))
        late = float(np.mean(per_step[-5:]))
        assert late <= 1.25 * early + 4096, (early, late)
