"""Span tracer: nesting, exports, Chrome-trace schema validation."""

import json
import threading

import pytest

from repro.obs import (
    PHASES,
    SpanTracer,
    phases_per_rank,
    validate_chrome_trace,
)


class TestSpans:
    def test_span_records_name_phase_rank(self):
        tracer = SpanTracer()
        with tracer.span("tsqr.local_qr", phase="qr", rank=2):
            pass
        (event,) = tracer.events()
        assert event["name"] == "tsqr.local_qr"
        assert event["phase"] == "qr"
        assert event["rank"] == 2
        assert event["dur"] >= 0.0
        assert event["parent"] is None

    def test_nested_spans_record_parent(self):
        tracer = SpanTracer()
        with tracer.span("outer", phase="svd"):
            with tracer.span("inner", phase="wait"):
                pass
        inner, outer = tracer.events()  # inner closes first
        assert inner["name"] == "inner"
        assert inner["parent"] == "outer"
        assert outer["parent"] is None

    def test_sibling_threads_do_not_nest(self):
        tracer = SpanTracer()

        def worker():
            with tracer.span("child", phase="qr"):
                pass

        with tracer.span("main", phase="svd"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        child = [e for e in tracer.events() if e["name"] == "child"][0]
        assert child["parent"] is None  # different thread, fresh stack

    def test_decorator_form(self):
        tracer = SpanTracer()

        @tracer.span("work", phase="svd", rank=0)
        def work(x):
            """Docstring survives."""
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        assert work.__doc__ == "Docstring survives."
        events = tracer.events()
        assert len(events) == 2
        assert all(e["name"] == "work" for e in events)

    def test_reset_clears_events(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.events() == []

    def test_canonical_phases_exported(self):
        assert PHASES == ("ingest", "qr", "tsqr_comm", "svd", "wait", "flush")


class TestChromeTrace:
    def _traced(self):
        tracer = SpanTracer()
        for rank in range(2):
            with tracer.span("step", phase="svd", rank=rank):
                with tracer.span("inner_wait", phase="wait", rank=rank):
                    pass
        return tracer

    def test_export_passes_validation(self):
        payload = self._traced().chrome_trace()
        validate_chrome_trace(payload)

    def test_one_pid_per_rank_with_metadata(self):
        payload = self._traced().chrome_trace()
        x_pids = {
            e["pid"] for e in payload["traceEvents"] if e["ph"] == "X"
        }
        assert x_pids == {0, 1}
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"rank 0", "rank 1"}

    def test_timestamps_in_microseconds(self):
        payload = self._traced().chrome_trace()
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0

    def test_phases_per_rank(self):
        payload = self._traced().chrome_trace()
        assert phases_per_rank(payload) == {
            0: {"svd", "wait"},
            1: {"svd", "wait"},
        }

    def test_write_round_trips_through_json(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)

    def test_parent_recorded_in_args(self):
        payload = self._traced().chrome_trace()
        inner = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["name"] == "inner_wait"
        ]
        assert all(e["args"]["parent"] == "step" for e in inner)


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"traceEvents": "nope"},
            {"traceEvents": ["not-an-object"]},
            {"traceEvents": [{"ph": "X", "pid": 0}]},  # missing name
            {"traceEvents": [{"name": "a", "ph": "X", "pid": 0}]},  # no tid
            {
                "traceEvents": [
                    {
                        "name": "a",
                        "ph": "X",
                        "pid": 0,
                        "tid": 1,
                        "ts": -1.0,
                        "dur": 0.0,
                    }
                ]
            },
            {"traceEvents": []},  # no complete events at all
        ],
    )
    def test_malformed_payloads_rejected(self, payload):
        with pytest.raises(ValueError):
            validate_chrome_trace(payload)


class TestPhaseSummary:
    def test_summary_math(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("a", phase="qr"):
                pass
        with tracer.span("b"):  # no phase: excluded from the rollup
            pass
        summary = tracer.phase_summary()
        assert set(summary) == {"qr"}
        entry = summary["qr"]
        assert entry["count"] == 3
        assert entry["total_s"] == pytest.approx(
            entry["mean_s"] * 3, rel=1e-9
        )
        assert entry["max_s"] <= entry["total_s"]

    def test_summary_lines_table(self):
        tracer = SpanTracer()
        with tracer.span("a", phase="qr"):
            pass
        lines = tracer.summary_lines()
        assert lines[0].startswith("phase")
        assert any("qr" in line for line in lines[1:])

    def test_empty_summary(self):
        tracer = SpanTracer()
        assert tracer.phase_summary() == {}
        assert tracer.summary_lines() == []
