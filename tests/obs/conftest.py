"""Shared fixtures for the observability tests.

The obs runtime is process-global (refcounted install, default
registry/tracer singletons); every test must leave it pristine or the
rest of the suite would silently run instrumented.
"""

import pytest

from repro.obs import runtime


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Unwind any leaked installs and clear the default sinks."""
    yield
    while runtime.installed():
        runtime.uninstall()
    runtime.reset()
