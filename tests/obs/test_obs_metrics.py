"""Metrics primitives: counters, gauges, histograms, registry semantics."""

import json
import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import _MIN_EXP, _N_BUCKETS, _bucket_index


class TestBucketIndex:
    def test_nonpositive_clamps_to_first_bucket(self):
        assert _bucket_index(0.0) == 0
        assert _bucket_index(-3.0) == 0

    def test_powers_of_two_land_in_their_bucket(self):
        # 1.0 = 0.5 * 2**1 -> exponent 1
        assert _bucket_index(1.0) == 1 - _MIN_EXP
        assert _bucket_index(2.0) == 2 - _MIN_EXP

    def test_extremes_clamp(self):
        assert _bucket_index(1e-300) == 0
        assert _bucket_index(1e300) == _N_BUCKETS - 1


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rate_reflects_recent_increments(self):
        registry = MetricsRegistry(window_s=60.0)
        counter = registry.counter("c")
        assert counter.rate() == 0.0
        for _ in range(10):
            counter.inc()
        assert counter.rate() > 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4.0)
        snap = registry.counter("c").snapshot()
        assert snap["value"] == 4.0
        assert snap["rate_per_s"] >= 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec()
        assert gauge.value == 6.0
        assert gauge.snapshot() == 6.0


class TestHistogram:
    def test_observe_accumulates(self):
        hist = MetricsRegistry().histogram("h")
        for value in (0.5, 1.0, 2.0, 4.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 7.5
        assert hist.mean == pytest.approx(7.5 / 4)

    def test_snapshot_buckets_and_extremes(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        hist.observe(1.0)
        hist.observe(8.0)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 8.0
        assert sum(snap["buckets"].values()) == 3

    def test_empty_snapshot(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None
        assert snap["max"] is None
        assert snap["buckets"] == {}


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("repro.smpi.bcast.calls").inc()
        registry.gauge("repro.core.overlap_efficiency").set(0.5)
        registry.histogram("repro.serving.flush_seconds").observe(0.01)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["repro.smpi.bcast.calls"]["value"] == 1.0
        assert parsed["gauges"]["repro.core.overlap_efficiency"] == 0.5
        assert (
            parsed["histograms"]["repro.serving.flush_seconds"]["count"] == 1
        )

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMerge:
    def test_counters_add_gauges_max_histograms_add(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("calls").inc(3)
        b.counter("calls").inc(4)
        b.counter("only_b").inc(1)
        a.gauge("depth").set(2.0)
        b.gauge("depth").set(5.0)
        a.histogram("lat").observe(1.0)
        b.histogram("lat").observe(2.0)
        a.merge(b)
        assert a.counter("calls").value == 7.0
        assert a.counter("only_b").value == 1.0
        assert a.gauge("depth").value == 5.0
        assert a.histogram("lat").count == 2
        assert a.histogram("lat").sum == 3.0

    def test_merge_models_per_rank_rollup(self):
        """Multi-rank convention: one registry per rank, merged into a
        run-level view — counters sum across ranks, gauges keep the
        worst (highest) per-rank value."""
        run_level = MetricsRegistry()
        for rank in range(4):
            per_rank = MetricsRegistry()
            per_rank.counter("repro.smpi.bcast.calls").inc(10)
            per_rank.gauge("repro.data.prefetch.queue_depth").set(float(rank))
            run_level.merge(per_rank)
        assert run_level.counter("repro.smpi.bcast.calls").value == 40.0
        assert run_level.gauge("repro.data.prefetch.queue_depth").value == 3.0

    def test_zero_counters_still_appear_after_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.counter("never_hit")
        a.merge(b)
        assert "never_hit" in a.snapshot()["counters"]


class TestConcurrency:
    def test_eight_thread_hammer_is_exact(self):
        """8 threads on one registry: shared and private metrics both
        land exactly — no lost updates under the striped locks."""
        registry = MetricsRegistry()
        n_threads, n_iters = 8, 2000
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()
            for i in range(n_iters):
                registry.counter("shared.calls").inc()
                registry.counter(f"private.{tid}.calls").inc(2.0)
                registry.gauge(f"private.{tid}.depth").set(float(i))
                registry.histogram("shared.lat").observe(1.0)

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("shared.calls").value == n_threads * n_iters
        assert registry.histogram("shared.lat").count == n_threads * n_iters
        assert registry.histogram("shared.lat").sum == float(
            n_threads * n_iters
        )
        for tid in range(n_threads):
            assert (
                registry.counter(f"private.{tid}.calls").value
                == 2.0 * n_iters
            )
            assert registry.gauge(f"private.{tid}.depth").value == float(
                n_iters - 1
            )
