"""Unit tests for the stdlib HTTP/1.1 framing layer (`repro.net.http`)."""

import asyncio
import json

import pytest

from repro.net.http import (
    HttpError,
    json_response,
    read_request,
)


def parse(raw: bytes, **kwargs):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


class TestReadRequest:
    def test_simple_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert (req.method, req.path) == ("GET", "/healthz")
        assert req.query == {}
        assert req.headers["host"] == "x"
        assert req.body == b""
        assert req.keep_alive

    def test_query_string(self):
        req = parse(b"GET /v1/jobs/j1?wait=2.5&x=1 HTTP/1.1\r\n\r\n")
        assert req.path == "/v1/jobs/j1"
        assert req.query == {"wait": "2.5", "x": "1"}
        assert req.query_float("wait") == 2.5
        assert req.query_float("absent") is None

    def test_bad_query_float(self):
        req = parse(b"GET /x?wait=soon HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as err:
            req.query_float("wait")
        assert err.value.status == 400

    def test_negative_query_float_rejected(self):
        req = parse(b"GET /x?wait=-1 HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError):
            req.query_float("wait")

    def test_body_by_content_length(self):
        body = json.dumps({"basis": "b"}).encode()
        raw = (
            b"POST /v1/query HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode()
            + b"\r\n\r\n"
            + body
        )
        req = parse(raw)
        assert req.json() == {"basis": "b"}

    def test_connection_close_header(self):
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_eof_between_requests_is_none(self):
        assert parse(b"") is None

    def test_truncated_request_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(b"GET / HTTP/1.1\r\nHost")
        assert err.value.status == 400

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as err:
            parse(b"FETCH/1.1\r\n\r\n")
        assert err.value.status == 400

    def test_chunked_rejected(self):
        with pytest.raises(HttpError) as err:
            parse(
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
        assert err.value.status == 501

    def test_oversized_body_rejected(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n" + b"x" * 100
        with pytest.raises(HttpError) as err:
            parse(raw, max_body_bytes=10)
        assert err.value.status == 413

    def test_bad_content_length_rejected(self):
        for value in (b"nope", b"-5"):
            with pytest.raises(HttpError) as err:
                parse(b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")
            assert err.value.status == 400

    def test_empty_body_json_is_400(self):
        req = parse(b"POST / HTTP/1.1\r\n\r\n")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400

    def test_garbage_body_json_is_400(self):
        req = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{")
        with pytest.raises(HttpError) as err:
            req.json()
        assert err.value.status == 400


class TestJsonResponse:
    def test_shape(self):
        raw = json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert "Content-Type: application/json" in lines
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        assert json.loads(body) == {"ok": True}

    def test_close_and_extra_headers(self):
        raw = json_response(
            401,
            {"error": "no"},
            keep_alive=False,
            extra_headers=(("WWW-Authenticate", "Bearer"),),
        )
        head = raw.partition(b"\r\n\r\n")[0].decode()
        assert "HTTP/1.1 401 Unauthorized" in head
        assert "Connection: close" in head
        assert "WWW-Authenticate: Bearer" in head
