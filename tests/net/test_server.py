"""End-to-end tests of the ``repro.net`` serving frontend.

A live :class:`NetServer` (ephemeral port, background thread) is driven
through :class:`ServingClient` over real sockets: submitted
project/reconstruct/error queries must match the in-process
``QueryEngine`` answers to 1e-10, a lone query must be flushed within
its ``flush_deadline_ms`` budget (asserted through the
oldest-pending-age stat), and auth/tenancy/metrics/health behave per
the endpoint contract.
"""

import time

import numpy as np
import pytest

from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.config import ServingConfig, TenantSpec
from repro.net import ServingClient, ServingHTTPError, start_in_thread
from repro.serving import ModeBaseStore

NDOF, NT, K = 96, 48, 5

RUN_CFG = RunConfig(
    solver=SolverConfig(K=K, ff=1.0),
    backend=BackendConfig(name="self"),
    stream=StreamConfig(batch=12),
)


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A store with a published basis, plus the data it was built from."""
    rng = np.random.default_rng(3)
    data = rng.standard_normal((NDOF, NT))
    store = ModeBaseStore(tmp_path_factory.mktemp("netstore"))
    with Session(RUN_CFG) as session:
        version = session.fit_stream(data).export_to_store(store, "wave")
    return store, data, version


def serving(**kwargs) -> RunConfig:
    kwargs.setdefault("port", 0)
    kwargs.setdefault("flush_deadline_ms", 60.0)
    kwargs.setdefault("result_cache_entries", 16)
    return RUN_CFG.replace(serving=ServingConfig(**kwargs))


@pytest.fixture
def server(corpus):
    store, _, _ = corpus
    handle = start_in_thread(store, serving())
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with ServingClient.from_url(server.url) as client:
        yield client


class TestEndToEnd:
    def test_http_answers_match_in_process_engine(self, corpus, client):
        store, data, _ = corpus
        rng = np.random.default_rng(11)
        snapshots = [data[:, rng.integers(0, NT, size=3)] for _ in range(4)]
        coeff_payloads = [rng.standard_normal((K, 2)) for _ in range(2)]

        jobs = []
        for snap in snapshots:
            jobs.append(("project", client.submit("wave", snap, kind="project")))
            jobs.append(
                (
                    "reconstruction_error",
                    client.submit("wave", snap, kind="reconstruction_error"),
                )
            )
        for coeffs in coeff_payloads:
            jobs.append(
                ("reconstruct", client.submit("wave", coeffs, kind="reconstruct"))
            )
        answers = [client.result(job, wait=10.0) for _, job in jobs]

        with Session(RUN_CFG) as session:
            engine = session.query_engine(store)
            expected = []
            for snap in snapshots:
                expected.append(engine.project("wave", snap))
                expected.append(engine.reconstruction_error("wave", snap))
            for coeffs in coeff_payloads:
                expected.append(engine.reconstruct("wave", coeffs))
        # Interleave back into submit order: project+error alternate.
        ordered = []
        for i in range(len(snapshots)):
            ordered.append(expected[2 * i])
            ordered.append(expected[2 * i + 1])
        ordered.extend(expected[2 * len(snapshots) :])

        for got, want in zip(answers, ordered):
            assert np.max(np.abs(np.asarray(got) - np.asarray(want))) < 1e-10

    def test_solo_ticket_flushed_within_deadline_budget(self, corpus):
        store, data, _ = corpus
        deadline_ms = 100.0
        handle = start_in_thread(
            store, serving(flush_deadline_ms=deadline_ms, max_batch=64)
        )
        try:
            with ServingClient.from_url(handle.url) as client:
                t0 = time.monotonic()
                job = client.submit("wave", data[:, :2], kind="project")
                assert job["status"] == "pending"  # below the watermark
                client.result(job, wait=10.0)
                latency_s = time.monotonic() - t0
                stats = client.metrics()["engine"]
        finally:
            handle.stop()
        # The deadline scheduler — not the size watermark — answered it:
        assert stats["deadline_flushes"] >= 1
        assert stats["flushes"] == 1
        # and the oldest-pending-age stat shows the ticket waited its
        # budget, within scheduler-poll slack (not a watermark's instant
        # flush, not an unbounded wait).
        age_ms = stats["last_flush_oldest_age_s"] * 1000.0
        assert deadline_ms * 0.9 <= age_ms <= deadline_ms * 5.0
        assert latency_s < 5.0

    def test_watermark_still_flushes_full_batches(self, corpus):
        store, data, _ = corpus
        handle = start_in_thread(
            store, serving(flush_deadline_ms=10_000.0, max_batch=3)
        )
        try:
            with ServingClient.from_url(handle.url) as client:
                jobs = [
                    client.submit("wave", data[:, i : i + 1]) for i in range(3)
                ]
                # Deadline is 10s away: only the watermark can have
                # answered this quickly.
                t0 = time.monotonic()
                for job in jobs:
                    client.result(job, wait=5.0)
                assert time.monotonic() - t0 < 5.0
                stats = client.metrics()["engine"]
        finally:
            handle.stop()
        assert stats["flushes"] == 1
        assert stats["deadline_flushes"] == 0


class TestJobsEndpoint:
    def test_long_poll_blocks_until_flush(self, corpus, client):
        store, data, _ = corpus
        job = client.submit("wave", data[:, :1])
        payload = client.job(job["job"], wait=10.0)
        assert payload["status"] == "done"
        assert payload["kind"] == "project"
        assert payload["basis"] == "wave"
        assert payload["degraded"] is False

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServingHTTPError) as err:
            client.job("j999999-000000")
        assert err.value.status == 404

    def test_result_cache_hit_answers_at_submit(self, corpus, client):
        _, data, _ = corpus
        payload = data[:, 5:8]
        first = client.result(client.submit("wave", payload), wait=10.0)
        again = client.submit("wave", payload)
        assert again["status"] == "done"
        assert again["cached"] is True
        assert np.max(np.abs(np.asarray(again["result"]) - first)) == 0.0


class TestValidationErrors:
    @pytest.mark.parametrize(
        "body, status",
        [
            ({"kind": "project", "payload": [[1.0]]}, 400),  # no basis
            ({"basis": "wave", "kind": "project"}, 400),  # no payload
            ({"basis": "wave", "payload": [["x"]]}, 400),  # non-numeric
            ({"basis": "wave", "kind": "summon", "payload": [[1.0]]}, 400),
            ({"basis": "nope", "payload": [[1.0]]}, 404),  # unknown basis
            ({"basis": "wave", "payload": [[1.0, 2.0]]}, 400),  # bad rows
            ({"basis": "wave", "payload": [[1.0]], "version": "x"}, 400),
        ],
    )
    def test_bad_submissions(self, client, body, status):
        got, _ = client.request_raw("POST", "/v1/query", body)
        assert got == status

    def test_unknown_route_and_method(self, client):
        assert client.request_raw("GET", "/v2/query")[0] == 404
        assert client.request_raw("GET", "/v1/query")[0] == 405
        assert client.request_raw("POST", "/metrics")[0] == 405

    def test_non_object_body_rejected(self, client):
        assert client.request_raw("POST", "/v1/query", [1, 2, 3])[0] == 400


class TestAuth:
    @pytest.fixture
    def tenanted(self, corpus):
        store, _, _ = corpus
        cfg = serving(
            tenants=(
                TenantSpec(name="acme", key="acme-key"),
                TenantSpec(name="zeus", key="zeus-key"),
            )
        )
        handle = start_in_thread(store, cfg)
        yield handle
        handle.stop()

    def test_missing_and_wrong_keys_rejected(self, corpus, tenanted):
        _, data, _ = corpus
        with ServingClient.from_url(tenanted.url) as anon:
            assert (
                anon.request_raw(
                    "POST",
                    "/v1/query",
                    {"basis": "wave", "payload": data[:, :1].tolist()},
                )[0]
                == 401
            )
        with ServingClient.from_url(tenanted.url, api_key="wrong") as bad:
            assert bad.request_raw("GET", "/v1/jobs/j1")[0] == 401

    def test_probes_stay_open(self, tenanted):
        with ServingClient.from_url(tenanted.url) as anon:
            assert anon.healthz()[0] == 200
            assert "engine" in anon.metrics()

    def test_jobs_are_tenant_isolated(self, corpus, tenanted):
        _, data, _ = corpus
        with ServingClient.from_url(tenanted.url, api_key="acme-key") as acme:
            job = acme.submit("wave", data[:, :1])
            acme.result(job, wait=10.0)
            with ServingClient.from_url(
                tenanted.url, api_key="zeus-key"
            ) as zeus:
                with pytest.raises(ServingHTTPError) as err:
                    zeus.job(job["job"])
                assert err.value.status == 404
            # The owner still sees it.
            assert acme.job(job["job"])["status"] == "done"

    def test_per_tenant_counters(self, corpus, tenanted):
        _, data, _ = corpus
        with ServingClient.from_url(tenanted.url, api_key="acme-key") as acme:
            acme.result(acme.submit("wave", data[:, :1]), wait=10.0)
            snapshot = acme.metrics()["tenants"]
        assert snapshot["enabled"] is True
        assert snapshot["tenants"]["acme"]["queries"] == 1
        assert snapshot["tenants"]["acme"]["requests"] >= 2
        assert snapshot["tenants"]["zeus"]["queries"] == 0
        assert snapshot["unauthorized"] == 0


class TestOperatorEndpoints:
    def test_metrics_shape(self, corpus, client):
        _, data, _ = corpus
        client.result(client.submit("wave", data[:, :2]), wait=10.0)
        metrics = client.metrics()
        assert metrics["engine"]["queries"] >= 1
        assert "pending_by_group" in metrics["engine"]
        assert metrics["scheduler"]["poll_interval_s"] > 0.0
        assert metrics["jobs"]["created"] >= 1
        assert metrics["server"]["requests"] >= 2
        assert {"counters", "gauges", "histograms"} <= set(
            metrics["registry"]
        )

    def test_healthz_ok_on_healthy_single_rank(self, client):
        status, payload = client.healthz()
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["failed_ranks"] == []
        assert payload["shard_group_down"] is False

    def test_healthz_degraded_when_shard_group_down(self, server, client):
        server.server._engine._shard_group_down = True
        try:
            status, payload = client.healthz()
        finally:
            server.server._engine._shard_group_down = False
        assert status == 503
        assert payload["status"] == "degraded"
        assert payload["shard_group_down"] is True


class TestServerLifecycle:
    def test_stop_is_idempotent_and_port_real(self, corpus):
        store, _, _ = corpus
        handle = start_in_thread(store, serving())
        assert handle.server.port > 0
        assert handle.url.startswith("http://127.0.0.1:")
        handle.stop()
        handle.stop()  # no-op

    def test_multi_rank_backend_rejected(self, corpus):
        from repro.exceptions import ConfigurationError

        store, _, _ = corpus
        cfg = serving().replace(backend=BackendConfig(name="threads", size=2))
        with pytest.raises(ConfigurationError, match="single-rank"):
            start_in_thread(store, cfg)

    def test_pending_jobs_answered_before_shutdown(self, corpus):
        store, data, _ = corpus
        # A deadline far away and a high watermark: the queue drains only
        # because stop() flushes it.
        handle = start_in_thread(
            store, serving(flush_deadline_ms=60_000.0, max_batch=64)
        )
        with ServingClient.from_url(handle.url) as client:
            job = client.submit("wave", data[:, :1])
            assert job["status"] == "pending"
        handle.stop()
        engine = handle.server._engine
        assert engine is None  # torn down, after a final flush
