"""Communicator split/dup and context isolation."""

import pytest

from repro.smpi import SUM, SelfComm, run_spmd


class TestSplit:
    def test_even_odd_split(self):
        def job(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.rank, sub.size, sub.allgather(comm.rank)

        results = run_spmd(4, job)
        # evens: world ranks 0, 2 -> sub ranks 0, 1
        assert results[0] == (0, 2, [0, 2])
        assert results[2] == (1, 2, [0, 2])
        # odds: world ranks 1, 3
        assert results[1] == (0, 2, [1, 3])
        assert results[3] == (1, 2, [1, 3])

    def test_key_reorders(self):
        def job(comm):
            # reverse ordering via descending key
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        results = run_spmd(4, job)
        assert results == [3, 2, 1, 0]

    def test_undefined_color_returns_none(self):
        def job(comm):
            color = None if comm.rank == 1 else 0
            sub = comm.split(color)
            return sub if sub is None else sub.size

        results = run_spmd(3, job)
        assert results[1] is None
        assert results[0] == 2 and results[2] == 2

    def test_context_isolation_from_parent(self):
        """A message sent on the parent must not be received on the child."""

        def job(comm):
            sub = comm.split(color=0)
            if comm.rank == 0:
                comm.send("parent-msg", dest=1, tag=4)
                sub.send("child-msg", dest=1, tag=4)
                return None
            child = sub.recv(source=0, tag=4)
            parent = comm.recv(source=0, tag=4)
            return parent, child

        results = run_spmd(2, job)
        assert results[1] == ("parent-msg", "child-msg")

    def test_nested_split(self):
        def job(comm):
            half = comm.split(color=comm.rank // 2)
            quarter = half.split(color=half.rank % 2)
            return quarter.size

        results = run_spmd(4, job)
        assert results == [1, 1, 1, 1]

    def test_split_collective_on_subcomm(self):
        def job(comm):
            sub = comm.split(color=comm.rank % 2)
            return sub.allreduce(comm.rank, SUM)

        results = run_spmd(6, job)
        assert results[0] == 0 + 2 + 4
        assert results[1] == 1 + 3 + 5


class TestDup:
    def test_dup_same_topology(self):
        def job(comm):
            dup = comm.dup()
            return dup.rank, dup.size

        results = run_spmd(3, job)
        assert results == [(0, 3), (1, 3), (2, 3)]

    def test_dup_isolated_traffic(self):
        def job(comm):
            dup = comm.dup()
            if comm.rank == 0:
                dup.send(1, dest=1, tag=0)
                comm.send(2, dest=1, tag=0)
                return None
            original = comm.recv(source=0, tag=0)
            duplicated = dup.recv(source=0, tag=0)
            return original, duplicated

        results = run_spmd(2, job)
        assert results[1] == (2, 1)


class TestSelfComm:
    def test_size_one(self):
        comm = SelfComm()
        assert comm.rank == 0
        assert comm.size == 1

    def test_collectives_degenerate(self):
        comm = SelfComm()
        assert comm.bcast(5) == 5
        assert comm.gather(3) == [3]
        assert comm.allgather("x") == ["x"]
        assert comm.allreduce(2, SUM) == 2
        comm.barrier()

    def test_scatter_single(self):
        comm = SelfComm()
        assert comm.scatter([9]) == 9
