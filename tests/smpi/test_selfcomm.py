"""SelfCommunicator: the zero-overhead single-rank backend.

Checks the full communicator protocol against the semantics the threaded
backend guarantees, so the two are interchangeable for size-1 runs.
"""

import numpy as np
import pytest

from repro.smpi import MAX, SUM, SelfCommunicator
from repro.smpi.exceptions import (
    DeadlockError,
    RankError,
    SmpiError,
    TagError,
)


@pytest.fixture
def comm():
    return SelfCommunicator()


class TestIdentity:
    def test_rank_and_size(self, comm):
        assert comm.rank == 0
        assert comm.size == 1
        assert comm.Get_rank() == 0
        assert comm.Get_size() == 1


class TestPointToPoint:
    def test_self_send_recv_roundtrip(self, comm):
        comm.send({"a": np.arange(3)}, dest=0, tag=7)
        out = comm.recv(source=0, tag=7)
        assert np.array_equal(out["a"], np.arange(3))

    def test_value_semantics_on_self_send(self, comm):
        payload = np.ones(4)
        comm.send(payload, dest=0, tag=1)
        payload[:] = -1.0
        assert np.array_equal(comm.recv(tag=1), np.ones(4))

    def test_tag_matching_is_fifo_per_tag(self, comm):
        comm.send("first", dest=0, tag=3)
        comm.send("second", dest=0, tag=3)
        comm.send("other", dest=0, tag=4)
        assert comm.recv(tag=3) == "first"
        assert comm.recv(tag=4) == "other"
        assert comm.recv(tag=3) == "second"

    def test_wildcards(self, comm):
        comm.send(42, dest=0, tag=9)
        assert comm.recv() == 42

    def test_recv_without_send_raises_deadlock(self, comm):
        with pytest.raises(DeadlockError):
            comm.recv(source=0, tag=0)

    def test_bad_peer_rejected(self, comm):
        with pytest.raises(RankError):
            comm.send(1, dest=1)
        with pytest.raises(RankError):
            comm.recv(source=2)

    def test_negative_tag_rejected(self, comm):
        with pytest.raises(TagError):
            comm.send(1, dest=0, tag=-3)

    def test_isend_irecv(self, comm):
        req = comm.isend(np.arange(5), dest=0, tag=2)
        assert req.wait() is None
        rreq = comm.irecv(source=0, tag=2)
        done, payload = rreq.test()
        assert done
        assert np.array_equal(payload, np.arange(5))

    def test_irecv_test_pending(self, comm):
        rreq = comm.irecv(source=0, tag=5)
        assert rreq.test() == (False, None)
        comm.send("late", dest=0, tag=5)
        assert rreq.test() == (True, "late")

    def test_sendrecv_is_identity_with_copy(self, comm):
        buf = np.ones(3)
        out = comm.sendrecv(buf, dest=0, source=0)
        buf[:] = 0.0
        assert np.array_equal(out, np.ones(3))

    def test_iprobe(self, comm):
        assert not comm.iprobe()
        comm.send(1, dest=0, tag=6)
        assert comm.iprobe(source=0, tag=6)
        comm.recv(tag=6)
        assert not comm.iprobe()


class TestCollectives:
    def test_bcast_identity(self, comm):
        obj = np.arange(4)
        assert comm.bcast(obj, root=0) is obj

    def test_gather_and_allgather(self, comm):
        assert comm.gather(5) == [5]
        assert comm.allgather("x") == ["x"]

    def test_scatter(self, comm):
        assert comm.scatter([7]) == 7
        with pytest.raises(SmpiError):
            comm.scatter([1, 2])
        with pytest.raises(SmpiError):
            comm.scatter(None)

    def test_gatherv_scatterv_rows(self, comm):
        block = np.arange(6.0).reshape(3, 2)
        stacked = comm.gatherv_rows(block)
        assert np.array_equal(stacked, block)
        back = comm.scatterv_rows(stacked, counts=[3])
        assert np.array_equal(back, block)
        with pytest.raises(SmpiError):
            comm.scatterv_rows(stacked, counts=[2])
        with pytest.raises(SmpiError):
            comm.scatterv_rows(None, counts=[3])

    def test_reductions(self, comm):
        assert comm.reduce(3.0, SUM) == 3.0
        assert comm.allreduce(4.0, MAX) == 4.0
        assert comm.scan(2.0, SUM) == 2.0
        assert comm.exscan(2.0, SUM) is None
        assert comm.reduce_scatter([5.0], SUM) == 5.0
        with pytest.raises(SmpiError):
            comm.alltoall([1, 2])
        assert comm.alltoall(["only"]) == ["only"]

    def test_barrier_noop(self, comm):
        assert comm.barrier() is None


class TestBufferedOps:
    def test_bcast_buffer(self, comm):
        buf = np.arange(4.0)
        comm.Bcast(buf, root=0)
        assert np.array_equal(buf, np.arange(4.0))

    def test_allreduce_buffer(self, comm):
        out = np.empty(3)
        comm.Allreduce(np.ones(3), out, SUM)
        assert np.array_equal(out, np.ones(3))

    def test_send_recv_buffer(self, comm):
        comm.Send(np.full(2, 7.0), dest=0, tag=1)
        out = np.empty(2)
        comm.Recv(out, source=0, tag=1)
        assert np.array_equal(out, np.full(2, 7.0))


class TestManagement:
    def test_split_and_dup(self, comm):
        child = comm.split(color=3, key=0)
        assert isinstance(child, SelfCommunicator)
        assert comm.split(color=None) is None
        dup = comm.dup()
        assert dup.size == 1 and dup is not comm

    def test_split_queues_are_isolated(self, comm):
        child = comm.split(color=0)
        comm.send("parent", dest=0, tag=1)
        assert not child.iprobe()
        assert comm.recv(tag=1) == "parent"
