"""Zero-copy fast lane: value semantics must survive buffer sharing.

The snapshot-once broadcast shares ONE immutable payload copy across all
``p - 1`` receiver envelopes, and ``gatherv_rows`` assembles blocks
directly into a preallocated root buffer.  These tests pin down the
semantics that make that sharing safe:

* mutating a sent buffer after the send never reaches any receiver;
* no receiver can corrupt what another receiver observed (the shared
  snapshot is read-only);
* lazily sized envelopes still report correct wire sizes to the tracer.
"""

import numpy as np
import pytest

from repro.smpi import run_spmd
from repro.smpi.communicator import SelfComm
from repro.smpi.message import Envelope, copy_payload, freeze_payload


class TestFreezePayload:
    def test_array_frozen_copy(self):
        a = np.arange(4.0)
        frozen, shareable = freeze_payload(a)
        assert shareable
        assert frozen is not a
        assert not frozen.flags.writeable
        a[0] = 99.0
        assert frozen[0] == 0.0

    def test_already_frozen_shared_without_copy(self):
        a = np.arange(3.0)
        a.flags.writeable = False
        frozen, shareable = freeze_payload(a)
        assert shareable
        assert frozen is a

    def test_scalars_shareable(self):
        for obj in (None, 1, 2.5, True, "s", b"b"):
            frozen, shareable = freeze_payload(obj)
            assert shareable
            assert frozen is obj or frozen == obj

    def test_tuple_of_arrays_frozen(self):
        payload = (np.arange(3.0), np.ones(2), 7)
        frozen, shareable = freeze_payload(payload)
        assert shareable
        assert isinstance(frozen, tuple)
        assert not frozen[0].flags.writeable
        payload[0][0] = 5.0
        assert frozen[0][0] == 0.0

    def test_mutable_containers_not_shareable(self):
        for obj in ([np.ones(2)], {"x": np.ones(2)}, object()):
            _, shareable = freeze_payload(obj)
            assert not shareable

    def test_tuple_with_mutable_member_not_shareable(self):
        _, shareable = freeze_payload((np.ones(2), [1, 2]))
        assert not shareable


class TestCopyPayloadReadOnlyFastPath:
    def test_readonly_array_not_copied(self):
        a = np.arange(5.0)
        a.flags.writeable = False
        assert copy_payload(a) is a

    def test_writable_array_still_copied(self):
        a = np.arange(5.0)
        c = copy_payload(a)
        assert c is not a
        a[0] = -1.0
        assert c[0] == 0.0

    def test_readonly_view_of_writable_base_still_copied(self):
        """A writeable=False VIEW tracks its writable base, so it is not
        an immutable snapshot and must be copied (value semantics)."""
        base = np.arange(6.0)
        view = np.broadcast_to(base, (2, 6))  # read-only, base writable
        c = copy_payload(view)
        assert c is not view
        base[0] = 99.0
        assert c[0, 0] == 0.0

    def test_freeze_readonly_view_copies(self):
        base = np.arange(4.0)
        view = base[:3]
        view.flags.writeable = False
        frozen, shareable = freeze_payload(view)
        assert shareable
        assert frozen is not view
        base[0] = -1.0
        assert frozen[0] == 0.0


class TestLazyEnvelopeSizing:
    def test_nbytes_computed_lazily_and_cached(self):
        env = Envelope.make(0, 1, np.zeros(10))
        assert env._nbytes is None  # not sized by the send
        assert env.nbytes == 80
        assert env._nbytes == 80  # cached

    def test_unsizable_payload_sends_fine(self):
        # The sizing walk only happens if something reads nbytes.
        class Opaque:
            def __reduce__(self):
                raise RuntimeError("never pickle me")

        env = Envelope.presnapshotted(0, 1, Opaque())
        assert env.payload is not None
        assert env.nbytes == 0  # sizing failure degrades to 0 on demand

    def test_presnapshotted_skips_copy(self):
        a = np.arange(3.0)
        env = Envelope.presnapshotted(0, 1, a)
        assert env.payload is a


class TestBcastValueSemantics:
    def test_root_mutation_after_bcast_invisible(self):
        """Mutating the sent buffer never affects receivers (satellite:
        mutation test for the shared-snapshot bcast)."""

        def job(comm):
            data = np.arange(6.0) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            if comm.rank == 0:
                data[:] = -1.0  # after the send: must not reach anyone
            comm.barrier()
            return np.array(out)

        results = run_spmd(4, job)
        assert np.array_equal(results[0], np.full(6, -1.0))  # root's own
        for received in results[1:]:
            assert np.array_equal(received, np.arange(6.0))

    def test_receivers_share_one_readonly_snapshot(self):
        def job(comm):
            data = np.arange(4.0) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            comm.barrier()
            return id(out), (None if comm.rank == 0 else out.flags.writeable)

        results = run_spmd(3, job)
        ids = [r[0] for r in results]
        # one copy for all receivers, distinct from the root's object
        assert ids[1] == ids[2] != ids[0]
        assert results[1][1] is False and results[2][1] is False

    def test_receiver_cannot_corrupt_other_receivers(self):
        def job(comm):
            data = np.arange(4.0) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            if comm.rank == 1:
                with pytest.raises(ValueError):
                    out[0] = 99.0  # shared snapshot is immutable
            comm.barrier()
            return np.array(out)

        results = run_spmd(3, job)
        for received in results:
            assert np.array_equal(received, np.arange(4.0))

    def test_tuple_payload_shared_frozen(self):
        def job(comm):
            payload = (np.ones(3), np.zeros(2)) if comm.rank == 0 else None
            u, s = comm.bcast(payload, root=0)
            if comm.rank == 0:
                payload[0][:] = 7.0
            comm.barrier()
            return np.array(u), np.array(s)

        results = run_spmd(3, job)
        for u, s in results[1:]:
            assert np.array_equal(u, np.ones(3))
            assert np.array_equal(s, np.zeros(2))

    def test_unshareable_payload_still_copied_per_peer(self):
        def job(comm):
            payload = {"w": np.arange(3.0)} if comm.rank == 0 else None
            out = comm.bcast(payload, root=0)
            if comm.rank == 0:
                payload["w"][0] = -5.0
            comm.barrier()
            out_id = id(out["w"])
            comm.barrier()
            return np.array(out["w"]), out_id

        results = run_spmd(3, job)
        for arr, _ in results[1:]:
            assert np.array_equal(arr, np.arange(3.0))
        # mutable containers must NOT share buffers between receivers
        assert results[1][1] != results[2][1]


class TestGathervZeroCopy:
    def test_sender_mutation_after_send_invisible(self):
        def job(comm):
            block = np.full((2, 3), float(comm.rank))
            out = comm.gatherv_rows(block, root=0)
            block[:] = -99.0  # after the send
            comm.barrier()
            return None if out is None else np.array(out)

        results = run_spmd(3, job)
        stacked = results[0]
        for rank in range(3):
            assert np.array_equal(
                stacked[2 * rank : 2 * rank + 2], np.full((2, 3), float(rank))
            )

    def test_out_buffer_reused_across_calls(self):
        def job(comm):
            out = np.empty((6, 2)) if comm.rank == 0 else None
            first = comm.gatherv_rows(
                np.full((2, 2), float(comm.rank)), root=0, out=out
            )
            second = comm.gatherv_rows(
                np.full((2, 2), float(comm.rank + 10)), root=0, out=out
            )
            if comm.rank == 0:
                return first is out and second is out, np.array(second)
            return None

        results = run_spmd(3, job)
        reused, second = results[0]
        assert reused
        for rank in range(3):
            assert np.array_equal(
                second[2 * rank : 2 * rank + 2],
                np.full((2, 2), float(rank + 10)),
            )

    def test_mismatched_out_ignored(self):
        def job(comm):
            out = np.empty((4, 4)) if comm.rank == 0 else None  # wrong shape
            stacked = comm.gatherv_rows(np.ones((2, 2)), root=0, out=out)
            if comm.rank == 0:
                return stacked.shape, stacked is out
            return None

        shape, is_out = run_spmd(2, job)[0]
        assert shape == (4, 2)
        assert not is_out

    def test_ragged_counts(self):
        def job(comm):
            block = np.full((comm.rank + 1, 2), float(comm.rank))
            return comm.gatherv_rows(block, root=0)

        stacked = run_spmd(3, job)[0]
        assert stacked.shape == (6, 2)
        assert np.array_equal(stacked[:1], np.zeros((1, 2)))
        assert np.array_equal(stacked[1:3], np.ones((2, 2)))
        assert np.array_equal(stacked[3:], np.full((3, 2), 2.0))

    def test_mixed_dtype_blocks_promote(self):
        """Root f32 + peer f64 must promote like np.concatenate (the
        pre-PR and generic-mixin behavior), not truncate to the root's
        dtype."""

        def job(comm):
            dtype = np.float32 if comm.rank == 0 else np.float64
            block = np.full((1, 2), np.pi, dtype=dtype)
            out = comm.gatherv_rows(block, root=0)
            return None if out is None else (out.dtype, np.array(out))

        dtype, stacked = run_spmd(2, job)[0]
        assert dtype == np.float64
        assert stacked[1, 0] == np.pi  # full f64 precision preserved

    def test_selfcomm_out_filled(self):
        comm = SelfComm()
        out = np.empty((2, 2))
        block = np.arange(4.0).reshape(2, 2)
        result = comm.gatherv_rows(block, root=0, out=out)
        assert result is out
        assert np.array_equal(out, block)


class TestGenericMixinGatherv:
    """The mixin fallback (used by backends without the threaded override,
    e.g. the mpi4py adapter) must match the threaded semantics."""

    class _FakeComm:
        from repro.smpi.derived import DerivedCollectivesMixin

        def __init__(self, blocks):
            self._blocks = blocks
            self.rank, self.size = 0, len(blocks)

        def gather(self, obj, root=0):
            return list(self._blocks)

        gatherv_rows = DerivedCollectivesMixin.gatherv_rows

    def test_stacks_and_promotes(self):
        comm = self._FakeComm(
            [np.ones((2, 3), dtype=np.float32), np.zeros((1, 3))]
        )
        out = comm.gatherv_rows(np.ones((2, 3), dtype=np.float32))
        assert out.shape == (3, 3) and out.dtype == np.float64

    def test_width_mismatch_raises_not_broadcasts(self):
        from repro.smpi.exceptions import SmpiError

        comm = self._FakeComm([np.ones((2, 3)), np.zeros((2, 1))])
        with pytest.raises(SmpiError):
            comm.gatherv_rows(np.ones((2, 3)))

    def test_readonly_out_falls_back_to_allocation(self):
        blocks = [np.ones((1, 2)), np.zeros((1, 2))]
        comm = self._FakeComm(blocks)
        frozen = np.empty((2, 2))
        frozen.flags.writeable = False
        out = comm.gatherv_rows(np.ones((1, 2)), out=frozen)
        assert out is not frozen
        assert out.flags.writeable


class TestAlltoallSelfDelivery:
    def test_own_payload_snapshotted_once(self):
        def job(comm):
            sends = [np.full(2, float(j)) for j in range(comm.size)]
            out = comm.alltoall(sends)
            sends[comm.rank][:] = -1.0  # mutate own slot after the call
            comm.barrier()
            return np.array(out[comm.rank])

        results = run_spmd(3, job)
        for rank, own in enumerate(results):
            assert np.array_equal(own, np.full(2, float(rank)))


class TestTracerStillSized:
    def test_bcast_bytes_accounted_with_shared_snapshot(self):
        def job(comm):
            data = np.zeros(10) if comm.rank == 0 else None
            comm.bcast(data, root=0)
            return comm.bytes_for("bcast")

        results = run_spmd(3, job, trace=True)[0]
        # root: (p-1) * 80 bytes; receivers: 80 each
        assert results[0] == 160
        assert results[1] == 80 and results[2] == 80

    def test_gatherv_bytes_accounted(self):
        def job(comm):
            comm.gatherv_rows(np.zeros((2, 5)), root=0)
            return comm.bytes_for("gatherv")

        results = run_spmd(3, job, trace=True)[0]
        assert results[0] == 160  # two remote 80-byte blocks received
        assert results[1] == 80 and results[2] == 80
