"""iprobe / mailbox peek semantics."""

import numpy as np

from repro.smpi import run_spmd
from repro.smpi.mailbox import Mailbox
from repro.smpi.message import Envelope


class TestIprobe:
    def test_probe_sees_pending_message(self):
        def job(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=3)
                comm.barrier()
                return None
            comm.barrier()  # message guaranteed posted
            seen = comm.iprobe(source=0, tag=3)
            payload = comm.recv(source=0, tag=3)
            return seen, payload

        results = run_spmd(2, job)
        assert results[1] == (True, "x")

    def test_probe_does_not_consume(self):
        def job(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=0)
                comm.barrier()
                return None
            comm.barrier()
            first = comm.iprobe(source=0, tag=0)
            second = comm.iprobe(source=0, tag=0)
            return first, second, comm.recv(source=0, tag=0)

        results = run_spmd(2, job)
        assert results[1] == (True, True, 1)

    def test_probe_empty_false(self):
        def job(comm):
            return comm.iprobe()

        assert run_spmd(2, job) == [False, False]

    def test_probe_preserves_delivery_order(self):
        def job(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=7)
                comm.send("second", dest=1, tag=7)
                comm.barrier()
                return None
            comm.barrier()
            comm.iprobe(source=0, tag=7)  # must not reorder
            a = comm.recv(source=0, tag=7)
            b = comm.recv(source=0, tag=7)
            return a, b

        results = run_spmd(2, job)
        assert results[1] == ("first", "second")

    def test_probe_wildcards(self):
        def job(comm):
            if comm.rank == 0:
                comm.send(0, dest=1, tag=9)
                comm.barrier()
                return None
            comm.barrier()
            any_any = comm.iprobe()
            wrong_tag = comm.iprobe(source=0, tag=8)
            comm.recv(source=0, tag=9)
            return any_any, wrong_tag

        results = run_spmd(2, job)
        assert results[1] == (True, False)


class TestMailboxPeek:
    def test_peek_leaves_queue_intact(self):
        box = Mailbox(owner=0, timeout=1.0)
        box.put(Envelope.make(1, 5, "payload"))
        assert box.peek(1, 5).payload == "payload"
        assert box.pending() == 1
        assert box.poll(1, 5).payload == "payload"
        assert box.pending() == 0

    def test_peek_no_match(self):
        box = Mailbox(owner=0, timeout=1.0)
        box.put(Envelope.make(1, 5, "x"))
        assert box.peek(2, 5) is None
        assert box.peek(1, 6) is None
        assert box.pending() == 1
