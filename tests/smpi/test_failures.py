"""Failure-injection tests: how the runtime behaves when ranks die.

Real MPI aborts the whole job when one rank crashes; our runtime must (a)
never hang forever, (b) attribute failures to the right ranks, and (c)
surface secondary deadlocks (peers stuck waiting on the dead rank) as
diagnosable errors rather than silent stalls.
"""

import numpy as np
import pytest

from repro.smpi import SUM, ParallelFailure, run_spmd
from repro.smpi.exceptions import FailedRankError


class TestCrashBeforeCollective:
    def test_peers_fail_fast_with_failed_rank(self):
        """Rank 1 dies before the barrier; the others are woken immediately
        with a FailedRankError naming the dead rank — not a generic
        deadlock timeout."""

        def job(comm):
            if comm.rank == 1:
                raise RuntimeError("simulated crash")
            comm.barrier()

        with pytest.raises(ParallelFailure) as info:
            run_spmd(3, job, timeout=30.0)
        by_rank = {f.rank: f.exception for f in info.value.failures}
        assert isinstance(by_rank[1], RuntimeError)
        # at least rank 0 (barrier root) was stuck waiting on rank 1
        stuck = [
            exc
            for rank, exc in by_rank.items()
            if rank != 1 and isinstance(exc, FailedRankError)
        ]
        assert stuck
        for exc in stuck:
            assert exc.failed_ranks == (1,)
            assert "rank(s) [1] failed" in str(exc)

    def test_crash_during_gather_root_stuck(self):
        def job(comm):
            if comm.rank == 2:
                raise ValueError("dead before contributing")
            comm.gather(comm.rank, root=0)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(3, job, timeout=30.0)
        by_rank = {f.rank: f.exception for f in info.value.failures}
        assert isinstance(by_rank[2], ValueError)
        assert isinstance(by_rank.get(0), FailedRankError)
        assert by_rank[0].failed_ranks == (2,)

    def test_nonroot_ranks_survive_root_crash_in_bcast(self):
        def job(comm):
            if comm.rank == 0:
                raise RuntimeError("root gone")
            return comm.bcast(None, root=0)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(3, job, timeout=1.5)
        ranks = sorted(f.rank for f in info.value.failures)
        assert ranks == [0, 1, 2]


class TestPartialProgress:
    def test_completed_work_before_crash_is_reported(self):
        """Failures carry tracebacks pointing at the crash site."""

        def job(comm):
            value = comm.allreduce(comm.rank, SUM)
            if comm.rank == 0:
                raise KeyError(f"after allreduce got {value}")
            return value

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job, timeout=2.0)
        failure = info.value.failures[0]
        assert failure.rank == 0
        assert "after allreduce got 1" in str(failure.exception)
        assert "job" in failure.traceback

    def test_successful_ranks_results_discarded_on_failure(self):
        """A ParallelFailure means no partial results leak out."""

        def job(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return "value"

        with pytest.raises(ParallelFailure):
            run_spmd(2, job, timeout=2.0)


class TestIsolationBetweenRuns:
    def test_fresh_world_per_run(self):
        """A crashed run must not pollute a subsequent run (fresh World)."""

        def bad(comm):
            if comm.rank == 0:
                raise RuntimeError("first run dies")
            comm.send(np.ones(3), dest=0, tag=5)  # orphaned message

        with pytest.raises(ParallelFailure):
            run_spmd(2, bad, timeout=1.5)

        def good(comm):
            # same tag/peer pattern; must not receive the orphan from run 1
            if comm.rank == 1:
                comm.send(np.zeros(3), dest=0, tag=5)
                return None
            return comm.recv(source=1, tag=5)

        results = run_spmd(2, good)
        assert np.array_equal(results[0], np.zeros(3))
