"""Point-to-point semantics of the smpi runtime."""

import numpy as np
import pytest

from repro.smpi import ANY_SOURCE, ANY_TAG, run_spmd
from repro.smpi.exceptions import RankError, TagError


class TestSendRecv:
    def test_basic_roundtrip(self):
        def job(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        results = run_spmd(2, job)
        assert results[1] == {"a": 7}

    def test_numpy_payload(self):
        def job(comm):
            if comm.rank == 0:
                comm.send(np.arange(10.0), dest=1)
                return None
            return comm.recv(source=0)

        results = run_spmd(2, job)
        assert np.array_equal(results[1], np.arange(10.0))

    def test_value_semantics_mutation_after_send(self):
        """Mutating a sent array must not affect the receiver (MPI copies)."""

        def job(comm):
            if comm.rank == 0:
                data = np.zeros(4)
                comm.send(data, dest=1, tag=0)
                data[:] = 99.0  # mutate after send
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0, tag=0)

        results = run_spmd(2, job)
        assert np.array_equal(results[1], np.zeros(4))

    def test_tag_selectivity(self):
        """recv(tag=t) must skip non-matching messages."""

        def job(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return first, second

        results = run_spmd(2, job)
        assert results[1] == ("first", "second")

    def test_any_source_any_tag(self):
        def job(comm):
            if comm.rank == 2:
                got = {comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2)}
                return got
            comm.send(comm.rank, dest=2, tag=comm.rank)
            return None

        results = run_spmd(3, job)
        assert results[2] == {0, 1}

    def test_non_overtaking_same_source_tag(self):
        def job(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=5)
                return None
            return [comm.recv(source=0, tag=5) for _ in range(20)]

        results = run_spmd(2, job)
        assert results[1] == list(range(20))

    def test_invalid_dest_raises(self):
        from repro.smpi import ParallelFailure

        def job(comm):
            comm.send(1, dest=5)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job)
        assert all(
            isinstance(f.exception, RankError) for f in info.value.failures
        )

    def test_negative_user_tag_rejected(self):
        from repro.smpi import ParallelFailure

        def job(comm):
            if comm.rank == 0:
                comm.send(1, dest=1, tag=-3)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job, timeout=5.0)
        assert any(
            isinstance(f.exception, TagError) for f in info.value.failures
        )


class TestNonblocking:
    def test_isend_irecv(self):
        def job(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1, tag=9)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=9)
            return req.wait()

        results = run_spmd(2, job)
        assert results[1] == [1, 2, 3]

    def test_irecv_test_polls(self):
        def job(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send("late", dest=1, tag=0)
                return None
            req = comm.irecv(source=0, tag=0)
            done_before, _ = req.test()
            comm.barrier()
            payload = req.wait()
            return done_before, payload

        results = run_spmd(2, job)
        done_before, payload = results[1]
        assert done_before is False
        assert payload == "late"

    def test_send_request_always_done(self):
        def job(comm):
            if comm.rank == 0:
                req = comm.isend(0, dest=1)
                done, payload = req.test()
                comm.recv(source=1)  # drain partner's message
                return done, payload
            comm.recv(source=0)
            comm.send(1, dest=0)
            return None

        results = run_spmd(2, job)
        assert results[0] == (True, None)


class TestSendrecv:
    def test_ring_exchange(self):
        def job(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        results = run_spmd(4, job)
        assert results == [3, 0, 1, 2]


class TestDeadlockDetection:
    def test_recv_without_send_times_out(self):
        from repro.smpi import ParallelFailure
        from repro.smpi.exceptions import DeadlockError

        def job(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=7)  # never sent

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job, timeout=1.0)
        assert any(
            isinstance(f.exception, DeadlockError)
            for f in info.value.failures
        )
