"""DeadlockError enrichment: a timed-out receive appends the provenance
tracker's dump of every request still in flight — the diagnosis rides in
the exception instead of needing a debugger."""

import pytest

from repro.smpi import create_communicator, provenance
from repro.smpi.exceptions import DeadlockError


def test_deadlock_message_lists_pending_requests():
    comms = create_communicator("threads", 2, timeout=0.2)
    comm = comms[0]
    with provenance.track():
        outstanding = comm.irecv(source=1, tag=7)
        with pytest.raises(DeadlockError) as excinfo:
            comm.recv(source=1, tag=9)
        message = str(excinfo.value)
        assert "timed out" in message
        assert "request(s) still pending" in message
        # The un-matched irecv is named with its (source, tag) pattern.
        assert "RecvRequest" in message
        assert "source=1, tag=7" in message
        outstanding.cancel()


def test_deadlocked_wait_reports_other_pending_requests():
    comms = create_communicator("threads", 2, timeout=5.0)
    comm = comms[0]
    with provenance.track():
        first = comm.irecv(source=1, tag=1)
        second = comm.irecv(source=1, tag=2)
        with pytest.raises(DeadlockError) as excinfo:
            first.wait(timeout=0.1)
        message = str(excinfo.value)
        assert "deadlocked nonblocking receive" in message
        assert "source=1, tag=2" in message
        first.cancel()
        second.cancel()


def test_dump_silent_outside_tracking():
    """Without provenance tracking the timeout message stays lean."""
    comms = create_communicator("threads", 2, timeout=0.1)
    comm = comms[0]
    with pytest.raises(DeadlockError) as excinfo:
        comm.recv(source=1, tag=3)
    assert "still pending" not in str(excinfo.value)


def test_track_scope_reports_and_clears():
    comms = create_communicator("threads", 2, timeout=1.0)
    comm0, comm1 = comms
    with provenance.track() as scope:
        request = comm0.irecv(source=1, tag=4)
        leaks = scope.pending_requests()
        assert len(leaks) == 1
        assert "tag=4" in leaks[0].detail
        comm1.send("x", 0, tag=4)
        request.wait()
        assert scope.pending_requests() == []
