"""Collective operations of the smpi runtime."""

import numpy as np
import pytest

from repro.smpi import MAX, MIN, PROD, SUM, ParallelFailure, run_spmd


class TestBcast:
    def test_scalar(self):
        def job(comm):
            value = 42 if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        assert run_spmd(4, job) == [42, 42, 42, 42]

    def test_array_copies_to_receivers(self):
        def job(comm):
            data = np.arange(5.0) if comm.rank == 0 else None
            out = comm.bcast(data, root=0)
            out_id = id(out)
            comm.barrier()
            return np.array(out), out_id

        results = run_spmd(3, job)
        arrays = [r[0] for r in results]
        ids = [r[1] for r in results]
        for arr in arrays:
            assert np.array_equal(arr, np.arange(5.0))
        # receivers must hold copies, not the root's object
        assert ids[1] != ids[0] and ids[2] != ids[0]

    def test_nonzero_root(self):
        def job(comm):
            value = "hello" if comm.rank == 2 else None
            return comm.bcast(value, root=2)

        assert run_spmd(4, job) == ["hello"] * 4

    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.bcast(7, root=0)) == [7]


class TestGatherScatter:
    def test_gather_rank_order(self):
        def job(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = run_spmd(5, job)
        assert results[0] == [0, 10, 20, 30, 40]
        assert all(r is None for r in results[1:])

    def test_gather_nonzero_root(self):
        def job(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=1)

        results = run_spmd(3, job)
        assert results[1] == ["a", "b", "c"]
        assert results[0] is None

    def test_scatter(self):
        def job(comm):
            items = [i**2 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(items, root=0)

        assert run_spmd(4, job) == [0, 1, 4, 9]

    def test_scatter_wrong_length_raises(self):
        def job(comm):
            items = [1, 2] if comm.rank == 0 else None
            return comm.scatter(items, root=0)

        with pytest.raises(ParallelFailure):
            run_spmd(3, job, timeout=2.0)

    def test_allgather(self):
        def job(comm):
            return comm.allgather(comm.rank + 1)

        results = run_spmd(4, job)
        for r in results:
            assert r == [1, 2, 3, 4]

    def test_gatherv_rows(self):
        def job(comm):
            block = np.full((comm.rank + 1, 2), float(comm.rank))
            return comm.gatherv_rows(block, root=0)

        results = run_spmd(3, job)
        stacked = results[0]
        assert stacked.shape == (6, 2)
        assert np.array_equal(stacked[:1], np.zeros((1, 2)))
        assert np.array_equal(stacked[1:3], np.ones((2, 2)))
        assert np.array_equal(stacked[3:], np.full((3, 2), 2.0))

    def test_scatterv_rows_roundtrip(self):
        full = np.arange(24.0).reshape(12, 2)

        def job(comm):
            counts = [3, 4, 5]
            send = full if comm.rank == 0 else None
            block = comm.scatterv_rows(send, counts, root=0)
            return comm.gatherv_rows(block, root=0)

        results = run_spmd(3, job)
        assert np.array_equal(results[0], full)


class TestReductions:
    def test_allreduce_sum(self):
        def job(comm):
            return comm.allreduce(comm.rank + 1, SUM)

        assert run_spmd(4, job) == [10, 10, 10, 10]

    def test_reduce_only_root(self):
        def job(comm):
            return comm.reduce(comm.rank, SUM, root=0)

        results = run_spmd(3, job)
        assert results[0] == 3
        assert results[1] is None

    def test_allreduce_array_elementwise(self):
        def job(comm):
            return comm.allreduce(np.array([comm.rank, 1.0]), SUM)

        results = run_spmd(3, job)
        for r in results:
            assert np.array_equal(r, np.array([3.0, 3.0]))

    def test_max_min_prod(self):
        def job(comm):
            return (
                comm.allreduce(comm.rank, MAX),
                comm.allreduce(comm.rank, MIN),
                comm.allreduce(comm.rank + 1, PROD),
            )

        results = run_spmd(4, job)
        for r in results:
            assert r == (3, 0, 24)

    def test_reduction_deterministic_order(self):
        """Rank-ordered fold: floating-point result is exactly repeatable."""

        def job(comm):
            contribution = (0.1 + comm.rank) * 1e-7
            return comm.allreduce(contribution, SUM)

        first = run_spmd(4, job)
        second = run_spmd(4, job)
        assert first == second


class TestAlltoallBarrier:
    def test_alltoall(self):
        def job(comm):
            sends = [f"{comm.rank}->{j}" for j in range(comm.size)]
            return comm.alltoall(sends)

        results = run_spmd(3, job)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_alltoall_wrong_length(self):
        def job(comm):
            return comm.alltoall([1])

        with pytest.raises(ParallelFailure):
            run_spmd(3, job, timeout=2.0)

    def test_barrier_orders_phases(self):
        """A message sent after the barrier cannot be received before it."""
        import threading

        hits = []
        lock = threading.Lock()

        def job(comm):
            with lock:
                hits.append(("pre", comm.rank))
            comm.barrier()
            with lock:
                hits.append(("post", comm.rank))

        run_spmd(4, job)
        pre_indices = [i for i, (phase, _) in enumerate(hits) if phase == "pre"]
        post_indices = [i for i, (phase, _) in enumerate(hits) if phase == "post"]
        assert max(pre_indices) < min(post_indices)


class TestSequencesOfCollectives:
    def test_back_to_back_bcasts_keep_order(self):
        def job(comm):
            a = comm.bcast("one" if comm.rank == 0 else None, root=0)
            b = comm.bcast("two" if comm.rank == 0 else None, root=0)
            return a, b

        results = run_spmd(4, job)
        for r in results:
            assert r == ("one", "two")

    def test_mixed_collective_pipeline(self):
        def job(comm):
            total = comm.allreduce(comm.rank, SUM)
            ranks = comm.allgather(comm.rank)
            piece = comm.scatter(
                list(range(comm.size)) if comm.rank == 0 else None, root=0
            )
            return total, ranks, piece

        results = run_spmd(4, job)
        for rank, (total, ranks, piece) in enumerate(results):
            assert total == 6
            assert ranks == [0, 1, 2, 3]
            assert piece == rank
