"""SPMD executor behaviour: results, failures, tracing."""

import numpy as np
import pytest

from repro.smpi import CommTracer, ParallelFailure, run_spmd
from repro.smpi.exceptions import SmpiError


class TestResults:
    def test_results_rank_ordered(self):
        results = run_spmd(6, lambda c: c.rank * 2)
        assert results == [0, 2, 4, 6, 8, 10]

    def test_args_and_kwargs_forwarded(self):
        def job(comm, base, scale=1):
            return base + scale * comm.rank

        assert run_spmd(3, job, 100, scale=10) == [100, 110, 120]

    def test_single_rank_runs_inline(self):
        import threading

        main = threading.current_thread().name

        def job(comm):
            return threading.current_thread().name

        assert run_spmd(1, job) == [main]

    def test_size_and_rank_exposed(self):
        def job(comm):
            return comm.Get_rank(), comm.Get_size()

        assert run_spmd(3, job) == [(0, 3), (1, 3), (2, 3)]

    def test_invalid_nprocs(self):
        with pytest.raises(SmpiError):
            run_spmd(0, lambda c: None)


class TestFailures:
    def test_single_rank_failure_collected(self):
        def job(comm):
            if comm.rank == 1:
                raise ValueError("boom on 1")
            return "ok"

        with pytest.raises(ParallelFailure) as info:
            run_spmd(3, job)
        failures = info.value.failures
        assert len(failures) == 1
        assert failures[0].rank == 1
        assert isinstance(failures[0].exception, ValueError)

    def test_multiple_failures_all_reported(self):
        def job(comm):
            raise RuntimeError(f"rank {comm.rank}")

        with pytest.raises(ParallelFailure) as info:
            run_spmd(3, job)
        assert sorted(f.rank for f in info.value.failures) == [0, 1, 2]

    def test_failure_message_includes_traceback(self):
        def job(comm):
            raise KeyError("distinctive-marker")

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job)
        assert "distinctive-marker" in str(info.value)

    def test_inline_single_rank_failure_wrapped(self):
        def job(comm):
            raise TypeError("inline failure")

        with pytest.raises(ParallelFailure):
            run_spmd(1, job)


class TestTracing:
    def test_trace_returns_tracers(self):
        def job(comm):
            comm.bcast(np.zeros(10) if comm.rank == 0 else None, root=0)
            return None

        results, tracers = run_spmd(3, job, trace=True)
        assert len(tracers) == 3
        assert all(isinstance(t, CommTracer) for t in tracers)
        # root sent 2 copies of 80 bytes, each receiver got 80
        assert tracers[0].bytes_for("bcast") == 160
        assert tracers[1].bytes_for("bcast") == 80

    def test_trace_single_rank(self):
        def job(comm):
            comm.barrier()
            return comm.rank

        results, tracers = run_spmd(1, job, trace=True)
        assert results == [0]
        assert tracers[0].summary().events == 1
