"""Communicator backend factory: create_communicator / run_backend."""

import numpy as np
import pytest

from repro.smpi import (
    BACKENDS,
    DEFAULT_BACKEND,
    HAVE_MPI4PY,
    SUM,
    CommTracer,
    Communicator,
    ParallelFailure,
    SelfCommunicator,
    SmpiError,
    create_communicator,
    run_backend,
)


class TestCreateCommunicator:
    def test_registry(self):
        assert DEFAULT_BACKEND in BACKENDS
        assert set(BACKENDS) == {"threads", "self", "mpi4py"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(SmpiError, match="unknown communicator backend"):
            create_communicator("bogus", 1)

    def test_bad_size_rejected(self):
        with pytest.raises(SmpiError):
            create_communicator("threads", 0)

    def test_self_backend(self):
        comm = create_communicator("self", 1)
        assert isinstance(comm, SelfCommunicator)
        assert (comm.rank, comm.size) == (0, 1)

    def test_self_backend_is_single_rank_only(self):
        with pytest.raises(SmpiError, match="single-rank"):
            create_communicator("self", 2)

    def test_threads_single_rank_returns_one_comm(self):
        comm = create_communicator("threads", 1)
        assert isinstance(comm, Communicator)
        assert (comm.rank, comm.size) == (0, 1)

    def test_threads_multi_rank_returns_per_rank_comms(self):
        comms = create_communicator("threads", 3)
        assert isinstance(comms, tuple) and len(comms) == 3
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)

    @pytest.mark.skipif(HAVE_MPI4PY, reason="mpi4py installed; adapter works")
    def test_mpi4py_backend_guarded_when_absent(self):
        with pytest.raises(SmpiError, match="mpi4py"):
            create_communicator("mpi4py", 1)

    @pytest.mark.skipif(not HAVE_MPI4PY, reason="mpi4py not installed")
    def test_mpi4py_backend_wraps_comm_world(self):
        comm = create_communicator("mpi4py")
        assert comm.size >= 1
        assert comm.bcast(123, root=0) == 123


class TestRunBackend:
    def test_threads_matches_run_spmd(self):
        results = run_backend("threads", 4, lambda comm: comm.rank**2)
        assert results == [0, 1, 4, 9]

    def test_self_returns_single_result_list(self):
        results = run_backend("self", 1, lambda comm: comm.size)
        assert results == [1]

    def test_args_and_kwargs_forwarded(self):
        def job(comm, a, b=0):
            return a + b + comm.rank

        assert run_backend("self", 1, job, 10, b=5) == [15]
        assert run_backend("threads", 2, job, 10, b=5) == [15, 16]

    def test_self_trace_wraps_tracer(self):
        def job(comm):
            return comm.allreduce(np.ones(4), SUM)

        results, tracers = run_backend("self", 1, job, trace=True)
        assert np.array_equal(results[0], np.ones(4))
        assert len(tracers) == 1
        assert isinstance(tracers[0], CommTracer)
        assert tracers[0].summary().events == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(SmpiError):
            run_backend("bogus", 1, lambda comm: None)

    def test_collectives_agree_across_backends(self):
        """The same SPMD function gives the same answer on every backend
        it can run on — the point of the protocol."""

        def job(comm):
            total = comm.allreduce(float(comm.rank + 1), SUM)
            stacked = comm.gatherv_rows(
                np.full((2, 2), float(comm.rank)), root=0
            )
            stacked = comm.bcast(stacked, root=0)
            return total, stacked.shape[0]

        self_result = run_backend("self", 1, job)[0]
        threads_result = run_backend("threads", 1, job)[0]
        assert self_result == threads_result == (1.0, 2)

    def test_parallel_failure_propagates_from_threads(self):
        def bad(comm):
            raise ValueError("boom")

        with pytest.raises(ParallelFailure):
            run_backend("threads", 2, bad, timeout=5.0)
