"""scan / exscan / reduce_scatter collectives."""

import numpy as np
import pytest

from repro.smpi import MAX, SUM, ParallelFailure, run_spmd


class TestScan:
    def test_inclusive_prefix_sum(self):
        def job(comm):
            return comm.scan(comm.rank + 1, SUM)

        assert run_spmd(4, job) == [1, 3, 6, 10]

    def test_scan_max(self):
        values = [3, 1, 4, 1, 5]

        def job(comm):
            return comm.scan(values[comm.rank], MAX)

        assert run_spmd(5, job) == [3, 3, 4, 4, 5]

    def test_scan_arrays(self):
        def job(comm):
            return comm.scan(np.full(2, float(comm.rank)), SUM)

        results = run_spmd(3, job)
        assert np.array_equal(results[2], np.array([3.0, 3.0]))

    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.scan(7, SUM)) == [7]

    def test_scan_deterministic_float(self):
        def job(comm):
            return comm.scan(0.1 * (comm.rank + 1), SUM)

        assert run_spmd(4, job) == run_spmd(4, job)


class TestExscan:
    def test_exclusive_prefix_sum(self):
        def job(comm):
            return comm.exscan(comm.rank + 1, SUM)

        assert run_spmd(4, job) == [None, 1, 3, 6]

    def test_rank0_undefined(self):
        assert run_spmd(2, lambda c: c.exscan(5, SUM))[0] is None

    def test_offset_computation_pattern(self):
        """The classic use: each rank computes its write offset from the
        block sizes of the ranks before it."""
        sizes = [10, 25, 5, 40]

        def job(comm):
            offset = comm.exscan(sizes[comm.rank], SUM)
            return 0 if offset is None else offset

        assert run_spmd(4, job) == [0, 10, 35, 40]


class TestReduceScatter:
    def test_blockwise_reduction(self):
        def job(comm):
            blocks = [10 * comm.rank + j for j in range(comm.size)]
            return comm.reduce_scatter(blocks, SUM)

        # rank j receives sum_i (10*i + j) = 10*(0+1+2) + 3*j
        assert run_spmd(3, job) == [30, 33, 36]

    def test_array_blocks(self):
        def job(comm):
            blocks = [np.full(2, float(comm.rank))] * comm.size
            return comm.reduce_scatter(blocks, SUM)

        results = run_spmd(3, job)
        for r in results:
            assert np.array_equal(r, np.array([3.0, 3.0]))

    def test_wrong_block_count(self):
        def job(comm):
            comm.reduce_scatter([1], SUM)

        with pytest.raises(ParallelFailure):
            run_spmd(3, job, timeout=2.0)

    def test_matches_reduce_then_scatter(self):
        rows = np.arange(16.0).reshape(4, 4)

        def via_reduce_scatter(comm):
            return comm.reduce_scatter(list(rows[comm.rank]), SUM)

        def via_reduce_and_scatter(comm):
            total = comm.reduce(rows[comm.rank], SUM, root=0)
            return comm.scatter(
                list(total) if comm.rank == 0 else None, root=0
            )

        assert run_spmd(4, via_reduce_scatter) == run_spmd(
            4, via_reduce_and_scatter
        )
