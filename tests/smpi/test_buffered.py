"""Uppercase (buffer-mode) operations: mpi4py's 'fast way'."""

import numpy as np
import pytest

from repro.smpi import SUM, ParallelFailure, SelfComm, run_spmd
from repro.smpi.exceptions import SmpiError


class TestSendRecvBuffers:
    def test_in_place_delivery(self):
        def job(comm):
            if comm.rank == 0:
                comm.Send(np.arange(8.0), dest=1, tag=7)
                return None
            buf = np.zeros(8)
            comm.Recv(buf, source=0, tag=7)
            return buf

        results = run_spmd(2, job)
        assert np.array_equal(results[1], np.arange(8.0))

    def test_dtype_mismatch_rejected(self):
        def job(comm):
            if comm.rank == 0:
                comm.Send(np.arange(4, dtype=np.float64), dest=1)
            else:
                buf = np.zeros(4, dtype=np.float32)
                comm.Recv(buf, source=0)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job, timeout=5.0)
        assert any(
            isinstance(f.exception, SmpiError) for f in info.value.failures
        )

    def test_size_mismatch_rejected(self):
        def job(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(4), dest=1)
            else:
                buf = np.zeros(5)
                comm.Recv(buf, source=0)

        with pytest.raises(ParallelFailure):
            run_spmd(2, job, timeout=5.0)

    def test_non_contiguous_rejected(self):
        comm = SelfComm()
        strided = np.zeros((4, 4))[:, ::2]
        with pytest.raises(SmpiError):
            comm.Send(strided, dest=0)

    def test_non_array_rejected(self):
        comm = SelfComm()
        with pytest.raises(SmpiError):
            comm.Send([1, 2, 3], dest=0)

    def test_2d_buffers_roundtrip(self):
        def job(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6.0).reshape(2, 3), dest=1)
                return None
            buf = np.zeros((2, 3))
            comm.Recv(buf, source=0)
            return buf

        results = run_spmd(2, job)
        assert np.array_equal(results[1], np.arange(6.0).reshape(2, 3))


class TestBcastBuffer:
    def test_in_place_everywhere(self):
        def job(comm):
            buf = np.arange(5.0) if comm.rank == 0 else np.zeros(5)
            comm.Bcast(buf, root=0)
            return buf

        for result in run_spmd(3, job):
            assert np.array_equal(result, np.arange(5.0))

    def test_int_dtype(self):
        def job(comm):
            buf = (
                np.arange(4, dtype=np.int64)
                if comm.rank == 0
                else np.zeros(4, dtype=np.int64)
            )
            comm.Bcast(buf, root=0)
            return buf

        for result in run_spmd(2, job):
            assert result.dtype == np.int64
            assert np.array_equal(result, np.arange(4))


class TestGatherScatterBuffers:
    def test_gather_into_stacked_buffer(self):
        def job(comm):
            send = np.full(3, float(comm.rank))
            recv = np.zeros((comm.size, 3)) if comm.rank == 0 else None
            comm.Gather(send, recv, root=0)
            return recv

        results = run_spmd(4, job)
        expected = np.repeat(np.arange(4.0)[:, None], 3, axis=1)
        assert np.array_equal(results[0], expected)
        assert results[1] is None

    def test_gather_root_needs_buffer(self):
        def job(comm):
            comm.Gather(np.zeros(2), None, root=0)

        with pytest.raises(ParallelFailure):
            run_spmd(2, job, timeout=5.0)

    def test_gather_wrong_root_shape(self):
        def job(comm):
            recv = np.zeros((comm.size, 99)) if comm.rank == 0 else None
            comm.Gather(np.zeros(3), recv, root=0)

        with pytest.raises(ParallelFailure):
            run_spmd(2, job, timeout=5.0)

    def test_scatter_slices(self):
        def job(comm):
            send = None
            if comm.rank == 0:
                send = np.arange(float(comm.size * 2)).reshape(comm.size, 2)
            recv = np.zeros(2)
            comm.Scatter(send, recv, root=0)
            return recv

        results = run_spmd(3, job)
        for rank, result in enumerate(results):
            assert np.array_equal(result, [2.0 * rank, 2.0 * rank + 1])

    def test_scatter_root_needs_buffer(self):
        def job(comm):
            comm.Scatter(None, np.zeros(2), root=0)

        with pytest.raises(ParallelFailure):
            run_spmd(2, job, timeout=5.0)


class TestAllBuffers:
    def test_allgather(self):
        def job(comm):
            send = np.full(2, float(comm.rank))
            recv = np.zeros((comm.size, 2))
            comm.Allgather(send, recv)
            return recv

        for result in run_spmd(3, job):
            assert np.array_equal(
                result, np.repeat(np.arange(3.0)[:, None], 2, axis=1)
            )

    def test_allreduce(self):
        def job(comm):
            send = np.array([float(comm.rank), 1.0])
            recv = np.zeros(2)
            comm.Allreduce(send, recv, SUM)
            return recv

        for result in run_spmd(4, job):
            assert np.array_equal(result, [6.0, 4.0])

    def test_allgather_shape_checked(self):
        def job(comm):
            comm.Allgather(np.zeros(2), np.zeros((comm.size, 3)))

        with pytest.raises(ParallelFailure):
            run_spmd(2, job, timeout=5.0)

    def test_matvec_pattern_from_guide(self):
        """The mpi4py tutorial's parallel matrix-vector product pattern."""
        p, m = 3, 4  # p ranks, m local rows
        rng = np.random.default_rng(0)
        a_full = rng.standard_normal((p * m, p * m))
        x_full = rng.standard_normal(p * m)

        def job(comm):
            a_local = a_full[comm.rank * m : (comm.rank + 1) * m]
            x_local = np.ascontiguousarray(
                x_full[comm.rank * m : (comm.rank + 1) * m]
            )
            xg = np.zeros((comm.size, m))
            comm.Allgather(x_local, xg)
            return a_local @ xg.reshape(-1)

        results = run_spmd(p, job)
        y = np.concatenate(results)
        assert np.allclose(y, a_full @ x_full)
