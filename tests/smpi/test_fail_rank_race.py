"""``World.fail_rank`` racing in-flight ``CollectiveRequest.wait``:
blocked waiters wake promptly with ``FailedRankError`` (not after the
deadlock timeout), wakeups reach *every* blocked peer, and abandoned
requests leave nothing behind under the provenance tracker."""

import threading
import time

import numpy as np
import pytest

from repro.smpi import FailedRankError, create_communicator, provenance
from repro.smpi.exceptions import SmpiError

TIMEOUT = 30.0  # deliberately huge: fail_rank must win, not the timeout


def cancel_quietly(request):
    try:
        request.cancel()
    except (SmpiError, AttributeError):
        pass  # already complete (or a bare p2p request without cancel)


class TestFailRankRace:
    def test_blocked_collective_root_wakes_with_failed_rank_error(self):
        """Root's igatherv_rows waits on a contribution rank 3 never
        sends; fail_rank(3) mid-wait frees it in milliseconds."""
        comms = create_communicator("threads", 4, timeout=TIMEOUT)
        world = comms[0].world
        block = np.ones((2, 3))
        outcome = {}

        with provenance.track() as scope:
            requests = {}

            def root():
                req = comms[0].igatherv_rows(block, root=0)
                requests[0] = req
                start = time.monotonic()
                try:
                    req.wait(timeout=TIMEOUT)
                except FailedRankError as exc:
                    outcome["error"] = exc
                    outcome["elapsed"] = time.monotonic() - start

            def sender(i):
                req = comms[i].igatherv_rows(block, root=0)
                requests[i] = req
                req.wait(timeout=TIMEOUT)  # send side: completes fine

            threads = [threading.Thread(target=root)]
            threads += [
                threading.Thread(target=sender, args=(i,)) for i in (1, 2)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)  # let the root block
            world.fail_rank(3, RuntimeError("injected death"))
            for t in threads:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads)

            assert isinstance(outcome.get("error"), FailedRankError)
            assert 3 in outcome["error"].failed_ranks
            assert outcome["elapsed"] < 5.0
            # Rank 3 never posted its share: cancel the abandoned handle
            # (the recovery path's job) and nothing must leak.
            for req in requests.values():
                cancel_quietly(req)
            assert scope.pending_requests() == []

    def test_every_blocked_receiver_wakes_not_just_one(self):
        """Three ranks block on ibcast(root=3); the single fail_rank(3)
        must wake all of them — wakeup is a broadcast, not a handoff."""
        comms = create_communicator("threads", 4, timeout=TIMEOUT)
        world = comms[0].world
        errors = {}
        elapsed = {}

        with provenance.track() as scope:
            requests = {}

            def receiver(i):
                req = comms[i].ibcast(None, root=3)
                requests[i] = req
                start = time.monotonic()
                try:
                    req.wait(timeout=TIMEOUT)
                except FailedRankError as exc:
                    errors[i] = exc
                    elapsed[i] = time.monotonic() - start

            threads = [
                threading.Thread(target=receiver, args=(i,))
                for i in range(3)
            ]
            for t in threads:
                t.start()
            time.sleep(0.05)
            world.fail_rank(3, RuntimeError("injected death"))
            for t in threads:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in threads)

            assert sorted(errors) == [0, 1, 2]
            for i in range(3):
                assert 3 in errors[i].failed_ranks
                assert elapsed[i] < 5.0, (i, elapsed[i])
            for req in requests.values():
                cancel_quietly(req)
            assert scope.pending_requests() == []

    def test_fail_rank_before_wait_raises_immediately(self):
        comms = create_communicator("threads", 2, timeout=TIMEOUT)
        world = comms[0].world
        with provenance.track() as scope:
            req = comms[0].ibcast(None, root=1)
            world.fail_rank(1, RuntimeError("gone before the wait"))
            start = time.monotonic()
            with pytest.raises(FailedRankError):
                req.wait(timeout=TIMEOUT)
            assert time.monotonic() - start < 5.0
            cancel_quietly(req)
            assert scope.pending_requests() == []

    def test_failure_cause_is_recorded_in_the_world(self):
        comms = create_communicator("threads", 2, timeout=TIMEOUT)
        world = comms[0].world
        cause = RuntimeError("the original crash")
        world.fail_rank(1, cause)
        assert world.failed_ranks()[1] is cause

    def test_wait_racing_concurrent_fail_rank_storm(self):
        """Many fail_rank calls from several threads racing one blocked
        wait: exactly one cause sticks, the waiter still wakes cleanly."""
        comms = create_communicator("threads", 2, timeout=TIMEOUT)
        world = comms[0].world
        with provenance.track() as scope:
            req = comms[0].ibcast(None, root=1)
            result = {}

            def waiter():
                try:
                    req.wait(timeout=TIMEOUT)
                except FailedRankError as exc:
                    result["error"] = exc

            t = threading.Thread(target=waiter)
            t.start()
            time.sleep(0.02)
            stormers = [
                threading.Thread(
                    target=world.fail_rank, args=(1, RuntimeError(f"s{i}"))
                )
                for i in range(8)
            ]
            for s in stormers:
                s.start()
            for s in stormers:
                s.join(timeout=5.0)
            t.join(timeout=10.0)
            assert not t.is_alive()
            assert isinstance(result.get("error"), FailedRankError)
            # First declaration wins and is stable.
            assert str(world.failed_ranks()[1]).startswith("s")
            cancel_quietly(req)
            assert scope.pending_requests() == []
