"""Nonblocking collectives, request timeouts and the envelope arena."""

import numpy as np
import pytest

from repro.smpi import (
    CollectiveRequest,
    SUM,
    create_communicator,
    run_spmd,
    waitall,
)
from repro.smpi.exceptions import DeadlockError
from repro.smpi.message import ENVELOPE_POOL, Envelope, take_payload


class TestRecvRequestTimeout:
    def test_wait_timeout_raises_descriptive_deadlock(self):
        """A deadlocked nonblocking receive fails fast with the pending
        (source, tag) pattern in the message — it must not hang for the
        mailbox's full default timeout."""

        def job(comm):
            if comm.rank == 0:
                request = comm.irecv(1, 7)
                with pytest.raises(DeadlockError) as excinfo:
                    request.wait(timeout=0.1)
                message = str(excinfo.value)
                assert "source=1" in message and "tag=7" in message
                assert "never posted" in message
            comm.barrier()
            return True

        assert run_spmd(2, job) == [True, True]

    def test_wait_timeout_delivers_when_message_arrives(self):
        def job(comm):
            if comm.rank == 0:
                return comm.irecv(1, 3).wait(timeout=30.0)
            comm.send("payload", dest=0, tag=3)
            return None

        assert run_spmd(2, job)[0] == "payload"

    def test_collective_wait_timeout(self):
        """A CollectiveRequest wait bounded by timeout= raises instead of
        hanging when a peer never participates."""

        def job(comm):
            if comm.rank == 0:
                # Rank 1 never posts its contribution: the fold can't run.
                request = comm.iallreduce(1.0, SUM)
                with pytest.raises(DeadlockError):
                    request.wait(timeout=0.1)
            comm.barrier()
            return True

        assert run_spmd(2, job) == [True, True]


class TestNonblockingSemantics:
    def test_ibcast_receivers_share_one_readonly_snapshot(self):
        """Threads fast lane: like bcast, ibcast ships one frozen snapshot
        to all receivers (no per-peer copies, receivers read-only)."""

        def job(comm):
            payload = np.arange(6.0) if comm.rank == 0 else None
            value = comm.ibcast(payload, root=0).wait()
            if comm.rank == 0:
                return None
            return value

        results = run_spmd(3, job)
        assert not results[1].flags.writeable
        assert np.shares_memory(results[1], results[2])

    def test_value_semantics_snapshot_at_post_time(self):
        """Mutating the send buffer after posting must not reach the
        result — on ANY rank, including the fold root's own contribution
        (no mixed-epoch results)."""

        def job(comm):
            buf = np.full(4, float(comm.rank))
            request = comm.iallreduce(buf, SUM)
            block = np.full((1, 2), float(comm.rank))
            gather_request = comm.igatherv_rows(block, root=0)
            buf += 100.0
            block += 100.0
            return np.asarray(request.wait()).copy(), gather_request.wait()

        results = run_spmd(3, job)
        for reduced, _ in results:
            assert np.array_equal(reduced, np.full(4, 3.0))
        assert np.array_equal(
            results[0][1], np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        )

    def test_igatherv_out_reuse(self):
        """The root's preallocated out= buffer is filled and returned."""

        def job(comm):
            block = np.full((2, 3), float(comm.rank))
            out = np.empty((6, 3)) if comm.rank == 0 else None
            stacked = comm.igatherv_rows(block, root=0, out=out).wait()
            if comm.rank == 0:
                assert stacked is out
                return stacked.copy()
            assert stacked is None
            return None

        stacked = run_spmd(3, job)[0]
        assert np.array_equal(
            stacked, np.repeat(np.arange(3.0), 2)[:, None] * np.ones(3)
        )

    def test_same_kind_collectives_complete_out_of_order(self):
        """Two in-flight collectives of the SAME kind must each return
        their own round's payload, even completed in reverse — the
        sequence-stamped tags keep rounds from cross-matching."""

        def job(comm):
            r1 = comm.ibcast(1.0 if comm.rank == 0 else None, root=0)
            r2 = comm.ibcast(2.0 if comm.rank == 0 else None, root=0)
            a1 = comm.iallreduce(float(comm.rank), SUM)
            a2 = comm.iallreduce(float(comm.rank) * 10.0, SUM)
            g1 = comm.igatherv_rows(np.full((1, 1), 1.0 + comm.rank), root=0)
            g2 = comm.igatherv_rows(np.full((1, 1), -1.0 - comm.rank), root=0)
            # Complete everything newest-first.
            v_g2, v_g1 = g2.wait(), g1.wait()
            v_a2, v_a1 = a2.wait(), a1.wait()
            v_r2, v_r1 = r2.wait(), r1.wait()
            return v_r1, v_r2, v_a1, v_a2, v_g1, v_g2

        for rank, (v_r1, v_r2, v_a1, v_a2, v_g1, v_g2) in enumerate(
            run_spmd(3, job)
        ):
            assert (v_r1, v_r2) == (1.0, 2.0)
            assert (v_a1, v_a2) == (3.0, 30.0)
            if rank == 0:
                assert np.array_equal(v_g1, np.array([[1.0], [2.0], [3.0]]))
                assert np.array_equal(
                    v_g2, np.array([[-1.0], [-2.0], [-3.0]])
                )

    def test_mixed_collectives_same_order_different_completion(self):
        """Two in-flight collectives of different kinds complete correctly
        when waited out of post order (waitall in reverse)."""

        def job(comm):
            r1 = comm.ibcast("x" if comm.rank == 0 else None, root=0)
            r2 = comm.ialltoall(list(range(comm.size)))
            received2, received1 = waitall([r2, r1])
            return received1, received2

        for rank, (value, received) in enumerate(run_spmd(3, job)):
            assert value == "x"
            assert received == [rank] * 3

    def test_selfcomm_collectives_complete_immediately(self):
        comm = create_communicator("self")
        request = comm.iallreduce(np.ones(3), SUM)
        done, value = request.test()
        assert done and np.array_equal(value, np.ones(3))
        assert comm.ibcast(9).wait() == 9
        assert comm.ialltoall(["a"]).wait() == ["a"]
        out = np.empty((2, 2))
        assert comm.igatherv_rows(np.zeros((2, 2)), out=out).wait() is out

    def test_completed_request_helper(self):
        request = CollectiveRequest.completed(42)
        assert request.test() == (True, 42)
        assert request.wait() == 42
        assert waitall([request, CollectiveRequest.completed(None)]) == [
            42,
            None,
        ]


class TestEnvelopePool:
    def test_shells_are_recycled(self):
        """take_payload returns the shell to the arena; the next make
        reuses it instead of allocating."""
        envelope = Envelope.make(0, 1, "hello")
        before = len(ENVELOPE_POOL)
        payload = take_payload(envelope)
        assert payload == "hello"
        assert envelope.payload is None  # stripped on release
        assert len(ENVELOPE_POOL) == before + 1
        recycled = Envelope.make(2, 3, "again")
        assert recycled is envelope
        assert (recycled.source, recycled.tag) == (2, 3)
        assert len(ENVELOPE_POOL) == before
        take_payload(recycled)

    def test_streaming_collective_traffic_reuses_shells(self):
        """After warmup, a steady collective loop grows the arena no
        further — envelope churn is allocation-free."""

        def job(comm):
            for _ in range(3):  # warmup
                comm.bcast(np.ones(4), root=0)
                comm.gatherv_rows(np.ones((2, 2)), root=0)
            high_water = len(ENVELOPE_POOL)
            for _ in range(10):
                comm.bcast(np.ones(4), root=0)
                comm.gatherv_rows(np.ones((2, 2)), root=0)
            comm.barrier()
            return high_water

        # The pool is process-global: just assert it never exceeds a sane
        # bound for this traffic (shells outstanding <= messages in flight).
        run_spmd(3, job)
        assert len(ENVELOPE_POOL) <= 512
