"""DeadlockError diagnostics name what the *user* issued.

A timed-out blocking receive, nonblocking receive, and nonblocking
collective each raise a message shaped for debugging: the operation, the
(source, tag) / (op, root, tag) it was matching, the owning rank and the
timeout spent — never a bare "timed out".
"""

import numpy as np
import pytest

from repro.smpi import SUM, DeadlockError, create_communicator
from repro.smpi.mailbox import Mailbox


class TestMailboxGet:
    def test_names_rank_pattern_and_queue_depth(self):
        mailbox = Mailbox(owner=3, timeout=0.05)
        with pytest.raises(
            DeadlockError,
            match=r"rank 3: recv\(source=0, tag=5\) timed out after 0.05s "
            r"\(0 unmatched messages queued\)",
        ):
            mailbox.get(0, 5)

    def test_per_call_timeout_overrides_default(self):
        mailbox = Mailbox(owner=0, timeout=60.0)
        with pytest.raises(DeadlockError, match=r"after 0.01s"):
            mailbox.get(1, 2, timeout=0.01)


class TestRecvRequestWait:
    def test_names_source_tag_and_rank(self):
        comms = create_communicator("threads", 2)
        request = comms[1].irecv(0, 7)
        with pytest.raises(
            DeadlockError,
            match=r"RecvRequest\.wait\(source=0, tag=7\) timed out after "
            r"0.05s on rank 1: the matching send was never posted",
        ):
            request.wait(timeout=0.05)
        request.cancel()

    def test_chains_the_mailbox_error(self):
        comms = create_communicator("threads", 2)
        request = comms[1].irecv(0, 8)
        with pytest.raises(DeadlockError) as info:
            request.wait(timeout=0.05)
        assert isinstance(info.value.__cause__, DeadlockError)
        assert "rank 1" in str(info.value.__cause__)
        request.cancel()

    def test_timed_out_request_can_still_complete(self):
        comms = create_communicator("threads", 2)
        request = comms[1].irecv(0, 9)
        with pytest.raises(DeadlockError):
            request.wait(timeout=0.05)
        comms[0].send(np.arange(3.0), 1, 9)
        assert np.array_equal(request.wait(timeout=5.0), np.arange(3.0))


class TestCollectiveRequestWait:
    def test_names_op_root_and_pending_children(self):
        comms = create_communicator("threads", 2)
        request = comms[1].ibcast(None, 0)
        with pytest.raises(
            DeadlockError,
            match=r"CollectiveRequest\.wait\(ibcast, root=0, tag=\d+\) "
            r"timed out after 0.05s with 1 child request\(s\) still "
            r"pending",
        ):
            request.wait(timeout=0.05)
        # The root's late bcast completes the surviving handle.
        comms[0].ibcast(np.ones(4), 0).wait(timeout=5.0)
        assert np.array_equal(request.wait(timeout=5.0), np.ones(4))

    def test_collective_context_wins_over_child_receive(self):
        # The re-raised error names the collective the user issued, with
        # the child receive's error chained underneath for forensics.
        comms = create_communicator("threads", 2)
        request = comms[1].iallreduce(np.ones(2), SUM)
        with pytest.raises(DeadlockError) as info:
            request.wait(timeout=0.05)
        assert "iallreduce" in str(info.value)
        assert isinstance(info.value.__cause__, DeadlockError)
        # Complete the collective so nothing leaks past the test.
        comms[0].iallreduce(np.ones(2), SUM).wait(timeout=5.0)
        request.wait(timeout=5.0)


class TestWaitall:
    def test_waitall_timeout_counts_pending(self):
        from repro.smpi import waitall

        comms = create_communicator("threads", 2)
        requests = [comms[1].irecv(0, 11), comms[1].irecv(0, 12)]
        with pytest.raises(
            DeadlockError,
            match=r"(waitall timed out|RecvRequest\.wait)",
        ):
            waitall(requests, timeout=0.05)
        for request in requests:
            request.cancel()
