"""Traffic accounting of CommTracer."""

import numpy as np

from repro.smpi import SUM, CommTracer, SelfComm, run_spmd


def _traced(nprocs, job):
    return run_spmd(nprocs, job, trace=True)


class TestP2pAccounting:
    def test_send_recv_bytes(self):
        def job(comm):
            if comm.rank == 0:
                comm.send(np.zeros(10), dest=1)  # 80 bytes
            else:
                comm.recv(source=0)
            return None

        _, tracers = _traced(2, job)
        assert tracers[0].bytes_for("send") == 80
        assert tracers[1].bytes_for("recv") == 80

    def test_record_has_peer(self):
        def job(comm):
            if comm.rank == 0:
                comm.send(1, dest=1)
            else:
                comm.recv(source=0)
            return None

        _, tracers = _traced(2, job)
        assert tracers[0].records[0].peer == 1


class TestCollectiveAccounting:
    def test_gather_root_counts_received_only(self):
        def job(comm):
            comm.gather(np.zeros(4), root=0)  # 32 bytes per rank
            return None

        _, tracers = _traced(4, job)
        assert tracers[0].bytes_for("gather") == 3 * 32  # own copy excluded
        for t in tracers[1:]:
            assert t.bytes_for("gather") == 32

    def test_bcast_root_counts_fanout(self):
        def job(comm):
            comm.bcast(np.zeros(8) if comm.rank == 0 else None, root=0)
            return None

        _, tracers = _traced(3, job)
        assert tracers[0].bytes_for("bcast") == 2 * 64
        assert tracers[1].bytes_for("bcast") == 64

    def test_barrier_zero_bytes_one_event(self):
        def job(comm):
            comm.barrier()
            return None

        _, tracers = _traced(2, job)
        for t in tracers:
            assert t.bytes_for("barrier") == 0
            assert any(r.op == "barrier" for r in t.records)

    def test_allreduce_records(self):
        def job(comm):
            comm.allreduce(np.zeros(2), SUM)
            return None

        _, tracers = _traced(2, job)
        for t in tracers:
            assert t.bytes_for("allreduce") == 32  # 16 up + 16 down

    def test_alltoall_excludes_self(self):
        def job(comm):
            comm.alltoall([np.zeros(1)] * comm.size)  # 8 bytes each
            return None

        _, tracers = _traced(3, job)
        for t in tracers:
            assert t.bytes_for("alltoall") == 2 * 8 + 2 * 8


class TestSummaryAndReset:
    def test_summary_aggregates(self):
        def job(comm):
            comm.bcast(0 if comm.rank == 0 else None, root=0)
            comm.barrier()
            return None

        _, tracers = _traced(2, job)
        summary = tracers[0].summary()
        assert summary.events == 2
        assert set(summary.by_op) == {"bcast", "barrier"}

    def test_reset_clears(self):
        comm = CommTracer(SelfComm())
        comm.barrier()
        assert comm.summary().events == 1
        comm.reset()
        assert comm.summary().events == 0
        assert comm.records == []

    def test_proxy_exposes_rank_size(self):
        comm = CommTracer(SelfComm())
        assert comm.rank == 0
        assert comm.size == 1
        assert comm.Get_rank() == 0
        assert comm.Get_size() == 1

    def test_split_returns_traced_subcomm(self):
        def job(comm):
            sub = comm.split(color=0)
            sub.barrier()
            return type(sub).__name__

        results, _ = _traced(2, job)
        assert results == ["CommTracer", "CommTracer"]


class TestTiming:
    def test_blocking_records_carry_timing(self):
        def job(comm):
            comm.bcast(np.zeros(8) if comm.rank == 0 else None, root=0)
            comm.allreduce(np.zeros(2), SUM)
            comm.barrier()
            return None

        _, tracers = _traced(2, job)
        for tracer in tracers:
            assert len(tracer.records) == 3
            for record in tracer.records:
                assert record.t_start is not None
                assert record.duration_s >= 0.0
            # Collectives synchronize: at least one record on each rank
            # blocked for a measurable interval.
            assert any(r.duration_s > 0.0 for r in tracer.records)

    def test_nonblocking_wait_time_lands_on_the_record(self):
        def job(comm):
            request = comm.ibcast(
                np.ones(4) if comm.rank == 0 else None, root=0
            )
            result = request.wait()
            return float(np.sum(result))

        results, tracers = _traced(2, job)
        assert results == [4.0, 4.0]
        # The non-root record is written by the completing wait, carrying
        # that wait's window; the root records at post time.
        (record,) = [r for r in tracers[1].records if r.op == "bcast"]
        assert record.t_start is not None
        assert record.duration_s >= 0.0

    def test_summary_rolls_up_seconds_per_op(self):
        def job(comm):
            comm.bcast(0 if comm.rank == 0 else None, root=0)
            comm.barrier()
            return None

        _, tracers = _traced(2, job)
        summary = tracers[1].summary()
        assert summary.total_seconds >= 0.0
        assert set(summary.seconds_by_op) == {"bcast", "barrier"}
        assert abs(
            sum(summary.seconds_by_op.values()) - summary.total_seconds
        ) < 1e-12

    def test_pre_timing_constructor_signatures_still_work(self):
        from repro.smpi.tracer import CommRecord, TrafficSummary

        record = CommRecord(op="bcast", nbytes=8)
        assert record.t_start is None
        assert record.duration_s == 0.0
        summary = TrafficSummary(events=1, total_bytes=8, by_op={"bcast": 8})
        assert summary.total_seconds == 0.0
        assert summary.seconds_by_op == {}
