"""One deadlock-timeout default for the whole stack: ``DEFAULT_TIMEOUT``
flows from the mailbox through World, the factory, the executor and
``BackendConfig`` — so ``BackendConfig.timeout`` is THE knob."""

import inspect

import pytest

from repro.config import BackendConfig
from repro.smpi import DEFAULT_TIMEOUT, create_communicator, run_spmd
from repro.smpi.exceptions import DeadlockError
from repro.smpi.factory import run_backend
from repro.smpi.mailbox import Mailbox
from repro.smpi.world import World


def test_backend_config_shares_the_mailbox_default():
    assert BackendConfig().timeout == DEFAULT_TIMEOUT


def test_mailbox_and_world_inherit_default():
    assert Mailbox(0).timeout == DEFAULT_TIMEOUT
    world = World(2)
    assert world.mailbox(0, 0).timeout == DEFAULT_TIMEOUT


@pytest.mark.parametrize(
    "fn", [create_communicator, run_backend, run_spmd], ids=lambda f: f.__name__
)
def test_entry_point_signatures_default_to_default_timeout(fn):
    assert inspect.signature(fn).parameters["timeout"].default == DEFAULT_TIMEOUT


def test_factory_timeout_reaches_the_mailboxes():
    comms = create_communicator("threads", 2, timeout=0.125)
    try:
        for comm in comms:
            with pytest.raises(DeadlockError, match="0.125"):
                comm.recv(source=(comm.rank + 1) % 2, tag=99)
            break  # one rank suffices; the peers share the World
    finally:
        pass


def test_run_spmd_timeout_bounds_a_deadlock():
    def job(comm):
        if comm.rank == 0:
            with pytest.raises(DeadlockError):
                comm.recv(source=1, tag=42)  # never sent
        return comm.rank

    assert run_spmd(2, job, timeout=0.2) == [0, 1]


def test_per_wait_timeout_overrides_the_default():
    comms = create_communicator("threads", 2, timeout=30.0)
    comm = comms[0]
    request = comm.irecv(source=1, tag=7)
    with pytest.raises(DeadlockError, match="0.1"):
        request.wait(timeout=0.1)
    request.cancel()
