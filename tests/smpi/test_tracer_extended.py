"""Tracer coverage for the extended operations (scan family, buffers)."""

import numpy as np

from repro.smpi import SUM, run_spmd


class TestScanFamilyTracing:
    def test_scan_recorded(self):
        def job(comm):
            comm.scan(np.zeros(4), SUM)  # 32 bytes up + 32 down
            return None

        _, tracers = run_spmd(3, job, trace=True)
        for t in tracers:
            assert t.bytes_for("scan") == 64

    def test_exscan_recorded(self):
        def job(comm):
            comm.exscan(np.zeros(2), SUM)
            return None

        _, tracers = run_spmd(2, job, trace=True)
        # rank 0 receives None (0 bytes), rank 1 receives 16 bytes
        assert tracers[0].bytes_for("exscan") == 16
        assert tracers[1].bytes_for("exscan") == 32

    def test_reduce_scatter_recorded(self):
        def job(comm):
            comm.reduce_scatter([np.zeros(1)] * comm.size, SUM)
            return None

        _, tracers = run_spmd(3, job, trace=True)
        for t in tracers:
            # sends 2 blocks of 8, receives the reduced 8-byte block
            assert t.bytes_for("reduce_scatter") == 24

    def test_iprobe_not_recorded(self):
        def job(comm):
            comm.iprobe()
            return None

        _, tracers = run_spmd(2, job, trace=True)
        for t in tracers:
            assert t.summary().events == 0

    def test_results_correct_through_tracer(self):
        def job(comm):
            return comm.scan(comm.rank + 1, SUM)

        results, _ = run_spmd(3, job, trace=True)
        assert results == [1, 3, 6]


class TestBufferedTracing:
    def test_send_recv_buffers_recorded(self):
        def job(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(5), dest=1)
            else:
                buf = np.zeros(5)
                comm.Recv(buf, source=0)
            return None

        _, tracers = run_spmd(2, job, trace=True)
        assert tracers[0].bytes_for("send") == 40
        assert tracers[1].bytes_for("recv") == 40

    def test_bcast_buffer_recorded(self):
        def job(comm):
            buf = np.zeros(4)
            comm.Bcast(buf, root=0)
            return None

        _, tracers = run_spmd(3, job, trace=True)
        assert tracers[0].bytes_for("bcast") == 64
        assert tracers[1].bytes_for("bcast") == 32

    def test_gather_scatter_buffers_recorded(self):
        def job(comm):
            send = np.zeros(2)
            recv = np.zeros((comm.size, 2)) if comm.rank == 0 else None
            comm.Gather(send, recv, root=0)
            out = np.zeros(2)
            comm.Scatter(
                np.zeros((comm.size, 2)) if comm.rank == 0 else None,
                out,
                root=0,
            )
            return None

        _, tracers = run_spmd(2, job, trace=True)
        assert tracers[0].bytes_for("gather") == 16
        assert tracers[1].bytes_for("gather") == 16
        assert tracers[0].bytes_for("scatter") == 16

    def test_allreduce_buffer_recorded_and_correct(self):
        def job(comm):
            recv = np.zeros(2)
            comm.Allreduce(np.full(2, float(comm.rank)), recv, SUM)
            return recv

        results, tracers = run_spmd(3, job, trace=True)
        for r in results:
            assert np.array_equal(r, [3.0, 3.0])
        for t in tracers:
            assert t.bytes_for("allreduce") == 32

    def test_allgather_buffer_recorded(self):
        def job(comm):
            recv = np.zeros((comm.size, 3))
            comm.Allgather(np.zeros(3), recv)
            return None

        _, tracers = run_spmd(2, job, trace=True)
        for t in tracers:
            assert t.bytes_for("allgather") == 48
