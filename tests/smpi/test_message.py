"""Message envelope and payload sizing semantics."""

import numpy as np
import pytest

from repro.smpi.message import Envelope, copy_payload, payload_nbytes
from repro.smpi.reduction import MAXLOC, MINLOC, ReduceOp, SUM


class TestCopyPayload:
    def test_scalars_passthrough(self):
        for obj in (None, 1, 2.5, True, "s", b"b", 1 + 2j):
            assert copy_payload(obj) is obj or copy_payload(obj) == obj

    def test_array_copied(self):
        a = np.arange(4)
        c = copy_payload(a)
        assert c is not a
        a[0] = 99
        assert c[0] == 0

    def test_nested_container_deep_copied(self):
        a = {"x": np.zeros(3), "y": [np.ones(2)]}
        c = copy_payload(a)
        a["x"][0] = 5
        a["y"][0][0] = 5
        assert c["x"][0] == 0
        assert c["y"][0][0] == 1


class TestPayloadNbytes:
    def test_none_zero(self):
        assert payload_nbytes(None) == 0

    def test_array_buffer_size(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(np.zeros(10, dtype=np.float32)) == 40

    def test_bytes_length(self):
        assert payload_nbytes(b"abcd") == 4

    def test_scalars_eight(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8

    def test_containers_sum(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        # dict: value contributes its 8 bytes; key sized by the pickle
        # fallback (string) — total must include at least the value.
        assert payload_nbytes({"k": np.zeros(1)}) >= 8

    def test_generic_object_pickle_sized(self):
        # strings take the pickle fallback path
        assert payload_nbytes("hello world") > 0

    def test_unpicklable_degrades_to_zero(self):
        # sizing failures must not break communication — they report 0
        class Local:
            pass

        assert payload_nbytes(Local()) == 0


class TestEnvelope:
    def test_make_snapshots(self):
        data = np.zeros(3)
        env = Envelope.make(source=0, tag=1, payload=data)
        data[0] = 7
        assert env.payload[0] == 0
        assert env.nbytes == 24

    def test_matches_exact(self):
        env = Envelope.make(0, 5, "x")
        assert env.matches(0, 5)
        assert not env.matches(1, 5)
        assert not env.matches(0, 6)

    def test_matches_wildcards(self):
        env = Envelope.make(2, 9, "x")
        assert env.matches(-1, 9)
        assert env.matches(2, -1)
        assert env.matches(-1, -1)


class TestReduceOps:
    def test_sum_fold(self):
        assert SUM.reduce_sequence([1, 2, 3]) == 6

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SUM.reduce_sequence([])

    def test_maxloc(self):
        assert MAXLOC((3, 0), (5, 1)) == (5, 1)
        assert MAXLOC((5, 0), (5, 1)) == (5, 0)  # tie -> lower loc

    def test_minloc(self):
        assert MINLOC((3, 0), (5, 1)) == (3, 0)
        assert MINLOC((3, 2), (3, 1)) == (3, 1)

    def test_custom_op(self):
        concat = ReduceOp("CONCAT", lambda a, b: a + b)
        assert concat.reduce_sequence(["a", "b", "c"]) == "abc"
