"""Mpi4pyCommunicator unit tests over a fake, threads-backed MPI stand-in.

The real adapter only runs under an MPI launcher, but its *configuration
logic* — notably the per-``irecv`` preposted receive-buffer size, which
mpi4py's pickle mode cannot probe and therefore truncates — is pure
Python.  These tests drive it against a minimal duck-typed ``MPI`` module
so the ``BackendConfig.irecv_buffer_bytes`` plumbing is exercised in this
container (no mpi4py needed)."""

import pytest

import repro.smpi.mpi as mpi_module
from repro.config import BackendConfig
from repro.smpi import SmpiError, create_communicator
from repro.smpi.mpi import Mpi4pyCommunicator


class FakeRequest:
    def wait(self):
        return None

    def test(self):
        return True, None


class FakeComm:
    """Just enough of ``mpi4py.MPI.Comm`` for the adapter's constructor,
    ``irecv`` and ``Dup``/``Split`` paths."""

    def __init__(self, rank=0, size=1):
        self._rank = rank
        self._size = size
        self.irecv_buffer_sizes = []

    def Get_rank(self):
        return self._rank

    def Get_size(self):
        return self._size

    def irecv(self, buf, source, tag):
        self.irecv_buffer_sizes.append(len(buf))
        return FakeRequest()

    def allgather(self, obj):
        return [obj] * self._size

    def Dup(self):
        return FakeComm(self._rank, self._size)

    def Split(self, color, key):
        return FakeComm(0, 1)


class FakeMPI:
    ANY_SOURCE = -99
    ANY_TAG = -98
    COMM_NULL = object()

    def __init__(self):
        self.COMM_WORLD = FakeComm()


@pytest.fixture
def fake_mpi(monkeypatch):
    fake = FakeMPI()
    monkeypatch.setattr(mpi_module, "_MPI", fake)
    monkeypatch.setattr(mpi_module, "HAVE_MPI4PY", True)
    return fake


class TestIrecvBufferBytes:
    def test_default_buffer_size(self, fake_mpi):
        comm = Mpi4pyCommunicator(fake_mpi.COMM_WORLD)
        assert comm.irecv_buffer_bytes == 1 << 24

    def test_configured_buffer_reaches_every_irecv(self, fake_mpi):
        comm = Mpi4pyCommunicator(fake_mpi.COMM_WORLD, irecv_buffer_bytes=4096)
        comm.irecv(source=0, tag=7)
        comm.irecv()  # wildcard source/tag path
        assert fake_mpi.COMM_WORLD.irecv_buffer_sizes == [4096, 4096]

    def test_invalid_buffer_size_rejected(self, fake_mpi):
        with pytest.raises(SmpiError, match="irecv_buffer_bytes"):
            Mpi4pyCommunicator(fake_mpi.COMM_WORLD, irecv_buffer_bytes=0)

    def test_buffer_size_propagates_through_dup_and_split(self, fake_mpi):
        comm = Mpi4pyCommunicator(fake_mpi.COMM_WORLD, irecv_buffer_bytes=8192)
        assert comm.dup().irecv_buffer_bytes == 8192
        child = comm.split(color=0)
        assert child is not None
        assert child.irecv_buffer_bytes == 8192

    def test_create_communicator_passes_knob_through(self, fake_mpi):
        comm = create_communicator(
            "mpi4py",
            1,
            mpi_comm=fake_mpi.COMM_WORLD,
            irecv_buffer_bytes=12345,
        )
        assert comm.irecv_buffer_bytes == 12345

    def test_create_communicator_none_keeps_adapter_default(self, fake_mpi):
        comm = create_communicator(
            "mpi4py", 1, mpi_comm=fake_mpi.COMM_WORLD, irecv_buffer_bytes=None
        )
        assert comm.irecv_buffer_bytes == 1 << 24

    def test_run_backend_passes_knob_through(self, fake_mpi):
        """Session.run's dispatch path: run_backend must hand the knob to
        the adapter, not silently fall back to the default buffer."""
        from repro.smpi import run_backend

        def job(comm):
            return comm.irecv_buffer_bytes

        results = run_backend("mpi4py", 1, job, irecv_buffer_bytes=54321)
        assert results == [54321]

    def test_backend_config_carries_the_knob(self):
        assert BackendConfig(
            name="mpi4py", irecv_buffer_bytes=4096
        ).irecv_buffer_bytes == 4096

    def test_threads_backend_accepts_and_ignores_knob(self):
        comms = create_communicator("threads", 2, irecv_buffer_bytes=4096)
        assert len(comms) == 2
        # probe-sized transports have no preposted-buffer cap to configure
        assert not hasattr(comms[0], "irecv_buffer_bytes")
