"""Unit tests for the viscous Burgers snapshot generator."""

import numpy as np
import pytest

from repro.data.burgers import (
    PAPER_GRID_POINTS,
    PAPER_REYNOLDS,
    PAPER_SNAPSHOTS,
    BurgersProblem,
    burgers_snapshots,
)
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_parameters(self):
        b = BurgersProblem()
        assert b.nx == PAPER_GRID_POINTS == 16384
        assert b.nt == PAPER_SNAPSHOTS == 800
        assert b.reynolds == PAPER_REYNOLDS == 1000.0
        assert b.length == 1.0
        assert b.t_final == 2.0

    def test_t0_definition(self):
        b = BurgersProblem(nx=16, nt=4, reynolds=8.0)
        assert b.t0 == pytest.approx(np.e)


class TestSolution:
    def test_boundary_conditions(self):
        b = BurgersProblem(nx=256, nt=10)
        for t in (0.0, 0.7, 2.0):
            u = b.solution(t)
            assert u[0] == pytest.approx(0.0, abs=1e-12)
            assert abs(u[-1]) < 1e-9  # right boundary decays to ~0

    def test_nonnegative_bounded(self):
        b = BurgersProblem(nx=512, nt=10)
        for t in b.times:
            u = b.solution(float(t))
            assert np.all(u >= 0.0)
            assert np.all(u <= 1.0)

    def test_satisfies_pde_interior(self):
        """The analytic formula must satisfy u_t + u u_x = nu u_xx."""
        b = BurgersProblem(nx=2048, nt=10, reynolds=100.0)
        x = b.x
        t = 0.5
        dt, nu = 1e-6, 1.0 / b.reynolds
        u = b.solution(t, x)
        u_t = (b.solution(t + dt, x) - b.solution(t - dt, x)) / (2 * dt)
        dx = x[1] - x[0]
        u_x = np.gradient(u, dx)
        u_xx = np.gradient(u_x, dx)
        interior = slice(100, -100)
        residual = u_t + u * u_x - nu * u_xx
        scale = np.max(np.abs(u_t[interior])) + 1e-12
        assert np.max(np.abs(residual[interior])) / scale < 0.05

    def test_custom_grid(self):
        b = BurgersProblem(nx=64, nt=4)
        xs = np.array([0.25, 0.5])
        u = b.solution(1.0, xs)
        assert u.shape == (2,)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            BurgersProblem(nx=16, nt=2).solution(-0.1)


class TestSnapshotMatrix:
    def test_shape(self):
        b = BurgersProblem(nx=128, nt=30)
        assert b.snapshot_matrix().shape == (128, 30)

    def test_columns_are_time_slices(self):
        b = BurgersProblem(nx=64, nt=5)
        a = b.snapshot_matrix()
        for j, t in enumerate(b.times):
            assert np.allclose(a[:, j], b.solution(float(t)))

    def test_convenience_function(self):
        a = burgers_snapshots(nx=32, nt=7)
        assert a.shape == (32, 7)

    def test_compressible_spectrum(self):
        """Burgers snapshots are compressible: the spectrum decays steadily
        (a travelling front decays slower than a standing pattern, but the
        tail is still orders of magnitude below the leading value)."""
        a = BurgersProblem(nx=512, nt=100).snapshot_matrix()
        s = np.linalg.svd(a, compute_uv=False)
        assert s[20] / s[0] < 1e-2
        assert s[60] / s[0] < 1e-3
        assert np.all(np.diff(s) <= 0)


class TestLocalBlocks:
    def test_blocks_tile_global(self):
        b = BurgersProblem(nx=100, nt=12)
        global_matrix = b.snapshot_matrix()
        blocks = []
        for rank in range(3):
            block, part = b.local_snapshot_matrix(rank, 3)
            assert block.shape[0] == part.counts[rank]
            blocks.append(block)
        assert np.allclose(np.concatenate(blocks, axis=0), global_matrix)


class TestBatches:
    def test_batches_tile_columns(self):
        b = BurgersProblem(nx=64, nt=23)
        batches = list(b.batches(10))
        assert [x.shape[1] for x in batches] == [10, 10, 3]
        assert np.allclose(np.concatenate(batches, axis=1), b.snapshot_matrix())

    def test_bad_batch_size(self):
        with pytest.raises(ConfigurationError):
            list(BurgersProblem(nx=16, nt=4).batches(0))


class TestValidation:
    def test_bad_nx(self):
        with pytest.raises(ConfigurationError):
            BurgersProblem(nx=1, nt=4)

    def test_bad_nt(self):
        with pytest.raises(ConfigurationError):
            BurgersProblem(nx=16, nt=0)

    def test_bad_reynolds(self):
        with pytest.raises(ConfigurationError):
            BurgersProblem(nx=16, nt=4, reynolds=-1.0)
