"""Unit tests for the synthetic ERA5-like pressure field."""

import numpy as np
import pytest

from repro.data.era5_like import Era5LikeField, era5_like_snapshots
from repro.exceptions import ConfigurationError


@pytest.fixture
def field() -> Era5LikeField:
    return Era5LikeField(nlat=12, nlon=24, nt=40, seed=3)


class TestGrids:
    def test_grid_shapes(self, field):
        assert field.lat.shape == (12,)
        assert field.lon.shape == (24,)
        assert field.n_dof == 288

    def test_lat_covers_poles(self, field):
        assert field.lat[0] == -90.0
        assert field.lat[-1] == 90.0

    def test_lon_periodic_no_duplicate(self, field):
        assert field.lon[0] == 0.0
        assert field.lon[-1] < 360.0


class TestSnapshots:
    def test_shape(self, field):
        assert field.snapshots().shape == (288, 40)

    def test_pressure_magnitude_realistic(self, field):
        s = field.snapshots()
        assert 950 < s.mean() < 1070  # hPa-scale values

    def test_reproducible(self, field):
        a = field.snapshots()
        b = Era5LikeField(nlat=12, nlon=24, nt=40, seed=3).snapshots()
        assert np.array_equal(a, b)

    def test_chunk_independence(self, field):
        """Any sub-window equals the same columns of the full record."""
        full = field.snapshots()
        window = field.snapshots(start=13, count=9)
        assert np.allclose(full[:, 13:22], window)

    def test_window_bounds_checked(self, field):
        with pytest.raises(ConfigurationError):
            field.snapshots(start=38, count=5)
        with pytest.raises(ConfigurationError):
            field.snapshots(start=-1)

    def test_different_seeds_differ(self):
        a = Era5LikeField(nlat=8, nlon=16, nt=10, seed=1).snapshots()
        b = Era5LikeField(nlat=8, nlon=16, nt=10, seed=2).snapshots()
        assert not np.allclose(a, b)

    def test_zero_noise_deterministic_structure(self):
        f = Era5LikeField(nlat=8, nlon=16, nt=10, noise_amp=0.0)
        s = f.snapshots()
        # without noise the data are exactly rank <= 1 (seasonal)
        # + 2 (wave pair) + 1 (base) = 4
        rank = np.linalg.matrix_rank(s, tol=1e-8)
        assert rank <= 4


class TestGroundTruthStructures:
    def test_seasonal_pattern_antisymmetric(self, field):
        pattern = field.seasonal_pattern()
        assert np.allclose(pattern[0, :], -pattern[-1, :])

    def test_wave_patterns_quadrature(self, field):
        (cos_map, sin_map), = field.wave_patterns()
        # cos and sin patterns are orthogonal over the periodic grid
        assert abs(np.sum(cos_map * sin_map)) < 1e-8

    def test_svd_recovers_planted_modes(self):
        """The leading anomaly modes must align with the planted structures."""
        f = Era5LikeField(nlat=16, nlon=32, nt=240, noise_amp=0.2, seed=0)
        anomalies = f.anomaly_snapshots()
        u, s, _ = np.linalg.svd(anomalies, full_matrices=False)

        seasonal = f.seasonal_pattern().ravel()
        seasonal /= np.linalg.norm(seasonal)
        cos_map, sin_map = f.wave_patterns()[0]
        wave_basis = np.column_stack(
            [cos_map.ravel() / np.linalg.norm(cos_map),
             sin_map.ravel() / np.linalg.norm(sin_map)]
        )
        # mode 1 = seasonal see-saw
        assert abs(u[:, 0] @ seasonal) > 0.95
        # modes 2-3 = travelling-wave quadrature pair
        for j in (1, 2):
            assert np.linalg.norm(wave_basis.T @ u[:, j]) > 0.95


class TestLocalAndBatches:
    def test_local_blocks_tile(self, field):
        full = field.snapshots()
        blocks = [field.local_snapshots(r, 3)[0] for r in range(3)]
        assert np.allclose(np.concatenate(blocks, axis=0), full)

    def test_batches_tile(self, field):
        batches = list(field.batches(16))
        assert [b.shape[1] for b in batches] == [16, 16, 8]
        assert np.allclose(np.concatenate(batches, axis=1), field.snapshots())

    def test_bad_batch_size(self, field):
        with pytest.raises(ConfigurationError):
            list(field.batches(-2))


class TestValidation:
    def test_bad_grid(self):
        with pytest.raises(ConfigurationError):
            Era5LikeField(nlat=1, nlon=16)

    def test_wave_lists_must_match(self):
        with pytest.raises(ConfigurationError):
            Era5LikeField(wave_amps=(1.0, 2.0), wave_numbers=(3,))

    def test_negative_noise(self):
        with pytest.raises(ConfigurationError):
            Era5LikeField(noise_amp=-0.1)

    def test_convenience_function(self):
        assert era5_like_snapshots(nlat=6, nlon=12, nt=5).shape == (72, 5)


class TestPaperCadence:
    def test_paper_snapshot_count(self):
        """2013-01-01..2020-12-31 at 6-hourly cadence (incl. leap days)."""
        from repro.data.era5_like import PAPER_SNAPSHOT_COUNT

        assert PAPER_SNAPSHOT_COUNT == 11688

    def test_paper_cadence_field_constructible(self):
        # construct (not generate) a full paper-cadence record descriptor
        from repro.data.era5_like import PAPER_SNAPSHOT_COUNT

        f = Era5LikeField(nlat=4, nlon=8, nt=PAPER_SNAPSHOT_COUNT)
        assert f.times_hours[-1] == (PAPER_SNAPSHOT_COUNT - 1) * 6.0

    def test_seasonal_period_annual(self):
        """The seasonal coefficient has a 1-year period."""
        f = Era5LikeField(nlat=4, nlon=8, nt=8)
        year_hours = 365.25 * 24.0
        c = f._temporal_coefficients(np.array([0.0, year_hours]))
        assert c["seasonal"][0] == pytest.approx(c["seasonal"][1], abs=1e-9)
