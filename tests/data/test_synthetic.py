"""Unit tests for synthetic spectrum-controlled matrices."""

import numpy as np
import pytest

from repro.data.synthetic import (
    low_rank_plus_noise,
    matrix_with_spectrum,
    spectrum_exponential,
    spectrum_polynomial,
    spectrum_step,
)
from repro.exceptions import ConfigurationError, ShapeError


class TestSpectra:
    def test_exponential(self):
        s = spectrum_exponential(4, 0.5)
        assert np.allclose(s, [1.0, 0.5, 0.25, 0.125])

    def test_polynomial(self):
        s = spectrum_polynomial(3, 1.0)
        assert np.allclose(s, [1.0, 0.5, 1.0 / 3.0])

    def test_step(self):
        s = spectrum_step(5, 2, gap=0.01)
        assert np.allclose(s, [1, 1, 0.01, 0.01, 0.01])

    def test_all_non_increasing(self):
        for s in (
            spectrum_exponential(20, 0.9),
            spectrum_polynomial(20, 0.3),
            spectrum_step(20, 7),
        ):
            assert np.all(np.diff(s) <= 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spectrum_exponential(0)
        with pytest.raises(ConfigurationError):
            spectrum_exponential(5, 1.5)
        with pytest.raises(ConfigurationError):
            spectrum_polynomial(5, -1)
        with pytest.raises(ConfigurationError):
            spectrum_step(5, 6)
        with pytest.raises(ConfigurationError):
            spectrum_step(5, 2, gap=1.0)


class TestMatrixWithSpectrum:
    def test_singular_values_exact(self, rng):
        spec = spectrum_exponential(10, 0.7)
        a, _, _, _ = matrix_with_spectrum(60, 30, spec, rng=rng)
        s = np.linalg.svd(a, compute_uv=False)
        assert np.allclose(s[:10], spec, rtol=1e-10)
        assert np.all(s[10:] < 1e-12)

    def test_returns_factors(self, rng):
        spec = spectrum_exponential(5, 0.5)
        a, u, s, vt = matrix_with_spectrum(40, 20, spec, rng=rng)
        assert np.allclose((u * s) @ vt, a)
        assert np.allclose(u.T @ u, np.eye(5), atol=1e-12)

    def test_spectrum_too_long(self, rng):
        with pytest.raises(ShapeError):
            matrix_with_spectrum(10, 5, np.ones(6), rng=rng)

    def test_increasing_spectrum_rejected(self, rng):
        with pytest.raises(ShapeError):
            matrix_with_spectrum(10, 5, np.array([1.0, 2.0]), rng=rng)

    def test_reproducible(self):
        spec = spectrum_exponential(3, 0.5)
        a1, *_ = matrix_with_spectrum(20, 10, spec, rng=5)
        a2, *_ = matrix_with_spectrum(20, 10, spec, rng=5)
        assert np.array_equal(a1, a2)


class TestLowRankPlusNoise:
    def test_shape(self, rng):
        assert low_rank_plus_noise(30, 20, 4, rng=rng).shape == (30, 20)

    def test_noiseless_exact_rank(self, rng):
        a = low_rank_plus_noise(40, 25, 3, noise=0.0, rng=rng)
        assert np.linalg.matrix_rank(a, tol=1e-10) == 3

    def test_noise_fills_spectrum(self, rng):
        a = low_rank_plus_noise(40, 25, 3, noise=1e-3, rng=rng)
        s = np.linalg.svd(a, compute_uv=False)
        assert s[3] > 1e-4  # noise floor present
        assert s[3] < 0.1 * s[2]  # but well separated

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            low_rank_plus_noise(10, 5, 0, rng=rng)
        with pytest.raises(ConfigurationError):
            low_rank_plus_noise(10, 5, 6, rng=rng)
        with pytest.raises(ConfigurationError):
            low_rank_plus_noise(10, 5, 2, noise=-1, rng=rng)
