"""Unit tests for SnapshotStream."""

import numpy as np
import pytest

from repro.data.io import write_snapshot_dataset, SnapshotDataset
from repro.data.streams import (
    array_stream,
    dataset_stream,
    function_stream,
)
from repro.exceptions import ShapeError


class TestArrayStream:
    def test_batches_tile(self, rng):
        a = rng.standard_normal((30, 17))
        stream = array_stream(a, 5)
        batches = list(stream)
        assert [b.shape[1] for b in batches] == [5, 5, 5, 2]
        assert np.allclose(np.concatenate(batches, axis=1), a)

    def test_reiterable(self, rng):
        a = rng.standard_normal((10, 6))
        stream = array_stream(a, 3)
        first = [b.copy() for b in stream]
        second = list(stream)
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_metadata(self, rng):
        stream = array_stream(rng.standard_normal((10, 6)), 2)
        assert stream.n_dof == 10
        assert stream.n_snapshots == 6

    def test_bad_batch_size(self, rng):
        with pytest.raises(ShapeError):
            array_stream(rng.standard_normal((5, 5)), 0)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            array_stream(np.ones(4), 2)


class TestDatasetStream:
    def test_streams_from_disk(self, tmp_path, rng):
        a = rng.standard_normal((12, 9))
        path = write_snapshot_dataset(tmp_path / "d.rsnap", a)
        stream = dataset_stream(SnapshotDataset.open(path), 4)
        assert np.allclose(np.concatenate(list(stream), axis=1), a)
        assert stream.n_dof == 12


class TestFunctionStream:
    def test_generates_until_none(self, rng):
        batches = [rng.standard_normal((6, 2)) for _ in range(3)]

        def produce(index):
            return batches[index] if index < len(batches) else None

        out = list(function_stream(produce))
        assert len(out) == 3
        for got, expected in zip(out, batches):
            assert np.array_equal(got, expected)

    def test_n_batches_limit(self, rng):
        def produce(index):
            return np.zeros((4, 1))

        out = list(function_stream(produce, n_batches=5))
        assert len(out) == 5

    def test_row_consistency_enforced(self):
        shapes = [(4, 2), (5, 2)]

        def produce(index):
            return np.zeros(shapes[index]) if index < 2 else None

        with pytest.raises(ShapeError):
            list(function_stream(produce))


class TestTransforms:
    def test_map(self, rng):
        a = rng.standard_normal((8, 6))
        stream = array_stream(a, 3).map(lambda b: 2.0 * b)
        assert np.allclose(np.concatenate(list(stream), axis=1), 2 * a)

    def test_restrict_rows(self, rng):
        a = rng.standard_normal((10, 6))
        stream = array_stream(a, 3).restrict_rows(slice(2, 7))
        out = np.concatenate(list(stream), axis=1)
        assert np.allclose(out, a[2:7])
        assert stream.n_dof == 5

    def test_restrict_rows_feeds_parallel_rank(self, rng):
        """A rank adapts a global stream to its partition slice."""
        from repro.utils.partition import block_partition

        a = rng.standard_normal((20, 8))
        part = block_partition(20, 3)
        pieces = [
            np.concatenate(
                list(array_stream(a, 4).restrict_rows(part.slice_of(r))),
                axis=1,
            )
            for r in range(3)
        ]
        assert np.allclose(np.concatenate(pieces, axis=0), a)

    def test_restrict_rows_step_slice_n_dof(self, rng):
        """Stepped slices report the true restricted row count (ISSUE 2)."""
        a = rng.standard_normal((10, 6))
        stream = array_stream(a, 3).restrict_rows(slice(None, None, 2))
        out = np.concatenate(list(stream), axis=1)
        assert stream.n_dof == 5 == out.shape[0]
        assert np.allclose(out, a[::2])

    def test_restrict_rows_negative_slices_n_dof(self, rng):
        a = rng.standard_normal((10, 6))
        cases = [
            (slice(-4, None), 4),
            (slice(8, 1, -2), 4),
            (slice(None, None, -1), 10),
            (slice(7, None, -3), 3),
        ]
        for sl, expected in cases:
            stream = array_stream(a, 5).restrict_rows(sl)
            out = np.concatenate(list(stream), axis=1)
            assert stream.n_dof == expected == out.shape[0], sl
            assert np.allclose(out, a[sl])

    def test_restrict_rows_validates_downstream(self, rng):
        """The derived stream enforces its restricted row count on every
        batch, so a drifting source fails loudly."""
        batches = [np.zeros((10, 2)), np.zeros((8, 2))]
        stream = function_stream(
            lambda i: batches[i] if i < 2 else None, n_dof=10
        ).restrict_rows(slice(0, 6))
        with pytest.raises(ShapeError):
            list(stream)

    def test_restrict_rows_unknown_n_dof_stays_lazy(self, rng):
        """Without a declared n_dof the restricted stream infers its row
        count from the first batch (and still yields the right rows)."""
        a = rng.standard_normal((12, 4))
        stream = function_stream(lambda i: a if i == 0 else None)
        restricted = stream.restrict_rows(slice(2, 9))
        assert restricted.n_dof is None
        assert np.allclose(next(iter(restricted)), a[2:9])


class TestFunctionStreamNDof:
    def test_declared_n_dof_validates_first_batch(self):
        """With n_dof declared, the very first wrong-sized batch raises
        (previously the first batch silently defined the row count)."""
        stream = function_stream(lambda i: np.zeros((7, 2)), n_batches=3, n_dof=9)
        with pytest.raises(ShapeError, match="expected 9"):
            next(iter(stream))

    def test_declared_n_dof_accepts_matching(self):
        stream = function_stream(
            lambda i: np.zeros((9, 2)), n_batches=3, n_dof=9
        )
        assert stream.n_dof == 9
        assert sum(b.shape[1] for b in stream) == 6

    def test_invalid_n_dof_rejected(self):
        with pytest.raises(ShapeError):
            function_stream(lambda i: None, n_dof=0)
        with pytest.raises(ShapeError):
            function_stream(lambda i: None, n_dof=-3)

    def test_default_stays_inferred(self):
        stream = function_stream(lambda i: np.zeros((4, 1)), n_batches=2)
        assert stream.n_dof is None
        list(stream)
