"""Unit tests for SnapshotStream."""

import numpy as np
import pytest

from repro.data.io import write_snapshot_dataset, SnapshotDataset
from repro.data.streams import (
    array_stream,
    dataset_stream,
    function_stream,
)
from repro.exceptions import ShapeError


class TestArrayStream:
    def test_batches_tile(self, rng):
        a = rng.standard_normal((30, 17))
        stream = array_stream(a, 5)
        batches = list(stream)
        assert [b.shape[1] for b in batches] == [5, 5, 5, 2]
        assert np.allclose(np.concatenate(batches, axis=1), a)

    def test_reiterable(self, rng):
        a = rng.standard_normal((10, 6))
        stream = array_stream(a, 3)
        first = [b.copy() for b in stream]
        second = list(stream)
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

    def test_metadata(self, rng):
        stream = array_stream(rng.standard_normal((10, 6)), 2)
        assert stream.n_dof == 10
        assert stream.n_snapshots == 6

    def test_bad_batch_size(self, rng):
        with pytest.raises(ShapeError):
            array_stream(rng.standard_normal((5, 5)), 0)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            array_stream(np.ones(4), 2)


class TestDatasetStream:
    def test_streams_from_disk(self, tmp_path, rng):
        a = rng.standard_normal((12, 9))
        path = write_snapshot_dataset(tmp_path / "d.rsnap", a)
        stream = dataset_stream(SnapshotDataset.open(path), 4)
        assert np.allclose(np.concatenate(list(stream), axis=1), a)
        assert stream.n_dof == 12


class TestFunctionStream:
    def test_generates_until_none(self, rng):
        batches = [rng.standard_normal((6, 2)) for _ in range(3)]

        def produce(index):
            return batches[index] if index < len(batches) else None

        out = list(function_stream(produce))
        assert len(out) == 3
        for got, expected in zip(out, batches):
            assert np.array_equal(got, expected)

    def test_n_batches_limit(self, rng):
        def produce(index):
            return np.zeros((4, 1))

        out = list(function_stream(produce, n_batches=5))
        assert len(out) == 5

    def test_row_consistency_enforced(self):
        shapes = [(4, 2), (5, 2)]

        def produce(index):
            return np.zeros(shapes[index]) if index < 2 else None

        with pytest.raises(ShapeError):
            list(function_stream(produce))


class TestTransforms:
    def test_map(self, rng):
        a = rng.standard_normal((8, 6))
        stream = array_stream(a, 3).map(lambda b: 2.0 * b)
        assert np.allclose(np.concatenate(list(stream), axis=1), 2 * a)

    def test_restrict_rows(self, rng):
        a = rng.standard_normal((10, 6))
        stream = array_stream(a, 3).restrict_rows(slice(2, 7))
        out = np.concatenate(list(stream), axis=1)
        assert np.allclose(out, a[2:7])
        assert stream.n_dof == 5

    def test_restrict_rows_feeds_parallel_rank(self, rng):
        """A rank adapts a global stream to its partition slice."""
        from repro.utils.partition import block_partition

        a = rng.standard_normal((20, 8))
        part = block_partition(20, 3)
        pieces = [
            np.concatenate(
                list(array_stream(a, 4).restrict_rows(part.slice_of(r))),
                axis=1,
            )
            for r in range(3)
        ]
        assert np.allclose(np.concatenate(pieces, axis=0), a)
