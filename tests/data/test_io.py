"""Unit tests for the snapshot container (parallel-IO stand-in)."""

import numpy as np
import pytest

from repro.data.io import SnapshotDataset, read_local_block, write_snapshot_dataset
from repro.exceptions import DataFormatError, ShapeError


@pytest.fixture
def matrix(rng):
    return rng.standard_normal((50, 12))


@pytest.fixture
def container(tmp_path, matrix):
    path = tmp_path / "snaps.rsnap"
    write_snapshot_dataset(path, matrix, meta={"case": "test", "dt": 0.1})
    return path


class TestRoundtrip:
    def test_full_read(self, container, matrix):
        dataset = SnapshotDataset.open(container)
        assert np.array_equal(dataset.read(), matrix)

    def test_metadata_preserved(self, container):
        dataset = SnapshotDataset.open(container)
        assert dataset.meta == {"case": "test", "dt": 0.1}

    def test_shape_properties(self, container):
        dataset = SnapshotDataset.open(container)
        assert dataset.n_dof == 50
        assert dataset.n_snapshots == 12

    def test_float32_dtype(self, tmp_path, rng):
        a = rng.standard_normal((10, 4)).astype(np.float32)
        path = write_snapshot_dataset(tmp_path / "f32.rsnap", a)
        dataset = SnapshotDataset.open(path)
        assert dataset.dtype == np.float32
        assert np.array_equal(dataset.read(), a)

    def test_rejects_1d(self, tmp_path):
        with pytest.raises(ShapeError):
            write_snapshot_dataset(tmp_path / "bad.rsnap", np.ones(5))


class TestWindowedReads:
    def test_row_window(self, container, matrix):
        dataset = SnapshotDataset.open(container)
        assert np.array_equal(dataset.read_window(10, 20), matrix[10:20])

    def test_row_and_column_window(self, container, matrix):
        dataset = SnapshotDataset.open(container)
        out = dataset.read_window(5, 15, 3, 9)
        assert np.array_equal(out, matrix[5:15, 3:9])

    def test_window_bounds(self, container):
        dataset = SnapshotDataset.open(container)
        with pytest.raises(ShapeError):
            dataset.read_window(0, 51)
        with pytest.raises(ShapeError):
            dataset.read_window(0, 10, 5, 13)

    def test_rank_blocks_tile(self, container, matrix):
        blocks = []
        for rank in range(4):
            block, _ = read_local_block(container, rank, 4)
            blocks.append(block)
        assert np.array_equal(np.concatenate(blocks, axis=0), matrix)

    def test_column_batches(self, container, matrix):
        dataset = SnapshotDataset.open(container)
        batches = list(dataset.column_batches(5))
        assert [b.shape[1] for b in batches] == [5, 5, 2]
        assert np.array_equal(np.concatenate(batches, axis=1), matrix)

    def test_bad_batch_size(self, container):
        dataset = SnapshotDataset.open(container)
        with pytest.raises(ShapeError):
            list(dataset.column_batches(0))


class TestStreamingWrites:
    def test_create_then_write_columns(self, tmp_path, rng):
        path = tmp_path / "stream.rsnap"
        a = rng.standard_normal((20, 9))
        dataset = SnapshotDataset.create(path, (20, 9))
        dataset.write_columns(0, a[:, :4])
        dataset.write_columns(4, a[:, 4:])
        assert np.array_equal(SnapshotDataset.open(path).read(), a)

    def test_out_of_order_writes(self, tmp_path, rng):
        path = tmp_path / "ooo.rsnap"
        a = rng.standard_normal((8, 6))
        dataset = SnapshotDataset.create(path, (8, 6))
        dataset.write_columns(3, a[:, 3:])
        dataset.write_columns(0, a[:, :3])
        assert np.array_equal(SnapshotDataset.open(path).read(), a)

    def test_write_window_bounds(self, tmp_path):
        dataset = SnapshotDataset.create(tmp_path / "b.rsnap", (5, 4))
        with pytest.raises(ShapeError):
            dataset.write_columns(3, np.ones((5, 2)))
        with pytest.raises(ShapeError):
            dataset.write_columns(0, np.ones((6, 2)))

    def test_bad_create_shape(self, tmp_path):
        with pytest.raises(ShapeError):
            SnapshotDataset.create(tmp_path / "z.rsnap", (0, 3))


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.rsnap"
        path.write_bytes(b"NOTMAGIC" + b"\x00" * 100)
        with pytest.raises(DataFormatError):
            SnapshotDataset.open(path)

    def test_truncated_file(self, container):
        data = container.read_bytes()
        container.write_bytes(data[: len(data) // 2])
        with pytest.raises(DataFormatError):
            SnapshotDataset.open(container)

    def test_corrupt_header_json(self, tmp_path):
        path = tmp_path / "corrupt.rsnap"
        header = b"{not json"
        blob = b"RSNAP001" + np.uint64(len(header)).tobytes() + header
        path.write_bytes(blob + b"\x00" * 64)
        with pytest.raises(DataFormatError):
            SnapshotDataset.open(path)

    def test_missing_key(self, tmp_path):
        path = tmp_path / "nokey.rsnap"
        header = b'{"shape": [2, 2]}'
        blob = b"RSNAP001" + np.uint64(len(header)).tobytes() + header
        path.write_bytes(blob + b"\x00" * 64)
        with pytest.raises(DataFormatError):
            SnapshotDataset.open(path)
