"""QueryEngine: micro-batching, tickets, LRU cache behaviour."""

import numpy as np
import pytest

from repro.analysis.reconstruction import project_coefficients
from repro.exceptions import BasisNotFoundError, ServingError, ShapeError
from repro.serving import ModeBaseStore, QueryEngine, ShardedBasis
from repro.smpi import create_communicator, run_spmd

M, K = 80, 4


def make_basis(seed, n_dof=M, k=K):
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((n_dof, k)))
    return u, np.linspace(1.0, 0.1, k)


@pytest.fixture
def store(tmp_path):
    store = ModeBaseStore(tmp_path / "store")
    for i, name in enumerate(["alpha", "beta", "gamma"]):
        u, s = make_basis(i)
        store.publish(name, u, s)
    return store


@pytest.fixture
def engine(store):
    return QueryEngine(create_communicator("self"), store)


class TestTickets:
    def test_pending_until_flush(self, engine, rng):
        data = rng.standard_normal((M, 3))
        ticket = engine.submit_project("alpha", data)
        assert not ticket.done
        assert engine.pending == 1
        with pytest.raises(ServingError, match="pending"):
            ticket.result()
        assert engine.flush() == 1
        assert ticket.done
        assert engine.pending == 0
        u, _ = make_basis(0)
        assert np.max(np.abs(ticket.result() - project_coefficients(u, data))) < 1e-12

    def test_vector_payload_promoted_to_column(self, engine, rng):
        snapshot = rng.standard_normal(M)
        coeffs = engine.project("alpha", snapshot)
        assert coeffs.shape == (K, 1)

    def test_unknown_kind_and_bad_payload(self, engine, rng):
        with pytest.raises(ServingError):
            engine.submit("transmogrify", "alpha", rng.standard_normal((M, 2)))
        with pytest.raises(ShapeError):
            engine.submit_project("alpha", rng.standard_normal((2, 2, 2)))

    def test_unknown_basis(self, engine, rng):
        with pytest.raises(BasisNotFoundError):
            engine.submit_project("nope", rng.standard_normal((M, 1)))

    def test_version_pinning(self, store, rng):
        """A ticket submitted against v1 still answers from v1 after a new
        publish — versions resolve at submit time."""
        engine = QueryEngine(create_communicator("self"), store)
        data = rng.standard_normal((M, 2))
        u1, _ = make_basis(0)
        t_pinned = engine.submit_project("alpha", data, version=1)
        u_new, s_new = make_basis(99)
        store.publish("alpha", u_new, s_new)
        t_latest = engine.submit_project("alpha", data)
        engine.flush()
        assert t_pinned.version == 1
        assert t_latest.version == 2
        assert np.allclose(t_pinned.result(), project_coefficients(u1, data))
        assert np.allclose(t_latest.result(), project_coefficients(u_new, data))


class TestMicroBatching:
    def test_one_gemm_per_group(self, engine, rng):
        """N pending project queries on one basis cost exactly one GEMM."""
        queries = [rng.standard_normal((M, 2)) for _ in range(10)]
        tickets = [engine.submit_project("alpha", q) for q in queries]
        assert engine.flush() == 10
        assert engine.stats()["gemms"] == 1
        u, _ = make_basis(0)
        for t, q in zip(tickets, queries):
            assert np.max(np.abs(t.result() - project_coefficients(u, q))) < 1e-12

    def test_groups_split_by_basis_and_kind(self, engine, rng):
        engine.submit_project("alpha", rng.standard_normal((M, 2)))
        engine.submit_project("beta", rng.standard_normal((M, 2)))
        engine.submit_error("alpha", rng.standard_normal((M, 2)))
        engine.submit_reconstruct("alpha", rng.standard_normal((K, 2)))
        assert engine.flush() == 4
        assert engine.stats()["gemms"] == 4  # four distinct (basis, kind) groups

    def test_auto_flush_threshold(self, store, rng):
        engine = QueryEngine(
            create_communicator("self"), store, flush_threshold=4
        )
        tickets = [
            engine.submit_project("alpha", rng.standard_normal((M, 1)))
            for _ in range(4)
        ]
        # The fourth submit crossed the threshold and flushed everything.
        assert all(t.done for t in tickets)
        assert engine.pending == 0
        assert engine.stats()["flushes"] == 1

    def test_mixed_widths_split_correctly(self, engine, rng):
        widths = [1, 3, 2, 5]
        queries = [rng.standard_normal((M, w)) for w in widths]
        tickets = [engine.submit_project("alpha", q) for q in queries]
        engine.flush()
        u, _ = make_basis(0)
        for t, q, w in zip(tickets, queries, widths):
            assert t.result().shape == (K, w)
            assert np.allclose(t.result(), project_coefficients(u, q))

    def test_flush_empty_is_noop(self, engine):
        assert engine.flush() == 0
        assert engine.stats()["flushes"] == 0


class TestLRUCache:
    def test_hot_basis_cached(self, engine, rng):
        data = rng.standard_normal((M, 1))
        engine.project("alpha", data)
        engine.project("alpha", data)
        engine.project("alpha", data)
        assert engine.stats()["cache_misses"] == 1
        assert engine.stats()["cache_hits"] == 2

    def test_eviction_order_is_lru(self, store, rng):
        engine = QueryEngine(
            create_communicator("self"), store, max_cached_bases=2
        )
        data = rng.standard_normal((M, 1))
        engine.project("alpha", data)
        engine.project("beta", data)
        engine.project("alpha", data)  # refresh alpha
        engine.project("gamma", data)  # evicts beta (the LRU entry)
        cached_names = [name for name, _ in engine.cached_bases]
        assert set(cached_names) == {"alpha", "gamma"}
        assert engine.stats()["evictions"] == 1
        # beta reloads transparently.
        engine.project("beta", data)
        assert engine.stats()["cache_misses"] == 4

    def test_in_memory_basis_pinned(self, store, rng):
        engine = QueryEngine(
            create_communicator("self"), store, max_cached_bases=1
        )
        u, s = make_basis(42)
        engine.add_basis("mem", u, s)
        data = rng.standard_normal((M, 1))
        engine.project("alpha", data)
        engine.project("beta", data)
        # The unevictable in-memory basis still answers.
        assert np.allclose(
            engine.project("mem", data), project_coefficients(u, data)
        )

    def test_add_basis_accepts_sharded(self, rng):
        comm = create_communicator("self")
        engine = QueryEngine(comm)  # storeless
        u, s = make_basis(1)
        engine.add_basis("mem", ShardedBasis.from_global(comm, u, s))
        data = rng.standard_normal((M, 2))
        assert np.allclose(
            engine.project("mem", data), project_coefficients(u, data)
        )

    def test_storeless_unknown_name(self):
        engine = QueryEngine(create_communicator("self"))
        with pytest.raises(BasisNotFoundError, match="no store attached"):
            engine.submit_project("ghost", np.zeros((M, 1)))

    def test_bad_knobs_rejected(self, store):
        comm = create_communicator("self")
        with pytest.raises(ServingError):
            QueryEngine(comm, store, max_cached_bases=0)
        with pytest.raises(ServingError):
            QueryEngine(comm, store, flush_threshold=0)


class TestSpmdServing:
    def test_multirank_engine_consistent(self, store, rng):
        """Every rank of an SPMD serving job sees identical answers."""
        data = rng.standard_normal((M, 5))
        u, _ = make_basis(0)
        ref = project_coefficients(u, data)

        def job(comm):
            engine = QueryEngine(comm, store)
            t = engine.submit_project("alpha", data)
            e = engine.submit_error("alpha", data)
            engine.flush()
            return t.result(), e.result()

        results = run_spmd(3, job)
        for coeffs, err in results:
            assert np.max(np.abs(coeffs - ref)) < 1e-10
            assert np.isclose(err, results[0][1])


class TestReviewHardening:
    """Regressions for the review findings: submit-time validation,
    pinned-cache capacity, result-array independence."""

    def test_bad_payload_rejected_at_submit_not_flush(self, engine, rng):
        good = engine.submit_project("alpha", rng.standard_normal((M, 2)))
        with pytest.raises(ShapeError, match=f"must have {M} rows"):
            engine.submit_project("alpha", rng.standard_normal((M - 1, 2)))
        with pytest.raises(ShapeError, match="must have 4 rows"):
            engine.submit_reconstruct("alpha", rng.standard_normal((K + 1, 2)))
        with pytest.raises(BasisNotFoundError):
            engine.submit_project("alpha", rng.standard_normal((M, 2)), version=99)
        # The earlier good query was untouched by the rejected ones.
        assert engine.pending == 1
        engine.flush()
        assert good.done

    def test_pinned_bases_do_not_starve_cache(self, store, rng):
        engine = QueryEngine(
            create_communicator("self"), store, max_cached_bases=1
        )
        u, s = make_basis(42)
        engine.add_basis("mem", u, s)
        data = rng.standard_normal((M, 1))
        engine.project("alpha", data)
        engine.project("alpha", data)
        # "alpha" stays cached despite the pinned in-memory entry.
        assert engine.stats()["cache_misses"] == 1
        assert engine.stats()["evictions"] == 0

    def test_results_are_independent_arrays(self, engine, rng):
        q1, q2 = (rng.standard_normal((M, 2)) for _ in range(2))
        t1 = engine.submit_project("alpha", q1)
        t2 = engine.submit_project("alpha", q2)
        engine.flush()
        before = t2.result().copy()
        t1.result()[:] = 0.0  # mutating one answer ...
        assert np.array_equal(t2.result(), before)  # ... leaves others intact
        assert t1.result().base is None  # owns its memory

    def test_local_payload_rows_validated_at_submit(self, store, rng):
        from repro.utils.partition import block_partition

        data = rng.standard_normal((M, 2))

        def job(comm):
            engine = QueryEngine(comm, store)
            part = block_partition(M, comm.size)
            with pytest.raises(ShapeError):
                engine.submit_project("alpha", data, local=True)  # global rows
            ticket = engine.submit_project(
                "alpha", data[part.slice_of(comm.rank), :], local=True
            )
            engine.flush()
            return ticket.result()

        u, _ = make_basis(0)
        ref = u.T @ data
        for coeffs in run_spmd(2, job):
            assert np.max(np.abs(coeffs - ref)) < 1e-10


class TestTicketOwnership:
    def test_single_query_results_writable_on_every_rank(self, store, rng):
        """A one-query flush group must not hand the ticket an alias of
        the (possibly read-only, broadcast-shared) batch array."""
        data = rng.standard_normal((M, 3))

        def job(comm):
            engine = QueryEngine(comm, store)
            t_proj = engine.submit_project("alpha", data)
            engine.flush()
            coeffs = t_proj.result()
            coeffs *= 2.0  # must be legal on every rank
            t_rec = engine.submit_reconstruct("beta", coeffs[:, :1])
            engine.flush()
            field = t_rec.result()
            field += 1.0
            return coeffs.flags.writeable and field.flags.writeable

        assert all(run_spmd(3, job))
        assert all(run_spmd(1, job))
