"""The keyed result cache and deadline accounting of ``QueryEngine``.

Cache contract: keys are ``(basis name, version, kind, payload
digest)``; hits fulfil at submit with no GEMM and no collective;
version bumps and payload changes miss; eviction is LRU; degraded
(failover) answers and ``local=True`` queries are never cached.
Deadline contract: ``oldest_pending_age_s`` / ``flush_due`` expose
queue pressure, the engine never flushes spontaneously.
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis.reconstruction import project_coefficients
from repro.exceptions import ServingError
from repro.serving import ModeBaseStore, QueryEngine
from repro.serving.engine import payload_digest
from repro.smpi import create_communicator

M, K = 60, 4


def make_basis(seed, n_dof=M, k=K):
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((n_dof, k)))
    return u, np.linspace(1.0, 0.1, k)


@pytest.fixture
def store(tmp_path):
    store = ModeBaseStore(tmp_path / "store")
    u, s = make_basis(0)
    store.publish("alpha", u, s)
    return store


def engine_for(store, **kwargs):
    kwargs.setdefault("result_cache_entries", 8)
    return QueryEngine(create_communicator("self"), store, **kwargs)


class TestPayloadDigest:
    def test_identical_payloads_collide(self, rng):
        data = rng.standard_normal((M, 3))
        assert payload_digest(data) == payload_digest(data.copy())

    def test_any_changed_byte_differs(self, rng):
        data = rng.standard_normal((M, 3))
        other = data.copy()
        other[17, 1] += 1e-14
        assert payload_digest(data) != payload_digest(other)

    def test_shape_and_dtype_matter(self):
        flat = np.zeros(12)
        assert payload_digest(flat.reshape(3, 4)) != payload_digest(
            flat.reshape(4, 3)
        )
        assert payload_digest(flat) != payload_digest(
            flat.astype(np.float32)
        )

    def test_non_contiguous_payloads_digest_by_content(self, rng):
        data = rng.standard_normal((M, 6))
        view = data[:, ::2]
        assert payload_digest(view) == payload_digest(view.copy())


class TestCacheHitMiss:
    def test_repeat_query_hits_without_gemm_or_collective(self, store, rng):
        engine = engine_for(store)
        data = rng.standard_normal((M, 3))
        first = engine.project("alpha", data)
        stats = engine.stats()
        gemms, collectives = stats["gemms"], stats["collectives"]

        ticket = engine.submit_project("alpha", data.copy())
        # Fulfilled at submit: no queueing, no flush needed.
        assert ticket.done and ticket.cached and not ticket.degraded
        assert engine.pending == 0
        assert np.allclose(ticket.result(), first)
        stats = engine.stats()
        assert stats["gemms"] == gemms
        assert stats["collectives"] == collectives
        assert stats["result_cache_hits"] == 1
        assert stats["result_cache_misses"] == 1

    def test_different_payload_misses(self, store, rng):
        engine = engine_for(store)
        engine.project("alpha", rng.standard_normal((M, 3)))
        ticket = engine.submit_project("alpha", rng.standard_normal((M, 3)))
        assert not ticket.done
        assert engine.stats()["result_cache_misses"] == 2

    def test_kinds_are_keyed_separately(self, store, rng):
        engine = engine_for(store)
        data = rng.standard_normal((M, 2))
        engine.project("alpha", data)
        ticket = engine.submit_error("alpha", data)
        assert not ticket.done  # project hit must not answer an error query
        engine.flush()
        assert ticket.result() == pytest.approx(
            float(
                np.linalg.norm(data - store.get("alpha").modes @ engine.project("alpha", data))
                / np.linalg.norm(data)
            ),
            abs=1e-10,
        )

    def test_version_bump_misses_naturally(self, store, rng):
        engine = engine_for(store)
        data = rng.standard_normal((M, 3))
        v1_answer = engine.project("alpha", data)
        # Publish a new version: latest now resolves to v2 at submit, so
        # the v1 cache entry cannot answer it.
        u2, s2 = make_basis(99)
        store.publish("alpha", u2, s2)
        ticket = engine.submit_project("alpha", data)
        assert not ticket.done
        engine.flush()
        assert np.allclose(ticket.result(), project_coefficients(u2, data))
        assert not np.allclose(ticket.result(), v1_answer)
        # Pinning the old version still hits its cached entry.
        pinned = engine.submit_project("alpha", data, version=1)
        assert pinned.done and pinned.cached
        assert np.allclose(pinned.result(), v1_answer)

    def test_cached_value_is_isolated_from_ticket_mutation(self, store, rng):
        engine = engine_for(store)
        data = rng.standard_normal((M, 2))
        first = engine.project("alpha", data)
        first[:] = -1.0  # clobber the caller's copy
        again = engine.submit_project("alpha", data).result()
        assert not np.allclose(again, -1.0)
        again[:] = -2.0  # clobber a hit's copy too
        assert not np.allclose(
            engine.submit_project("alpha", data).result(), -2.0
        )

    def test_disabled_by_default(self, store, rng):
        engine = QueryEngine(create_communicator("self"), store)
        data = rng.standard_normal((M, 2))
        engine.project("alpha", data)
        assert not engine.submit_project("alpha", data).done
        assert engine.cached_results == []

    def test_negative_capacity_rejected(self, store):
        with pytest.raises(ServingError, match="result_cache_entries"):
            QueryEngine(
                create_communicator("self"), store, result_cache_entries=-1
            )


class TestCacheExclusions:
    def test_local_queries_never_cached(self, store, rng):
        # local=True payloads are rank-dependent: caching them would let
        # ranks disagree on hit/miss and desynchronise the SPMD flush
        # schedule.
        engine = engine_for(store)
        data = rng.standard_normal((M, 2))  # self comm: local block = global
        engine.project("alpha", data, local=True)
        assert engine.cached_results == []
        ticket = engine.submit_project("alpha", data, local=True)
        assert not ticket.done

    def test_degraded_results_never_cached(self, store, rng):
        engine = engine_for(store)
        data = rng.standard_normal((M, 2))
        engine._shard_group_down = True  # force the failover path
        ticket = engine.submit_project("alpha", data)
        engine.flush()
        assert ticket.degraded
        assert engine.cached_results == []
        # A later identical submit is a miss, not a stale degraded hit.
        again = engine.submit_project("alpha", data)
        assert not again.done


class TestEvictionOrder:
    def test_lru_eviction(self, store, rng):
        engine = engine_for(store, result_cache_entries=2)
        a = rng.standard_normal((M, 1))
        b = rng.standard_normal((M, 1))
        c = rng.standard_normal((M, 1))
        engine.project("alpha", a)
        engine.project("alpha", b)
        # Touch a: it becomes most recent, so b is the eviction victim.
        assert engine.submit_project("alpha", a).cached
        engine.project("alpha", c)
        assert len(engine.cached_results) == 2
        assert engine.stats()["result_cache_evictions"] == 1
        assert engine.submit_project("alpha", a).done
        assert engine.submit_project("alpha", c).done
        assert not engine.submit_project("alpha", b).done  # evicted

    def test_eviction_keys_are_lru_ordered(self, store, rng):
        engine = engine_for(store, result_cache_entries=3)
        payloads = [rng.standard_normal((M, 1)) for _ in range(3)]
        for p in payloads:
            engine.project("alpha", p)
        keys = engine.cached_results
        assert keys[0][3] == payload_digest(payloads[0])
        assert keys[-1][3] == payload_digest(payloads[2])


class TestDeadlineAccounting:
    def test_oldest_pending_age_and_flush_due(self, store, rng):
        engine = engine_for(store, flush_deadline_ms=10.0)
        assert engine.oldest_pending_age_s() == 0.0
        assert not engine.flush_due()
        engine.submit_project("alpha", rng.standard_normal((M, 1)))
        t0 = time.monotonic()
        assert not engine.flush_due(now=t0)
        assert engine.flush_due(now=t0 + 0.5)
        assert engine.oldest_pending_age_s(now=t0 + 0.5) >= 0.4

    def test_flush_records_oldest_age_and_deadline_counter(self, store, rng):
        engine = engine_for(store, flush_deadline_ms=5.0)
        engine.submit_project("alpha", rng.standard_normal((M, 1)))
        time.sleep(0.02)
        engine.flush()
        stats = engine.stats()
        assert stats["deadline_flushes"] == 1
        assert stats["last_flush_oldest_age_s"] >= 0.005
        assert stats["pending"] == 0

    def test_no_budget_means_never_due(self, store, rng):
        engine = engine_for(store)
        engine.submit_project("alpha", rng.standard_normal((M, 1)))
        assert not engine.flush_due(now=time.monotonic() + 3600.0)

    def test_invalid_budget_rejected(self, store):
        with pytest.raises(ServingError, match="flush_deadline_ms"):
            engine_for(store, flush_deadline_ms=0.0)

    def test_stats_reports_pending_by_group(self, store, rng):
        engine = engine_for(store, flush_threshold=64)
        engine.submit_project("alpha", rng.standard_normal((M, 1)))
        engine.submit_project("alpha", rng.standard_normal((M, 1)))
        engine.submit_error("alpha", rng.standard_normal((M, 1)))
        stats = engine.stats()
        assert stats["pending"] == 3
        assert stats["pending_by_group"] == {
            "alpha:project": 2,
            "alpha:reconstruction_error": 1,
        }
        assert engine.pending_by_group()[("alpha", "project")] == 2
        engine.flush()
        assert engine.stats()["pending_by_group"] == {}


class TestTicketTimeout:
    def test_timeout_expiry_is_descriptive(self, store, rng):
        engine = engine_for(store)
        ticket = engine.submit_project("alpha", rng.standard_normal((M, 1)))
        with pytest.raises(ServingError, match="not fulfilled within"):
            ticket.result(timeout=0.01)

    def test_no_timeout_keeps_instant_contract(self, store, rng):
        engine = engine_for(store)
        ticket = engine.submit_project("alpha", rng.standard_normal((M, 1)))
        with pytest.raises(ServingError, match="still pending"):
            ticket.result()

    def test_cross_thread_fulfilment_wakes_waiter(self, store, rng):
        engine = engine_for(store)
        data = rng.standard_normal((M, 2))
        ticket = engine.submit_project("alpha", data)
        timer = threading.Timer(0.05, engine.flush)
        timer.start()
        try:
            value = ticket.result(timeout=5.0)
        finally:
            timer.join()
        assert np.allclose(
            value, project_coefficients(store.get("alpha").modes, data)
        )
