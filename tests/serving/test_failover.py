"""QueryEngine failover: when the shard group dies mid-flush, pending
groups re-run against local full-copy replicas and tickets come back
``degraded`` — every query is still answered."""

import numpy as np
import pytest

from repro.analysis.reconstruction import project_coefficients
from repro.config import FaultConfig, FaultSpec
from repro.exceptions import CommunicatorError, ServingError
from repro.faults import runtime as faults_rt
from repro.serving import ModeBaseStore, QueryEngine, ShardedBasis
from repro.smpi import create_communicator, run_spmd

M, K = 80, 4


def make_basis(seed, n_dof=M, k=K):
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((n_dof, k)))
    return u, np.linspace(1.0, 0.1, k)


@pytest.fixture
def store(tmp_path):
    store = ModeBaseStore(tmp_path / "store")
    u, s = make_basis(0)
    store.publish("alpha", u, s)
    return store


class TestReplicaRegistration:
    def test_add_basis_array_form_builds_replica(self, rng):
        comm = create_communicator("self")
        engine = QueryEngine(comm, replicate=True)
        u, s = make_basis(1)
        engine.add_basis("mem", u, s)
        data = rng.standard_normal((M, 2))
        # Force the degraded path: with the shard group marked down,
        # the flush must answer from the replica.
        engine._shard_group_down = True
        coeffs = engine.project("mem", data)
        assert np.allclose(coeffs, project_coefficients(u, data))
        assert engine.stats()["failovers"] == 1
        assert engine.shard_group_down

    def test_presharded_basis_cannot_replicate(self):
        comm = create_communicator("self")
        engine = QueryEngine(comm)
        u, s = make_basis(1)
        sharded = ShardedBasis.from_global(comm, u, s)
        with pytest.raises(ServingError, match="pre-sharded"):
            engine.add_basis("mem", sharded, replicate=True)

    def test_no_replica_no_failover(self, rng):
        comm = create_communicator("self")
        engine = QueryEngine(comm)  # storeless, replicate off
        u, s = make_basis(1)
        engine.add_basis("mem", ShardedBasis.from_global(comm, u, s))
        engine.submit_project("mem", rng.standard_normal((M, 1)))
        engine._shard_group_down = True
        with pytest.raises(ServingError, match="no replica"):
            engine.flush()

    def test_local_queries_cannot_fail_over(self, store, rng):
        engine = QueryEngine(create_communicator("self"), store, replicate=True)
        engine.submit_project("alpha", rng.standard_normal((M, 1)), local=True)
        engine._shard_group_down = True
        with pytest.raises(ServingError, match="rank-local"):
            engine.flush()


class TestStoreBackedFailover:
    def test_on_demand_replica_from_store(self, store, rng):
        """A store-backed engine fails over even without replicate=True
        at construction: the replica is rebuilt from the store."""
        engine = QueryEngine(create_communicator("self"), store)
        data = rng.standard_normal((M, 3))
        u, _ = make_basis(0)

        primary = engine.load("alpha")

        def dead_project(*args, **kwargs):
            raise CommunicatorError("synthetic shard failure")

        primary.project = dead_project

        ticket = engine.submit_project("alpha", data)
        engine.flush()
        assert ticket.done and ticket.degraded
        assert np.allclose(ticket.result(), project_coefficients(u, data))
        assert engine.stats()["failovers"] == 1
        assert engine.shard_group_down

        # Later flushes route straight to the replica — the dead primary
        # is never touched again.
        again = engine.submit_project("alpha", data)
        engine.flush()
        assert again.degraded
        assert engine.stats()["failovers"] == 2

    def test_failover_is_metered(self, store, rng):
        from repro.obs import runtime as obs_rt

        engine = QueryEngine(create_communicator("self"), store)
        primary = engine.load("alpha")
        primary.project = lambda *a, **k: (_ for _ in ()).throw(
            CommunicatorError("down")
        )
        obs_rt.reset()
        obs_rt.install(metrics=True)
        try:
            engine.project("alpha", rng.standard_normal((M, 1)))
            snap = obs_rt.current_registry().snapshot()
            assert (
                snap["counters"]["repro.recovery.failovers"]["value"] == 1.0
            )
        finally:
            obs_rt.uninstall()


class TestSpmdFailover:
    def test_two_rank_engine_answers_despite_crashed_replica(
        self, store, rng
    ):
        """Acceptance: a 2-rank serving job with one rank injected to
        crash mid-flush still answers every ticket on both ranks."""
        data = rng.standard_normal((M, 3))
        u, _ = make_basis(0)
        ref = project_coefficients(u, data)

        # The second allreduce (per rank) dies: the first project group
        # completes cleanly, then the error group's reduction kills
        # rank 1 mid-flush.
        faults_rt.install(
            FaultConfig(
                enabled=True,
                schedule=(
                    FaultSpec(kind="crash", rank=1, op="allreduce", at=1),
                ),
            )
        )
        try:

            def job(comm):
                engine = QueryEngine(comm, store, replicate=True)
                t_clean = engine.submit_project("alpha", data)
                engine.flush()
                t_err = engine.submit_error("alpha", data)
                t_rec = engine.submit_reconstruct("alpha", t_clean.result())
                engine.flush()
                t_after = engine.submit_project("alpha", data)
                engine.flush()
                tickets = (t_clean, t_err, t_rec, t_after)
                assert all(t.done for t in tickets)
                return (
                    [t.result() for t in tickets],
                    [t.degraded for t in tickets],
                    engine.stats()["failovers"],
                    engine.shard_group_down,
                )

            # The surviving rank detects the dead peer by timing out its
            # collective, so keep the deadlock timeout short.
            results = run_spmd(2, job, timeout=2.0)
        finally:
            faults_rt.uninstall()

        for values, degraded, failovers, down in results:
            coeffs, err, field, after = values
            assert np.max(np.abs(coeffs - ref)) < 1e-10
            assert np.max(np.abs(after - ref)) < 1e-10
            assert np.isfinite(err)
            assert field.shape == (M, 3)
            # The pre-crash group answered clean; everything after the
            # crash is served degraded from the replica.
            assert degraded == [False, True, True, True]
            assert failovers == 3
            assert down
