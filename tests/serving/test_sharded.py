"""ShardedBasis: row-partitioned distributed query kernels."""

import numpy as np
import pytest

from repro.analysis.reconstruction import (
    project_coefficients,
    reconstruct,
    reconstruction_error_curve,
)
from repro.exceptions import ShapeError
from repro.serving import ModeBaseStore, ShardedBasis
from repro.smpi import create_communicator, run_spmd
from repro.utils.partition import block_partition

M, K, B = 90, 6, 7


@pytest.fixture
def basis(rng):
    u, _ = np.linalg.qr(rng.standard_normal((M, K)))
    return u, np.linspace(2.0, 0.1, K)


@pytest.fixture
def queries(rng):
    return rng.standard_normal((M, B))


class TestConstruction:
    def test_from_global_partitions_canonically(self, basis):
        u, s = basis

        def job(comm):
            sharded = ShardedBasis.from_global(comm, u, s)
            return sharded.local_modes.shape, sharded.n_dof, sharded.n_modes

        shapes = run_spmd(4, job)
        part = block_partition(M, 4)
        for rank, (shape, n_dof, n_modes) in enumerate(shapes):
            assert shape == (part.counts[rank], K)
            assert (n_dof, n_modes) == (M, K)

    def test_from_store(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        store.publish("b", u, s)

        def job(comm):
            sharded = ShardedBasis.from_store(comm, store, "b")
            return sharded.local_modes

        blocks = run_spmd(3, job)
        assert np.array_equal(np.concatenate(blocks, axis=0), u)

    def test_single_rank_defaults(self, basis):
        u, s = basis
        sharded = ShardedBasis(create_communicator("self"), u, s)
        assert sharded.n_dof == M
        assert np.array_equal(sharded.local_modes, u)

    def test_local_block_shape_enforced(self, basis):
        u, s = basis

        def job(comm):
            part = block_partition(M, comm.size)
            with pytest.raises(ShapeError):
                ShardedBasis(comm, u, s, part)  # full matrix, not the block
            return True

        assert all(run_spmd(2, job))

    def test_multi_rank_requires_partition(self, basis):
        u, _ = basis

        def job(comm):
            with pytest.raises(ShapeError):
                ShardedBasis(comm, u)
            return True

        assert all(run_spmd(2, job))


class TestQueries:
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_project_matches_serial(self, basis, queries, nranks):
        u, s = basis
        ref = project_coefficients(u, queries)

        def job(comm):
            return ShardedBasis.from_global(comm, u, s).project(queries)

        for coeffs in run_spmd(nranks, job):
            assert np.max(np.abs(coeffs - ref)) < 1e-10

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_reconstruct_matches_serial(self, basis, queries, nranks):
        u, s = basis
        coeffs = project_coefficients(u, queries)
        ref = reconstruct(u, coeffs)

        def job(comm):
            return ShardedBasis.from_global(comm, u, s).reconstruct(coeffs)

        for recon in run_spmd(nranks, job):
            assert np.max(np.abs(recon - ref)) < 1e-10

    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_error_matches_serial_curve(self, basis, queries, nranks):
        u, s = basis
        ref = reconstruction_error_curve(queries, u)[-1]

        def job(comm):
            return ShardedBasis.from_global(comm, u, s).reconstruction_error(
                queries
            )

        for err in run_spmd(nranks, job):
            assert abs(err - ref) < 1e-10

    def test_local_payloads(self, basis, queries):
        """In-situ pattern: no rank ever holds the global snapshot."""
        u, s = basis
        ref = project_coefficients(u, queries)

        def job(comm):
            part = block_partition(M, comm.size)
            sharded = ShardedBasis.from_global(comm, u, s)
            local = queries[part.slice_of(comm.rank), :]
            return (
                sharded.project(local, local=True),
                sharded.reconstruction_error(local, local=True),
            )

        ref_err = reconstruction_error_curve(queries, u)[-1]
        for coeffs, err in run_spmd(3, job):
            assert np.max(np.abs(coeffs - ref)) < 1e-10
            assert abs(err - ref_err) < 1e-10

    def test_zero_data_error_is_zero(self, basis):
        u, s = basis

        def job(comm):
            sharded = ShardedBasis.from_global(comm, u, s)
            return sharded.reconstruction_error(np.zeros((M, 2)))

        assert run_spmd(2, job) == [0.0, 0.0]

    def test_perfectly_representable_data(self, basis):
        """Data inside span(U) reconstructs with ~zero error."""
        u, s = basis
        inside = u @ np.linspace(1.0, 2.0, K)[:, np.newaxis]

        def job(comm):
            return ShardedBasis.from_global(comm, u, s).reconstruction_error(
                inside
            )

        for err in run_spmd(2, job):
            assert err < 1e-7

    def test_shape_errors(self, basis, queries):
        u, s = basis
        sharded = ShardedBasis.from_global(create_communicator("self"), u, s)
        with pytest.raises(ShapeError):
            sharded.project(queries[:-1, :])  # wrong global row count
        with pytest.raises(ShapeError):
            sharded.reconstruct(np.ones((K + 1, 3)))
