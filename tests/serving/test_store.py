"""ModeBaseStore: versioned publish/get, manifest integrity, ingestion."""

import json

import numpy as np
import pytest

from repro import ParSVDParallel
from repro.config import SVDConfig
from repro.exceptions import BasisNotFoundError, ServingError, ShapeError
from repro.serving import MANIFEST_NAME, ModeBaseStore
from repro.smpi import run_spmd
from repro.utils.partition import block_partition


@pytest.fixture
def basis(rng):
    u, _ = np.linalg.qr(rng.standard_normal((60, 5)))
    s = np.linspace(3.0, 0.5, 5)
    return u, s


class TestPublishGet:
    def test_roundtrip(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        version = store.publish("wave", u, s)
        assert version == 1
        base = store.get("wave")
        assert base.name == "wave"
        assert base.version == 1
        assert base.n_dof == 60 and base.n_modes == 5
        assert np.array_equal(base.modes, u)
        assert np.array_equal(base.singular_values, s)

    def test_versions_are_monotone_and_immutable(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        v1 = store.publish("wave", u, s)
        v2 = store.publish("wave", 2.0 * u, s)
        assert (v1, v2) == (1, 2)
        assert store.versions("wave") == [1, 2]
        assert store.latest_version("wave") == 2
        # v1 is untouched by the later publish.
        assert np.array_equal(store.get("wave", 1).modes, u)
        assert np.array_equal(store.get("wave", 2).modes, 2.0 * u)
        # Default get() resolves to latest.
        assert store.get("wave").version == 2

    def test_reopen_existing_store(self, tmp_path, basis):
        u, s = basis
        ModeBaseStore(tmp_path / "store").publish("wave", u, s)
        reopened = ModeBaseStore(tmp_path / "store")
        assert reopened.names() == ["wave"]
        assert np.array_equal(reopened.get("wave").modes, u)

    def test_config_provenance_rides_along(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        cfg = SVDConfig(K=5, ff=0.9, seed=3)
        store.publish("wave", u, s, config=cfg, iteration=7, n_seen=140)
        base = store.get("wave")
        assert base.config.ff == 0.9
        assert base.config.seed == 3
        assert base.iteration == 7
        assert base.n_seen == 140

    def test_describe_and_contains(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        store.publish("a", u, s)
        store.publish("b", u, s)
        store.publish("b", u, s)
        assert store.describe() == {"a": [1], "b": [1, 2]}
        assert "a" in store and "zzz" not in store


class TestValidation:
    def test_unknown_name(self, tmp_path):
        store = ModeBaseStore(tmp_path / "store")
        with pytest.raises(BasisNotFoundError):
            store.get("missing")
        with pytest.raises(BasisNotFoundError):
            store.versions("missing")

    def test_unknown_version(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        store.publish("wave", u, s)
        with pytest.raises(BasisNotFoundError):
            store.get("wave", 9)

    def test_unsafe_name_rejected(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        for bad in ("../escape", "", "a b", ".hidden", "x/y"):
            with pytest.raises(ServingError):
                store.publish(bad, u, s)

    def test_shape_mismatch_rejected(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        with pytest.raises(ShapeError):
            store.publish("wave", u, s[:-1])
        with pytest.raises(ShapeError):
            store.publish("wave", u[:, 0], s)

    def test_corrupt_manifest_fails_loudly(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        store.publish("wave", u, s)
        (tmp_path / "store" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ServingError):
            store.names()

    def test_manifest_is_valid_json(self, tmp_path, basis):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        store.publish("wave", u, s)
        manifest = json.loads((tmp_path / "store" / MANIFEST_NAME).read_text())
        assert manifest["format"] == 1
        assert manifest["bases"]["wave"]["latest"] == 1


class TestIngestion:
    def test_publish_gathered_checkpoint(self, tmp_path, decaying_matrix):
        """save_checkpoint(gathered=True) -> publish_checkpoint round-trip."""
        base_path = tmp_path / "state"

        def job(comm):
            part = block_partition(200, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0, r1=20)
            svd.initialize(block[:, :20])
            svd.incorporate_data(block[:, 20:])
            svd.save_checkpoint(base_path, gathered=True)
            return svd.modes

        modes = run_spmd(2, job)[0]
        store = ModeBaseStore(tmp_path / "store")
        version = store.publish_checkpoint("decay", base_path.with_suffix(".npz"))
        got = store.get("decay", version)
        assert np.allclose(got.modes, modes, atol=1e-14)
        assert got.n_seen == 40

    def test_rank_shard_rejected(self, tmp_path, decaying_matrix):
        """Per-rank shards are not servable; the error says how to fix it."""

        def job(comm):
            part = block_partition(200, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0, r1=20)
            svd.initialize(block)
            svd.save_checkpoint(tmp_path / "shards")

        run_spmd(2, job)
        store = ModeBaseStore(tmp_path / "store")
        with pytest.raises(ServingError, match="gathered"):
            store.publish_checkpoint("decay", tmp_path / "shards.rank0.npz")

    def test_export_to_store_from_parallel(self, tmp_path, decaying_matrix):
        store = ModeBaseStore(tmp_path / "store")

        def job(comm):
            part = block_partition(200, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0, r1=20)
            svd.initialize(block)
            v1 = svd.export_to_store(store, "decay")
            v2 = svd.export_to_store(store, "decay")
            return v1, v2, svd.modes

        results = run_spmd(3, job)
        # Every rank observes the same assigned versions.
        assert all(r[:2] == (1, 2) for r in results)
        assert np.allclose(
            store.get("decay").modes, results[0][2], atol=1e-14
        )

    def test_export_accepts_path(self, tmp_path, decaying_matrix):
        """export_to_store creates the store from a bare path at rank 0."""

        def job(comm):
            part = block_partition(200, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, ff=1.0, r1=20)
            svd.initialize(block)
            return svd.export_to_store(tmp_path / "fresh", "decay")

        assert run_spmd(2, job) == [1, 1]
        assert ModeBaseStore(tmp_path / "fresh").names() == ["decay"]


class TestDamagedStore:
    def test_missing_manifest_over_version_files_refused(
        self, tmp_path, basis
    ):
        """A lost manifest must not let a fresh catalogue reassign
        'immutable' version numbers over live files."""
        u, s = basis
        root = tmp_path / "store"
        ModeBaseStore(root).publish("wave", u, s)
        (root / MANIFEST_NAME).unlink()
        with pytest.raises(ServingError, match="refusing to initialise"):
            ModeBaseStore(root)

    def test_publish_refuses_to_overwrite_unmanifested_file(
        self, tmp_path, basis
    ):
        u, s = basis
        store = ModeBaseStore(tmp_path / "store")
        # A stray file squats on the next version slot.
        (tmp_path / "store" / "wave.v1.npz").write_bytes(b"squatter")
        with pytest.raises(ServingError, match="refusing to overwrite"):
            store.publish("wave", u, s)
