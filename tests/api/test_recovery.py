"""Elastic recovery: ``Session.run(restart_policy=...)`` replays an
injected-crash run from the last auto-checkpoint and matches the
fault-free run bit-for-bit; ``close(drop_pending=True)`` stops prefetch
producers abandoned mid-stream."""

import threading

import numpy as np
import pytest

from repro.api import (
    BackendConfig,
    FaultConfig,
    FaultSpec,
    ObservabilityConfig,
    RestartPolicy,
    RunConfig,
    Session,
    SolverConfig,
    StreamConfig,
)
from repro.exceptions import ConfigurationError
from repro.faults import runtime as faults_rt
from repro.obs import runtime as obs_rt
from repro.smpi.executor import ParallelFailure

NDOF, NT, BATCH = 64, 24, 4


def make_data() -> np.ndarray:
    rng = np.random.default_rng(7)
    x = np.linspace(0.0, 1.0, NDOF)
    t = np.linspace(0.0, 1.0, NT)
    basis = np.column_stack([np.sin((i + 1) * np.pi * x) for i in range(5)])
    weights = np.column_stack(
        [np.cos((i + 1) * 2.0 * np.pi * t) / (i + 1.0) for i in range(5)]
    )
    data = basis @ weights.T
    return data + 0.01 * rng.standard_normal(data.shape)


DATA = make_data()


def base_config(ranks: int, qr_variant: str = "gather") -> RunConfig:
    return RunConfig(
        solver=SolverConfig(K=8, ff=0.95, qr_variant=qr_variant, overlap=True),
        backend=BackendConfig(name="threads", size=ranks, timeout=30.0),
        stream=StreamConfig(batch=BATCH),
        obs=ObservabilityConfig(metrics=True),
    )


def job(session: Session):
    result = session.fit_stream(DATA).result()
    return result.singular_values, result.modes


def crashing(base: RunConfig, rank: int, at: int) -> RunConfig:
    return base.replace(
        faults=FaultConfig(
            enabled=True,
            seed=0,
            schedule=(FaultSpec(kind="crash", rank=rank, op="*", at=at),),
        )
    )


def counter(name: str) -> int:
    meter = obs_rt.default_registry().snapshot()["counters"].get(name)
    return int(meter["value"]) if meter else 0


@pytest.fixture(autouse=True)
def _clean_runtimes():
    yield
    # Every recovery path must unwind its fault/obs installs, even the
    # failing ones.
    assert faults_rt.state() is None
    assert obs_rt.state() is None


@pytest.fixture(scope="module")
def baselines():
    """Fault-free reference results, one per (lane, ranks) cell."""
    refs = {}
    for lane in ("gather", "tree"):
        for ranks in (1, 4):
            refs[(lane, ranks)] = Session.run(base_config(ranks, lane), job)
    return refs


def assert_matches(recovered, clean, tol=1e-12):
    assert len(recovered) == len(clean)
    for (rsv, rmodes), (csv, cmodes) in zip(recovered, clean):
        np.testing.assert_allclose(rsv, csv, rtol=0.0, atol=tol)
        np.testing.assert_allclose(
            np.abs(rmodes), np.abs(cmodes), rtol=0.0, atol=tol
        )


class TestCrashRecovery:
    # Crash ordinals chosen from a measured op census of this stream
    # (~20 comm ops per rank at 4 ranks, 5 total at 1): early (during
    # initialization), mid-stream, and near the tail.
    @pytest.mark.parametrize("lane", ["gather", "tree"])
    @pytest.mark.parametrize("crash_at", [1, 7, 19])
    def test_four_ranks_recover_bit_identically(
        self, baselines, lane, crash_at
    ):
        cfg = crashing(base_config(4, lane), rank=1, at=crash_at)
        obs_rt.reset()
        recovered = Session.run(
            cfg,
            job,
            restart_policy=RestartPolicy(
                max_restarts=2, backoff_s=0.01, checkpoint_every=1
            ),
        )
        assert counter("repro.faults.injected.crash") >= 1
        assert counter("repro.recovery.restarts") >= 1
        assert_matches(recovered, baselines[(lane, 4)])

    @pytest.mark.parametrize("lane", ["gather", "tree"])
    @pytest.mark.parametrize("crash_at", [1, 3])
    def test_single_rank_recovers_bit_identically(
        self, baselines, lane, crash_at
    ):
        cfg = crashing(base_config(1, lane), rank=0, at=crash_at)
        obs_rt.reset()
        recovered = Session.run(
            cfg,
            job,
            restart_policy=RestartPolicy(
                max_restarts=2, backoff_s=0.01, checkpoint_every=1
            ),
        )
        assert counter("repro.recovery.restarts") >= 1
        assert_matches(recovered, baselines[(lane, 1)])

    def test_replayed_batches_are_skipped_not_reingested(self, baselines):
        # A crash near the tail restores almost the whole stream from
        # the checkpoint; the replay must meter the skipped batches.
        cfg = crashing(base_config(4, "gather"), rank=1, at=19)
        obs_rt.reset()
        recovered = Session.run(
            cfg,
            job,
            restart_policy=RestartPolicy(
                max_restarts=2, backoff_s=0.01, checkpoint_every=1
            ),
        )
        assert counter("repro.recovery.replayed_batches") >= 4
        assert_matches(recovered, baselines[("gather", 4)])

    def test_restart_exhaustion_reraises(self):
        cfg = crashing(base_config(4, "gather"), rank=1, at=7)
        with pytest.raises(ParallelFailure):
            Session.run(
                cfg,
                job,
                restart_policy=RestartPolicy(
                    max_restarts=0, backoff_s=0.01, checkpoint_every=1
                ),
            )

    def test_elastic_shrink_drops_one_rank(self, baselines):
        cfg = crashing(base_config(4, "gather"), rank=1, at=7)
        obs_rt.reset()
        recovered = Session.run(
            cfg,
            job,
            restart_policy=RestartPolicy(
                max_restarts=2,
                backoff_s=0.01,
                checkpoint_every=1,
                shrink=True,
                min_size=2,
            ),
        )
        # The restarted world is one rank smaller.
        assert len(recovered) == 3
        assert counter("repro.recovery.restarts") >= 1
        # Different rank counts reorder the reductions, so exactness
        # relaxes to numerical agreement.
        assert_matches(recovered[:1], baselines[("gather", 4)][:1], tol=1e-8)

    def test_checkpoint_path_is_reused(self, tmp_path, baselines):
        ckpt_dir = tmp_path / "recovery-state"
        cfg = crashing(base_config(4, "gather"), rank=1, at=7)
        obs_rt.reset()
        recovered = Session.run(
            cfg,
            job,
            restart_policy=RestartPolicy(
                max_restarts=2,
                backoff_s=0.01,
                checkpoint_every=1,
                checkpoint_path=str(ckpt_dir),
            ),
        )
        assert (ckpt_dir / "recovery.npz").exists()
        assert_matches(recovered, baselines[("gather", 4)])

    def test_restart_policy_type_checked(self):
        with pytest.raises(ConfigurationError, match="RestartPolicy"):
            Session.run(base_config(1), job, restart_policy=object())

    def test_no_policy_crash_propagates(self):
        cfg = crashing(base_config(4, "gather"), rank=1, at=7)
        with pytest.raises(ParallelFailure):
            Session.run(cfg, job)


class TestReplaySkip:
    def test_resume_skips_seen_prefix(self, tmp_path):
        ckpt = tmp_path / "mid"
        cfg = base_config(1)
        clean = Session.run(cfg, job)

        with Session(cfg) as session:
            session.fit_stream(DATA[:, :12])
            session.save_checkpoint(ckpt, gathered=True)

        obs_rt.reset()
        obs_rt.install(metrics=True)
        try:
            with Session.resume(ckpt, config=cfg) as session:
                assert session.driver.n_seen == 12
                # Replaying the FULL stream skips the first three
                # batches and ingests only the remainder.
                result = session.fit_stream(DATA, replay=True).result()
            assert counter("repro.recovery.replayed_batches") == 3
        finally:
            obs_rt.uninstall()
        np.testing.assert_array_equal(result.singular_values, clean[0][0])
        np.testing.assert_array_equal(result.modes, clean[0][1])


class TestCloseAbortsPrefetch:
    def prefetch_config(self) -> RunConfig:
        return RunConfig(
            solver=SolverConfig(K=8, ff=0.95),
            backend=BackendConfig(name="threads", size=1, timeout=30.0),
            stream=StreamConfig(batch=BATCH, prefetch=2),
        )

    @staticmethod
    def _prefetch_threads():
        return [
            t
            for t in threading.enumerate()
            if t.name == "snapshot-prefetch" and t.is_alive()
        ]

    def test_crash_mid_stream_leaves_no_producer_threads(self):
        class Boom(RuntimeError):
            pass

        def poisoned(index):
            if index < 2:
                return DATA[:, index * 4 : (index + 1) * 4]
            raise Boom("stream died")

        from repro.data.streams import function_stream

        stream = function_stream(poisoned, n_dof=NDOF)
        with pytest.raises(Boom):
            with Session(self.prefetch_config()) as session:
                session.fit_stream(stream)
        deadline = 50
        while self._prefetch_threads() and deadline:
            threading.Event().wait(0.05)
            deadline -= 1
        assert not self._prefetch_threads()

    def test_drop_pending_aborts_producers(self):
        session = Session(self.prefetch_config())
        stream = iter(session._resolve_stream(DATA, True))
        next(stream)  # producer running, depth-2 buffer filling
        assert self._prefetch_threads()
        session.close(drop_pending=True)
        deadline = 50
        while self._prefetch_threads() and deadline:
            threading.Event().wait(0.05)
            deadline -= 1
        assert not self._prefetch_threads()
