"""Live mid-stream rescale: ``ElasticSession.rescale`` re-partitions a
running stream without replay and matches fixed-size runs to 1e-12 with
zero leaked requests; ``RestartPolicy(mode="live")`` recovers a seeded
crash by in-place shrink (no restart, no replayed batches)."""

import numpy as np
import pytest

from repro.api import (
    BackendConfig,
    FaultConfig,
    FaultSpec,
    HealthConfig,
    ObservabilityConfig,
    RestartPolicy,
    RunConfig,
    Session,
    SolverConfig,
    StreamConfig,
)
from repro.exceptions import ConfigurationError, RescaleError
from repro.faults import runtime as faults_rt
from repro.health import ElasticSession
from repro.obs import runtime as obs_rt
from repro.smpi import provenance
from repro.smpi.exceptions import CommunicatorError

NDOF, NT, BATCH = 64, 24, 4
TOL = 1e-12


def make_data() -> np.ndarray:
    rng = np.random.default_rng(7)
    x = np.linspace(0.0, 1.0, NDOF)
    t = np.linspace(0.0, 1.0, NT)
    basis = np.column_stack([np.sin((i + 1) * np.pi * x) for i in range(5)])
    weights = np.column_stack(
        [np.cos((i + 1) * 2.0 * np.pi * t) / (i + 1.0) for i in range(5)]
    )
    return basis @ weights.T + 0.01 * rng.standard_normal((NDOF, NT))


DATA = make_data()
BATCHES = [DATA[:, j : j + BATCH] for j in range(0, NT, BATCH)]


def base_config(ranks: int) -> RunConfig:
    return RunConfig(
        solver=SolverConfig(K=8, ff=0.95, qr_variant="gather", overlap=True),
        backend=BackendConfig(name="threads", size=ranks, timeout=30.0),
        stream=StreamConfig(batch=BATCH),
    )


def fixed_size_reference(ranks: int):
    def job(session):
        result = session.fit_stream(DATA).result()
        return result.singular_values, result.modes

    return Session.run(base_config(ranks), job)[0]


def assert_matches(result, reference):
    sv, modes = reference
    assert float(np.max(np.abs(result.singular_values - sv))) < TOL
    assert float(np.max(np.abs(np.abs(result.modes) - np.abs(modes)))) < TOL


@pytest.fixture(autouse=True)
def _clean_runtimes():
    yield
    assert faults_rt.state() is None
    assert obs_rt.state() is None


class TestMidStreamRescale:
    @pytest.mark.parametrize("start, new", [(4, 3), (2, 4)])
    def test_rescale_matches_fixed_size_runs_with_zero_leaks(self, start, new):
        """Acceptance: shrink 4->3 and grow 2->4 mid-stream, both within
        1e-12 of the uninterrupted runs at either size, nothing leaked."""
        with provenance.track() as scope:
            with ElasticSession(base_config(start)) as session:
                session.initialize(BATCHES[0])
                for batch in BATCHES[1:3]:
                    session.incorporate_data(batch)
                session.rescale(new)
                assert session.size == new
                assert session.live_rescales == 1
                for batch in BATCHES[3:]:
                    session.incorporate_data(batch)
                result = session.result()
            leaked = scope.pending_requests()
            assert leaked == [], leaked
        assert_matches(result, fixed_size_reference(start))
        assert_matches(result, fixed_size_reference(new))

    def test_rescale_between_fit_stream_calls(self):
        with ElasticSession(base_config(4)) as session:
            session.fit_stream(DATA[:, : NT // 2])
            session.rescale(3)
            session.fit_stream(DATA[:, NT // 2 :])
            result = session.result()
        assert_matches(result, fixed_size_reference(4))

    def test_rescale_to_same_size_is_a_noop(self):
        with ElasticSession(base_config(2)) as session:
            session.initialize(BATCHES[0])
            session.rescale(2)
            assert session.live_rescales == 0

    def test_rescale_before_any_data(self):
        with ElasticSession(base_config(2)) as session:
            session.rescale(3)
            assert session.size == 3
            session.fit_stream(DATA)
            result = session.result()
        assert_matches(result, fixed_size_reference(3))

    def test_elastic_session_equals_plain_session_without_rescale(self):
        with ElasticSession(base_config(4)) as session:
            session.fit_stream(DATA)
            result = session.result()
        sv, modes = fixed_size_reference(4)
        assert np.array_equal(result.singular_values, sv)
        assert float(np.max(np.abs(np.abs(result.modes) - np.abs(modes)))) == 0.0

    def test_rescale_is_metered(self):
        cfg = base_config(2).replace(obs=ObservabilityConfig(metrics=True))
        with ElasticSession(cfg) as session:
            session.initialize(BATCHES[0])
            session.rescale(3)
            counters = obs_rt.default_registry().snapshot()["counters"]
            assert counters["repro.recovery.live_rescales"]["value"] == 1


class TestLiveRecovery:
    def crashing(self, ranks, rank, at):
        return base_config(ranks).replace(
            faults=FaultConfig(
                enabled=True,
                seed=0,
                schedule=(FaultSpec(kind="crash", rank=rank, op="*", at=at),),
            ),
            health=HealthConfig(
                enabled=True, heartbeat_interval=0.01, suspect_after=0.1
            ),
            obs=ObservabilityConfig(metrics=True),
        )

    def test_seeded_crash_recovers_by_in_place_shrink(self):
        """Acceptance: mode='live' turns a dead rank into a shrink —
        zero replayed batches, >= 1 live rescale, same 1e-12 answer."""
        cfg = self.crashing(4, rank=2, at=7)

        def job(session):
            result = session.fit_stream(DATA).result()
            return result.singular_values, result.modes

        obs_rt.reset()
        results = Session.run(
            cfg,
            job,
            restart_policy=RestartPolicy(
                mode="live", max_restarts=3, checkpoint_every=1, min_size=2
            ),
        )
        counters = obs_rt.default_registry().snapshot()["counters"]

        def count(name):
            meter = counters.get(name)
            return int(meter["value"]) if meter else 0

        assert count("repro.faults.injected.crash") == 1
        assert count("repro.recovery.live_rescales") >= 1
        assert count("repro.recovery.replayed_batches") == 0
        assert count("repro.recovery.restarts") == 0
        assert len(results) == 3  # the world shrank in place
        sv_ref, modes_ref = fixed_size_reference(4)
        for sv, modes in results:
            assert float(np.max(np.abs(sv - sv_ref))) < TOL
            assert (
                float(np.max(np.abs(np.abs(modes) - np.abs(modes_ref)))) < TOL
            )

    def test_exhausted_live_recovery_reraises(self):
        cfg = self.crashing(2, rank=1, at=5)

        def job(session):
            session.fit_stream(DATA)
            return session.result().singular_values

        with pytest.raises(CommunicatorError):
            Session.run(
                cfg,
                job,
                restart_policy=RestartPolicy(mode="live", max_restarts=0),
            )

    def test_restart_mode_still_the_default(self):
        assert RestartPolicy().mode == "restart"
        with pytest.raises(ConfigurationError):
            RestartPolicy(mode="bogus")


class TestValidation:
    def test_elastic_session_requires_threads_backend(self):
        with pytest.raises(ConfigurationError, match="threads"):
            ElasticSession(
                RunConfig(backend=BackendConfig(name="self", size=1))
            )

    def test_rescale_rejects_bad_sizes(self):
        with ElasticSession(base_config(2)) as session:
            with pytest.raises(RescaleError):
                session.rescale(0)
            with pytest.raises(RescaleError):
                session.rescale("three")

    def test_plain_session_cannot_rescale(self):
        cfg = RunConfig(backend=BackendConfig(name="self", size=1))
        with Session(cfg) as session:
            with pytest.raises(RescaleError, match="fixed-size"):
                session.rescale(2)
