"""The `repro.api` facade: Session lifecycle, typed-config plumbing,
resume across backends/rank counts, and the locked public surface."""

import warnings

import numpy as np
import pytest

import repro
import repro.api
from repro import ParSVDParallel, ParSVDSerial
from repro.api import (
    BackendConfig,
    RunConfig,
    Session,
    SessionResult,
    SolverConfig,
    StreamConfig,
    checkpoint_run_config,
    load_run_config,
)
from repro.core.checkpoint import read_checkpoint
from repro.data.streams import array_stream, function_stream
from repro.exceptions import ConfigurationError, DataFormatError
from repro.smpi import run_spmd


@pytest.fixture
def data(rng):
    m, n, r = 120, 40, 8
    left = rng.standard_normal((m, r))
    right = rng.standard_normal((r, n))
    return (left * (0.6 ** np.arange(r))) @ right


def serial_reference(data, K=4, ff=1.0, batch=10):
    svd = ParSVDSerial(K=K, ff=ff)
    svd.initialize(data[:, :batch])
    for start in range(batch, data.shape[1], batch):
        svd.incorporate_data(data[:, start : start + batch])
    return svd


class TestApiSurface:
    def test_all_is_locked(self):
        """The public api surface is a contract: additions/removals must
        update this snapshot deliberately."""
        assert repro.api.__all__ == [
            "BackendConfig",
            "FaultConfig",
            "FaultSpec",
            "HealthConfig",
            "ObservabilityConfig",
            "RestartPolicy",
            "RunConfig",
            "ServingConfig",
            "Session",
            "SessionResult",
            "SolverConfig",
            "StreamConfig",
            "TenantSpec",
            "checkpoint_run_config",
            "load_run_config",
        ]

    def test_all_names_resolve(self):
        for name in repro.api.__all__:
            assert hasattr(repro.api, name), name

    def test_reexported_from_package_root(self):
        assert repro.Session is Session
        assert repro.RunConfig is RunConfig
        assert repro.SolverConfig is SolverConfig
        assert repro.BackendConfig is BackendConfig
        assert repro.StreamConfig is StreamConfig
        assert repro.SessionResult is SessionResult


class TestSessionBasics:
    def test_self_backend_matches_serial(self, data):
        cfg = RunConfig(
            solver=SolverConfig(K=4, ff=1.0),
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
        )
        with Session(cfg) as session:
            res = session.fit_stream(data).result()
        ref = serial_reference(data)
        assert isinstance(res, SessionResult)
        assert res.n_seen == data.shape[1]
        assert np.allclose(res.singular_values, ref.singular_values, rtol=1e-10)

    def test_section_shortcuts_override_config(self):
        session = Session(
            RunConfig(solver=SolverConfig(K=9)),
            solver=SolverConfig(K=3),
        )
        assert session.config.solver.K == 3

    def test_threads_run_matches_serial(self, data):
        cfg = RunConfig(
            solver=SolverConfig(K=4, ff=1.0),
            backend=BackendConfig(name="threads", size=3),
            stream=StreamConfig(batch=10),
        )

        def job(session):
            res = session.fit_stream(data).result()
            return np.array(res.modes), np.array(res.singular_values)

        results = Session.run(cfg, job)
        ref = serial_reference(data)
        for modes, values in results:
            assert np.allclose(values, ref.singular_values, rtol=1e-8)
            assert modes.shape == (data.shape[0], 4)

    def test_fit_stream_accepts_snapshot_stream(self, data):
        with Session(
            solver=SolverConfig(K=3, ff=1.0), stream=StreamConfig(batch=10)
        ) as session:
            res = session.fit_stream(array_stream(data, 10)).result()
        assert res.modes.shape == (data.shape[0], 3)

    def test_fit_stream_from_configured_source(self, data, tmp_path):
        from repro.data.io import write_snapshot_dataset

        path = tmp_path / "snaps.npz"
        write_snapshot_dataset(path, data)
        cfg = RunConfig(
            solver=SolverConfig(K=3, ff=1.0),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(source=str(path), batch=10, prefetch=2),
        )

        def job(session):
            return np.array(session.fit_stream().result().singular_values)

        values = Session.run(cfg, job)[0]
        ref = serial_reference(data, K=3)
        assert np.allclose(values, ref.singular_values, rtol=1e-8)

    def test_overlap_lane_same_numbers(self, data):
        def job(session):
            res = session.fit_stream(data).result()
            return np.array(res.modes), np.array(res.singular_values)

        base = RunConfig(
            solver=SolverConfig(K=4, ff=0.95),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=10),
        )
        plain = Session.run(base, job)[0]
        pipelined = Session.run(
            base.replace(
                solver=base.solver.replace(overlap=True),
                stream=base.stream.replace(prefetch=2),
            ),
            job,
        )[0]
        assert np.max(np.abs(plain[0] - pipelined[0])) <= 1e-12
        assert np.max(np.abs(plain[1] - pipelined[1])) <= 1e-12

    def test_manual_stepping(self, data):
        with Session(solver=SolverConfig(K=3, ff=1.0)) as session:
            session.initialize(data[:, :20]).incorporate_data(data[:, 20:])
            assert session.driver.iteration == 2
            assert session.singular_values.shape == (3,)
            assert session.local_modes.shape == (data.shape[0], 3)


class TestSessionErrors:
    def test_multi_rank_threads_needs_run(self):
        with pytest.raises(ConfigurationError, match="Session.run"):
            Session(backend=BackendConfig(name="threads", size=4))

    def test_untyped_config_rejected(self):
        with pytest.raises(ConfigurationError, match="RunConfig"):
            Session({"solver": {"K": 3}})

    def test_closed_session_rejects_use(self, data):
        session = Session(stream=StreamConfig(batch=10))
        session.close()
        with pytest.raises(ConfigurationError, match="closed"):
            session.fit_stream(data)
        session.close()  # idempotent

    def test_result_before_fit(self):
        with pytest.raises(ConfigurationError, match="fit_stream"):
            Session().result()

    def test_fit_stream_needs_source(self):
        with pytest.raises(ConfigurationError, match="source"):
            Session().fit_stream()

    def test_matrix_needs_batch(self, data):
        with pytest.raises(ConfigurationError, match="batch"):
            Session().fit_stream(data)

    def test_empty_stream_rejected(self):
        empty = function_stream(lambda i: None, n_dof=10)
        with pytest.raises(ConfigurationError, match="empty"):
            Session(stream=StreamConfig(batch=5)).fit_stream(empty)

    def test_partition_needs_known_n_dof(self, data):
        cfg = RunConfig(
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=10),
        )
        unsized = function_stream(lambda i: data[:, :10] if i < 2 else None)

        def job(session):
            session.fit_stream(unsized)

        from repro.smpi import ParallelFailure

        with pytest.raises(ParallelFailure):
            Session.run(cfg, job)

    def test_run_without_config_or_resume(self):
        with pytest.raises(ConfigurationError, match="RunConfig"):
            Session.run(None, lambda session: None)

    def test_run_rejects_untyped_config(self):
        with pytest.raises(ConfigurationError, match="RunConfig"):
            Session.run({"solver": {"K": 3}}, lambda session: None)


class TestDeprecationShim:
    def test_legacy_kwargs_warn_with_replacement_snippet(self):
        comm = repro.create_communicator("self")
        with pytest.warns(DeprecationWarning) as caught:
            svd = ParSVDParallel(comm, K=5, ff=0.9, qr_variant="tree")
        message = str(caught[0].message)
        assert "SolverConfig(K=5, ff=0.9, qr_variant='tree')" in message
        assert "Session" in message
        assert svd.solver == SolverConfig(K=5, ff=0.9, qr_variant="tree")

    def test_legacy_config_kwarg_warns(self):
        from repro.config import SVDConfig

        with pytest.warns(DeprecationWarning, match="from_svd_config"):
            svd = ParSVDParallel(
                repro.create_communicator("self"), config=SVDConfig(K=3)
            )
        assert svd.K == 3

    def test_solver_path_is_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            svd = ParSVDParallel(
                repro.create_communicator("self"),
                solver=SolverConfig(K=5, gather="none"),
            )
            ParSVDParallel(repro.create_communicator("self"))
        assert svd.solver.gather == "none"

    def test_explicit_none_still_means_default(self):
        """K=None/ff=None were the legacy signature's own defaults ('use
        the config value'); they must neither override nor warn."""
        from repro.config import SVDConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            svd = ParSVDParallel(
                repro.create_communicator("self"), K=None, ff=None
            )
        assert svd.K == SVDConfig().K
        with pytest.warns(DeprecationWarning):
            # config= still warns, but K=None does not clobber its K
            svd = ParSVDParallel(
                repro.create_communicator("self"),
                K=None,
                config=SVDConfig(K=7),
            )
        assert svd.K == 7

    def test_solver_and_legacy_kwargs_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ParSVDParallel(
                repro.create_communicator("self"),
                K=3,
                solver=SolverConfig(),
            )

    def test_legacy_behaviour_unchanged(self, data):
        """The shim builds the same config the kwargs used to."""
        with pytest.warns(DeprecationWarning):
            legacy = ParSVDParallel(
                repro.create_communicator("self"), K=4, ff=1.0, r1=20
            )
        clean = ParSVDParallel(
            repro.create_communicator("self"),
            solver=SolverConfig(K=4, ff=1.0, r1=20),
        )
        for svd in (legacy, clean):
            svd.initialize(data[:, :10])
            svd.incorporate_data(data[:, 10:])
        assert np.array_equal(legacy.singular_values, clean.singular_values)
        assert np.array_equal(legacy.modes, clean.modes)


class TestCheckpointEmbedding:
    def test_session_checkpoint_embeds_run_config(self, data, tmp_path):
        cfg = RunConfig(
            solver=SolverConfig(K=3, ff=0.95, overlap=True),
            backend=BackendConfig(name="threads", size=2, timeout=90.0),
            stream=StreamConfig(batch=10, prefetch=1),
        )
        base = tmp_path / "state"

        def job(session):
            session.fit_stream(data)
            return session.save_checkpoint(base, gathered=True)

        path = Session.run(cfg, job)[0]
        state = read_checkpoint(path)
        assert state["run_config"] == cfg
        assert checkpoint_run_config(base) == cfg

    def test_legacy_checkpoint_reconstructs_config(self, data, tmp_path):
        base = tmp_path / "legacy"

        def job(comm):
            m = data.shape[0]
            rows = slice(
                comm.rank * (m // comm.size), (comm.rank + 1) * (m // comm.size)
            )
            with pytest.warns(DeprecationWarning):
                svd = ParSVDParallel(comm, K=3, ff=1.0, qr_variant="tree")
            svd.initialize(data[rows, :20])
            return svd.save_checkpoint(base, gathered=True)

        run_spmd(2, job)
        cfg = checkpoint_run_config(base)
        assert cfg.solver.K == 3
        assert cfg.solver.qr_variant == "tree"
        assert cfg.backend.size == 2
        state = read_checkpoint(tmp_path / "legacy.npz")
        assert state["run_config"] is None  # reconstructed, not embedded

    def test_checkpoint_run_config_missing(self, tmp_path):
        with pytest.raises(DataFormatError, match="no readable checkpoint"):
            checkpoint_run_config(tmp_path / "nothing")

    def test_config_only_read_skips_arrays(self, data, tmp_path):
        base = tmp_path / "light"
        with Session(
            solver=SolverConfig(K=3, ff=1.0),
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
        ) as session:
            session.fit_stream(data)
            session.save_checkpoint(base, gathered=True)
        state = read_checkpoint(tmp_path / "light.npz", load_arrays=False)
        assert state["modes"] is None
        assert state["singular_values"] is None
        assert state["run_config"].solver.K == 3

    def test_unparseable_embedded_config_degrades_with_warning(
        self, data, tmp_path
    ):
        """Forward compatibility: a checkpoint whose embedded RunConfig a
        build cannot parse must stay restorable from its flat fields."""
        import numpy as np

        base = tmp_path / "future"
        with Session(
            solver=SolverConfig(K=3, ff=1.0),
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
        ) as session:
            session.fit_stream(data)
            path = session.save_checkpoint(base, gathered=True)
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["run_config_json"] = np.asarray(
            '{"solver": {"from_the_future": 1}}'
        )
        np.savez(path, **payload)
        with pytest.warns(UserWarning, match="ignoring embedded run config"):
            cfg = checkpoint_run_config(base)
        assert cfg.solver.K == 3  # reconstructed from the flat fields

    def test_load_run_config_errors_are_specific(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"solver": {"K": -1}}')
        with pytest.raises(ConfigurationError, match="K must be positive"):
            load_run_config(bad)


class TestResume:
    """Session.resume restores solver + backend settings at any rank
    count — including from checkpoints written by the legacy driver API."""

    def _legacy_phase1(self, data, base, qr_variant, save_ranks=2):
        """First half of the stream through the *legacy* constructor, saved
        as a gathered (any-rank) checkpoint without an embedded config."""

        def job(comm):
            m = data.shape[0]
            from repro.utils.partition import block_partition

            part = block_partition(m, comm.size)
            block = data[part.slice_of(comm.rank), :]
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                svd = ParSVDParallel(
                    comm, K=4, ff=1.0, r1=20, qr_variant=qr_variant
                )
            svd.initialize(block[:, :10])
            svd.incorporate_data(block[:, 10:20])
            return svd.save_checkpoint(base, gathered=True)

        return run_spmd(save_ranks, job)[0]

    @pytest.mark.parametrize("resume_ranks", [1, 4])
    @pytest.mark.parametrize("qr_variant", ["gather", "tree"])
    def test_resume_matrix_threads(
        self, data, tmp_path, resume_ranks, qr_variant
    ):
        base = tmp_path / f"{qr_variant}-{resume_ranks}"
        self._legacy_phase1(data, base, qr_variant)

        resume_backend = BackendConfig(name="threads", size=resume_ranks)

        def phase2(session):
            # solver settings came from the checkpoint, not the caller
            assert session.config.solver.qr_variant == qr_variant
            assert session.config.solver.K == 4
            session.fit_stream(data[:, 20:])
            res = session.result()
            return np.array(res.modes), np.array(res.singular_values)

        cfg = checkpoint_run_config(base).replace(
            backend=resume_backend, stream=StreamConfig(batch=10)
        )
        modes_r, values_r = Session.run(cfg, phase2, resume=base)[0]

        def straight(session):
            session.fit_stream(data)
            res = session.result()
            return np.array(res.modes), np.array(res.singular_values)

        modes_s, values_s = Session.run(cfg, straight)[0]

        # A different rank count re-partitions rows, which reorders the
        # floating-point sums and can flip canonical mode signs (existing
        # gathered-restart contract: 1e-10 up to sign); the same-rank
        # bit-identical case is asserted separately below.
        from repro.utils.linalg import align_signs

        assert np.max(np.abs(values_r - values_s)) <= 1e-10 * np.max(values_s)
        assert np.max(np.abs(align_signs(modes_s, modes_r) - modes_s)) <= 1e-10

    def test_resume_same_ranks_bit_identical(self, data, tmp_path):
        """The acceptance criterion: a legacy-written checkpoint resumed
        through the Session reproduces the uninterrupted legacy run to
        1e-12."""
        base = tmp_path / "exact"
        self._legacy_phase1(data, base, "gather", save_ranks=2)

        cfg = checkpoint_run_config(base).replace(stream=StreamConfig(batch=10))

        def phase2(session):
            session.fit_stream(data[:, 20:])
            res = session.result()
            return np.array(res.modes), np.array(res.singular_values)

        modes_r, values_r = Session.run(cfg, phase2, resume=base)[0]

        def legacy_straight(comm):
            from repro.utils.partition import block_partition

            part = block_partition(data.shape[0], comm.size)
            block = data[part.slice_of(comm.rank), :]
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                svd = ParSVDParallel(comm, K=4, ff=1.0, r1=20)
            for start in range(0, data.shape[1], 10):
                batch = block[:, start : start + 10]
                if start == 0:
                    svd.initialize(batch)
                else:
                    svd.incorporate_data(batch)
            return np.array(svd.modes), np.array(svd.singular_values)

        modes_s, values_s = run_spmd(2, legacy_straight)[0]
        assert np.max(np.abs(values_r - values_s)) <= 1e-12 * np.max(values_s)
        assert np.max(np.abs(modes_r - modes_s)) <= 1e-12

    def test_resume_single_session_self_backend(self, data, tmp_path):
        base = tmp_path / "single"
        with Session(
            solver=SolverConfig(K=3, ff=1.0),
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
        ) as session:
            session.fit_stream(data[:, :20])
            session.save_checkpoint(base, gathered=True)

        with Session.resume(base) as resumed:
            assert resumed.config.backend.name == "self"
            assert resumed.driver.n_seen == 20
            resumed.fit_stream(data[:, 20:])
            values = np.array(resumed.result().singular_values)

        ref = serial_reference(data, K=3)
        assert np.allclose(values, ref.singular_values, rtol=1e-10)

    def test_resume_per_rank_shards_roundtrip(self, data, tmp_path):
        """Non-gathered (per-rank) session checkpoints resume at the same
        rank count with the embedded config."""
        cfg = RunConfig(
            solver=SolverConfig(K=3, ff=1.0, gather="root"),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=10),
        )
        base = tmp_path / "shards"

        def phase1(session):
            session.fit_stream(data[:, :20])
            return session.save_checkpoint(base)

        Session.run(cfg, phase1)

        def phase2(session):
            assert session.config == cfg
            assert session.config.solver.gather == "root"
            session.fit_stream(data[:, 20:])
            return np.array(session.singular_values)

        # config=None: everything (backend included) comes from the file
        values = Session.run(None, phase2, resume=base)[0]

        def straight(session):
            session.fit_stream(data)
            return np.array(session.singular_values)

        values_s = Session.run(cfg, straight)[0]
        assert np.max(np.abs(values - values_s)) <= 1e-12 * np.max(values_s)


class TestServingThroughSession:
    def test_export_and_query_engine(self, data, tmp_path):
        from repro.serving import ModeBaseStore

        store = ModeBaseStore(tmp_path / "bases")
        cfg = RunConfig(
            solver=SolverConfig(K=3, ff=1.0),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=10),
        )

        def publish(session):
            session.fit_stream(data)
            return session.export_to_store(store, "test-basis")

        versions = Session.run(cfg, publish)
        assert versions == [1, 1]

        query = data[:, :3]

        def serve(session):
            engine = session.query_engine(store, flush_threshold=1)
            return engine.project("test-basis", query)

        coeffs = Session.run(cfg, serve)[0]
        base = store.get("test-basis")
        assert np.allclose(coeffs, base.modes.T @ query, atol=1e-10)


class TestBackendKnobPlumbing:
    def test_irecv_buffer_bytes_accepted_by_every_in_process_backend(self):
        """The knob rides BackendConfig into create_communicator on any
        backend; in-process backends probe sizes exactly and ignore it."""
        for name in ("threads", "self"):
            with Session(
                backend=BackendConfig(name=name, size=1, irecv_buffer_bytes=4096)
            ) as session:
                assert session.comm.size == 1
