"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator; tests that need different draws reseed."""
    return np.random.default_rng(12345)


@pytest.fixture
def tall_matrix(rng: np.random.Generator) -> np.ndarray:
    """A generic tall-skinny full-rank matrix (120 x 30)."""
    return rng.standard_normal((120, 30))


@pytest.fixture
def decaying_matrix(rng: np.random.Generator) -> np.ndarray:
    """A tall matrix with exponentially decaying spectrum (200 x 40).

    Built as ``U diag(0.5^j) V^T`` plus tiny noise so truncated SVDs are
    well-conditioned and truncation errors are predictable.
    """
    m, n, r = 200, 40, 20
    u, _ = np.linalg.qr(rng.standard_normal((m, r)))
    v, _ = np.linalg.qr(rng.standard_normal((n, r)))
    s = 0.5 ** np.arange(r)
    return (u * s) @ v.T + 1e-12 * rng.standard_normal((m, n))
