"""Integration: the Figure-2 workflow — parallel IO + streaming SVD +
coherent-structure extraction on the ERA5-like field."""

import numpy as np
import pytest

from repro import ParSVDParallel
from repro.analysis.coherent import extract_coherent_structures
from repro.data.era5_like import Era5LikeField
from repro.data.io import SnapshotDataset, write_snapshot_dataset
from repro.smpi import run_spmd
from repro.utils.partition import block_partition


@pytest.fixture(scope="module")
def field():
    return Era5LikeField(nlat=16, nlon=32, nt=160, noise_amp=0.3, seed=2)


@pytest.fixture(scope="module")
def dataset_path(field, tmp_path_factory):
    """Anomaly record written to the snapshot container (the 'NetCDF')."""
    path = tmp_path_factory.mktemp("era5") / "pressure.rsnap"
    write_snapshot_dataset(
        path,
        field.anomaly_snapshots(),
        meta={"field": "surface_pressure_anomaly", "cadence_hours": 6.0},
    )
    return path


class TestParallelIoPipeline:
    def test_end_to_end_structure_recovery(self, field, dataset_path):
        """Each rank reads its own rows from disk, the parallel streaming
        SVD runs, and the leading modes match the planted structures."""
        batch = 40

        def job(comm):
            dataset = SnapshotDataset.open(dataset_path)
            block = dataset.read_rows_for_rank(comm.rank, comm.size)
            svd = ParSVDParallel(comm, K=4, ff=1.0, r1=50)
            svd.initialize(block[:, :batch])
            for start in range(batch, dataset.n_snapshots, batch):
                svd.incorporate_data(block[:, start : start + batch])
            return svd.modes, svd.singular_values

        results = run_spmd(4, job)
        modes, values = results[0]

        cos_map, sin_map = field.wave_patterns()[0]
        truth = {
            "seasonal": field.seasonal_pattern().ravel(),
            "wave": np.column_stack([cos_map.ravel(), sin_map.ravel()]),
        }
        report = extract_coherent_structures(
            modes, values, ground_truth=truth, n_modes=3
        )
        assert report.dominant_structure(0)[0] == "seasonal"
        assert report.dominant_structure(0)[1] > 0.9
        assert report.dominant_structure(1)[0] == "wave"
        assert report.dominant_structure(1)[1] > 0.9

    def test_metadata_travels_with_data(self, dataset_path):
        dataset = SnapshotDataset.open(dataset_path)
        assert dataset.meta["field"] == "surface_pressure_anomaly"
        assert dataset.meta["cadence_hours"] == 6.0

    def test_parallel_read_equals_serial_read(self, field, dataset_path):
        dataset = SnapshotDataset.open(dataset_path)
        full = dataset.read()
        part = block_partition(dataset.n_dof, 3)
        blocks = [dataset.read_rows_for_rank(r, 3) for r in range(3)]
        assert np.array_equal(np.concatenate(blocks, axis=0), full)
        assert blocks[1].shape[0] == part.counts[1]

    def test_streaming_vs_oneshot_on_era5(self, field):
        """ff=1 streaming over batches ~= one-shot SVD of the whole record
        for the energetic leading modes."""
        anomalies = field.anomaly_snapshots()
        u, s, _ = np.linalg.svd(anomalies, full_matrices=False)

        from repro import ParSVDSerial

        svd = ParSVDSerial(K=4, ff=1.0)
        svd.initialize(anomalies[:, :40])
        for start in range(40, anomalies.shape[1], 40):
            svd.incorporate_data(anomalies[:, start : start + 40])

        rel = np.abs(svd.singular_values[:3] - s[:3]) / s[:3]
        assert np.max(rel) < 5e-2
        # leading mode subspace agrees
        dot = abs(svd.modes[:, 0] @ u[:, 0])
        assert dot > 0.99
