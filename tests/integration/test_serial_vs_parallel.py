"""Integration: serial vs parallel equivalence on the paper's Burgers case.

This is the test-suite version of Figure 1(a)/(b): the parallel+randomized
deployment must agree with the serial evaluation on the leading modes.
"""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial, compare_modes
from repro.data.burgers import BurgersProblem
from repro.smpi import run_spmd
from repro.utils.partition import block_partition

# scaled-down paper setup (nx=16384, nt=800 in the paper)
NX, NT, K, BATCH = 1024, 200, 10, 50


@pytest.fixture(scope="module")
def burgers_data():
    return BurgersProblem(nx=NX, nt=NT).snapshot_matrix()


@pytest.fixture(scope="module")
def serial_result(burgers_data):
    svd = ParSVDSerial(K=K, ff=0.95)
    svd.initialize(burgers_data[:, :BATCH])
    for start in range(BATCH, NT, BATCH):
        svd.incorporate_data(burgers_data[:, start : start + BATCH])
    return svd


def _parallel_modes(data, nranks, **kwargs):
    def job(comm):
        part = block_partition(data.shape[0], comm.size)
        block = data[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(comm, K=K, ff=0.95, **kwargs)
        svd.initialize(block[:, :BATCH])
        for start in range(BATCH, NT, BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        return svd.modes, svd.singular_values

    results = run_spmd(nranks, job)
    return results[0]


class TestFigure1Equivalence:
    def test_four_ranks_deterministic(self, burgers_data, serial_result):
        """4 ranks (the paper's validation setup), dense inner SVDs."""
        modes, values = _parallel_modes(burgers_data, 4, r1=50)
        comparison = compare_modes(
            serial_result.modes,
            serial_result.singular_values,
            modes,
            values,
            n_modes=2,  # the two modes the paper plots
        )
        assert comparison.worst_mode_error < 1e-4
        assert comparison.worst_spectrum_error < 1e-6

    def test_four_ranks_randomized(self, burgers_data, serial_result):
        """4 ranks with randomization on (the paper's actual deployment)."""
        modes, values = _parallel_modes(
            burgers_data, 4, r1=50,
            low_rank=True, oversampling=10, power_iters=2, seed=0,
        )
        comparison = compare_modes(
            serial_result.modes,
            serial_result.singular_values,
            modes,
            values,
            n_modes=2,
        )
        assert comparison.worst_mode_error < 1e-3
        assert comparison.worst_spectrum_error < 1e-4

    @pytest.mark.parametrize("nranks", [2, 3])
    def test_rank_count_invariance(self, burgers_data, nranks):
        """The parallel result must not depend on the rank count."""
        ref_modes, ref_values = _parallel_modes(burgers_data, 1, r1=50)
        modes, values = _parallel_modes(burgers_data, nranks, r1=50)
        comparison = compare_modes(
            ref_modes, ref_values, modes, values, n_modes=3
        )
        assert comparison.worst_mode_error < 1e-5
        assert comparison.worst_spectrum_error < 1e-7

    def test_singular_values_capture_burgers_energy(self, serial_result):
        values = serial_result.singular_values
        # spectrum decays: mode 1 carries much more than mode 10
        assert values[0] / values[-1] > 10
