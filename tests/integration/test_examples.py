"""Every shipped example must run clean end to end.

The examples are deliverables (they demonstrate the public API on the
paper's scenarios); this guard runs each as a real subprocess — the same
way a user would — and checks the exit status plus a distinctive line of
expected output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

#: script name -> substring its stdout must contain
EXPECTED = {
    "quickstart.py": "results saved to",
    "burgers_modes.py": "serial vs parallel(4 ranks, randomized)",
    "era5_coherent_structures.py": "coherent structures found:",
    "weak_scaling_study.py": "efficiency at 1 node",
    "online_insitu_svd.py": "tracks current regime",
    "dmd_analysis.py": "recovered frequencies",
    "checkpoint_restart.py": "bit-faithful",
    "spectral_analysis.py": "alignment with planted wave pair",
    "serving_queries.py": "queries served from sharded basis",
    "http_serving.py": "HTTP answers match in-process engine",
    "pipelined_streaming.py": "pipelined result matches blocking",
}


def test_every_example_is_covered():
    """Adding an example without updating this guard is an error."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED), (
        f"examples on disk {sorted(on_disk)} != guarded {sorted(EXPECTED)}"
    )


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert EXPECTED[script] in result.stdout
