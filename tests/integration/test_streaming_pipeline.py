"""Integration: streaming abstractions driving the SVD classes."""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.data.burgers import BurgersProblem
from repro.data.io import SnapshotDataset, write_snapshot_dataset
from repro.data.streams import array_stream, dataset_stream, function_stream
from repro.smpi import run_spmd
from repro.utils.partition import block_partition


@pytest.fixture(scope="module")
def burgers():
    return BurgersProblem(nx=256, nt=80)


class TestStreamDrivers:
    def test_array_stream_drives_serial(self, burgers):
        data = burgers.snapshot_matrix()
        svd = ParSVDSerial(K=5, ff=1.0).fit_stream(array_stream(data, 20))
        u, s, _ = np.linalg.svd(data, full_matrices=False)
        # Burgers has rank >> K, so streaming carries a small
        # truncation error on even the leading value
        assert np.allclose(svd.singular_values[0], s[0], rtol=1e-4)

    def test_dataset_stream_drives_serial(self, burgers, tmp_path):
        data = burgers.snapshot_matrix()
        path = write_snapshot_dataset(tmp_path / "b.rsnap", data)
        stream = dataset_stream(SnapshotDataset.open(path), 25)
        svd = ParSVDSerial(K=4, ff=1.0).fit_stream(stream)
        assert svd.n_seen == 80
        assert svd.iteration == 4  # ceil(80/25)

    def test_function_stream_in_situ_pattern(self, burgers):
        """The in-situ pattern: batches produced on demand by a 'simulation'."""
        times = burgers.times
        batch = 16

        def produce(index):
            start = index * batch
            if start >= len(times):
                return None
            chunk = times[start : start + batch]
            out = np.empty((burgers.nx, len(chunk)))
            for j, t in enumerate(chunk):
                out[:, j] = burgers.solution(float(t))
            return out

        svd = ParSVDSerial(K=4, ff=0.95).fit_stream(function_stream(produce))
        assert svd.n_seen == 80
        assert svd.modes.shape == (256, 4)

    def test_restricted_stream_drives_parallel_ranks(self, burgers):
        """Each rank consumes the same global stream restricted to its rows
        and all ranks converge to one global answer."""
        data = burgers.snapshot_matrix()

        def job(comm):
            part = block_partition(data.shape[0], comm.size)
            stream = array_stream(data, 20).restrict_rows(
                part.slice_of(comm.rank)
            )
            svd = ParSVDParallel(comm, K=4, ff=1.0)
            return svd.fit_stream(stream).singular_values

        results = run_spmd(3, job)
        u, s, _ = np.linalg.svd(data, full_matrices=False)
        for values in results:
            assert np.allclose(values, results[0])
        assert np.allclose(results[0][0], s[0], rtol=1e-4)

    def test_two_consumers_one_stream(self, burgers):
        """Re-iterable streams can drive several consumers (e.g. a serial
        reference and a candidate) with identical data."""
        data = burgers.snapshot_matrix()
        stream = array_stream(data, 40)
        a = ParSVDSerial(K=3, ff=1.0).fit_stream(stream)
        b = ParSVDSerial(K=3, ff=1.0).fit_stream(stream)
        assert np.array_equal(a.singular_values, b.singular_values)
        assert np.array_equal(a.modes, b.modes)
