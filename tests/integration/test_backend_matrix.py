"""Cross-backend / cross-policy equivalence matrix.

The communicator protocol promises that the same driver code produces the
same factorization on every backend and under every gather policy /
QR variant.  This matrix pins that promise against the serial reference.
"""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial, run_backend
from repro.core.metrics import compare_modes
from repro.utils.linalg import align_signs
from repro.utils.partition import block_partition

M, N, BATCH, K = 200, 120, 30, 5

#: (backend, nranks) pairs runnable in this process.
BACKENDS_UNDER_TEST = [("threads", 3), ("self", 1)]


@pytest.fixture(scope="module")
def snapshots():
    rng = np.random.default_rng(7)
    u, _ = np.linalg.qr(rng.standard_normal((M, 16)))
    v, _ = np.linalg.qr(rng.standard_normal((N, 16)))
    return (u * 0.6 ** np.arange(16)) @ v.T


@pytest.fixture(scope="module")
def serial_reference(snapshots):
    svd = ParSVDSerial(K=K, ff=1.0)
    svd.initialize(snapshots[:, :BATCH])
    for start in range(BATCH, N, BATCH):
        svd.incorporate_data(snapshots[:, start : start + BATCH])
    return svd


def stream_job(snapshots, gather, qr_variant):
    def job(comm):
        part = block_partition(M, comm.size)
        block = snapshots[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(
            comm, K=K, ff=1.0, r1=40, gather=gather, qr_variant=qr_variant
        )
        svd.initialize(block[:, :BATCH])
        for start in range(BATCH, N, BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        if gather == "none":
            # No global assembly: stack the local blocks for comparison.
            global_modes = comm.gatherv_rows(svd.local_modes, root=0)
            global_modes = comm.bcast(global_modes, root=0)
        else:
            # Collective on every rank; None on non-roots under "root".
            global_modes = svd.assemble_modes()
        return global_modes, svd.singular_values

    return job


@pytest.mark.parametrize("backend,nranks", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("qr_variant", ["gather", "tree"])
@pytest.mark.parametrize("gather", ["bcast", "root", "none"])
def test_matrix_matches_serial(
    snapshots, serial_reference, backend, nranks, gather, qr_variant
):
    results = run_backend(backend, nranks, stream_job(snapshots, gather, qr_variant))
    modes, values = results[0]
    assert modes is not None and modes.shape == (M, K)
    comparison = compare_modes(
        serial_reference.modes,
        serial_reference.singular_values,
        modes,
        values,
        n_modes=3,
    )
    assert comparison.worst_spectrum_error < 1e-8
    assert comparison.worst_mode_error < 1e-6


@pytest.mark.parametrize("backend,nranks", BACKENDS_UNDER_TEST)
def test_checkpoint_restart_roundtrip_lazy(
    snapshots, serial_reference, backend, nranks, tmp_path
):
    """checkpoint -> restart -> continue on each backend under the lazy
    gather path stays on the serial reference trajectory."""
    base = tmp_path / f"matrix-{backend}"

    def phase1(comm):
        part = block_partition(M, comm.size)
        block = snapshots[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(comm, K=K, ff=1.0, r1=40)
        svd.initialize(block[:, :BATCH])
        svd.incorporate_data(block[:, BATCH : 2 * BATCH])
        svd.save_checkpoint(base)

    def phase2(comm):
        part = block_partition(M, comm.size)
        block = snapshots[part.slice_of(comm.rank), :]
        svd = ParSVDParallel.from_checkpoint(comm, base)
        for start in range(2 * BATCH, N, BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        return svd.modes, svd.singular_values, svd.n_seen

    run_backend(backend, nranks, phase1)
    modes, values, n_seen = run_backend(backend, nranks, phase2)[0]

    assert n_seen == N
    ref = serial_reference
    assert np.allclose(values, ref.singular_values, rtol=1e-7)
    aligned = align_signs(ref.modes, modes)
    assert np.max(np.abs(aligned - ref.modes)) < 1e-6
