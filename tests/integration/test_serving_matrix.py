"""Serving equivalence matrix (ISSUE 2 acceptance criterion).

The sharded :class:`QueryEngine` must answer project / reconstruct /
reconstruction-error queries identically (1e-10) to the serial
``analysis/reconstruction.py`` reference, across every registered
in-process communicator backend and shard counts {1, 2, 4} — plus the
end-to-end path: stream with ``ParSVDParallel``, export to a store,
restart from the gathered checkpoint, serve.
"""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial, run_backend
from repro.analysis.reconstruction import (
    project_coefficients,
    reconstruct,
    reconstruction_error_curve,
)
from repro.serving import ModeBaseStore, QueryEngine
from repro.utils.linalg import align_signs
from repro.utils.partition import block_partition

M, N, BATCH, K, QW = 160, 90, 30, 5, 4

#: (backend, shard count) pairs runnable in this process; "self" is
#: single-rank by construction.
SERVING_MATRIX = [("threads", 1), ("threads", 2), ("threads", 4), ("self", 1)]


@pytest.fixture(scope="module")
def snapshots():
    rng = np.random.default_rng(21)
    u, _ = np.linalg.qr(rng.standard_normal((M, 12)))
    v, _ = np.linalg.qr(rng.standard_normal((N, 12)))
    return (u * 0.7 ** np.arange(12)) @ v.T


@pytest.fixture(scope="module")
def queries(snapshots):
    rng = np.random.default_rng(5)
    return [
        snapshots[:, rng.integers(0, N, size=QW)] + 0.01 * rng.standard_normal((M, QW))
        for _ in range(6)
    ]


@pytest.fixture(scope="module")
def store(tmp_path_factory, snapshots):
    """Basis streamed by the parallel driver and exported to a store."""
    root = tmp_path_factory.mktemp("serving-store")
    store = ModeBaseStore(root)

    def build(comm):
        part = block_partition(M, comm.size)
        block = snapshots[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(comm, K=K, ff=1.0, r1=40)
        svd.initialize(block[:, :BATCH])
        for start in range(BATCH, N, BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        return svd.export_to_store(store, "stream")

    run_backend("threads", 2, build)
    return store


@pytest.mark.parametrize("backend,shards", SERVING_MATRIX)
def test_engine_matches_serial_reference(backend, shards, store, queries):
    """The acceptance matrix: all three query kinds, every backend/shard
    combination, 1e-10 against analysis/reconstruction.py."""
    base = store.get("stream")
    ref = [
        (
            project_coefficients(base.modes, q),
            reconstruct(base.modes, project_coefficients(base.modes, q)),
            reconstruction_error_curve(q, base.modes)[-1],
        )
        for q in queries
    ]

    def serve(comm):
        engine = QueryEngine(comm, store)
        proj = [engine.submit_project("stream", q) for q in queries]
        errs = [engine.submit_error("stream", q) for q in queries]
        engine.flush()
        recon = [
            engine.submit_reconstruct("stream", t.result()) for t in proj
        ]
        engine.flush()
        return (
            [t.result() for t in proj],
            [t.result() for t in recon],
            [t.result() for t in errs],
            engine.stats(),
        )

    results = run_backend(backend, shards, serve)
    for coeffs, recons, errors, stats in results:  # every rank agrees
        for i, (ref_c, ref_r, ref_e) in enumerate(ref):
            assert np.max(np.abs(coeffs[i] - ref_c)) < 1e-10
            assert np.max(np.abs(recons[i] - ref_r)) < 1e-10
            assert abs(errors[i] - ref_e) < 1e-10
        # Micro-batching: 3 kinds -> 3 GEMM groups despite 18 queries.
        assert stats["gemms"] == 3
        assert stats["queries"] == 3 * len(queries)


def test_round_trip_project_reconstruct(store, queries):
    """project -> reconstruct through the engine equals the serial
    round-trip (and both are the orthogonal projection of the query)."""
    base = store.get("stream")

    def serve(comm):
        engine = QueryEngine(comm, store)
        out = []
        for q in queries:
            coeffs = engine.project("stream", q)
            out.append(engine.reconstruct("stream", coeffs))
        return out

    for got, q in zip(run_backend("threads", 4, serve)[0], queries):
        serial = reconstruct(base.modes, project_coefficients(base.modes, q))
        assert np.max(np.abs(got - serial)) < 1e-10


def test_gathered_checkpoint_restart_any_rank_count(snapshots, tmp_path):
    """Stream at 3 ranks -> gathered checkpoint -> restart at {1, 2, 4}
    ranks -> continue -> all trajectories equal the serial one."""
    ckpt = tmp_path / "gathered-state"
    half = 2 * BATCH

    serial = ParSVDSerial(K=K, ff=1.0)
    serial.initialize(snapshots[:, :BATCH])
    for start in range(BATCH, N, BATCH):
        serial.incorporate_data(snapshots[:, start : start + BATCH])

    def phase1(comm):
        part = block_partition(M, comm.size)
        block = snapshots[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(comm, K=K, ff=1.0, r1=40)
        svd.initialize(block[:, :BATCH])
        svd.incorporate_data(block[:, BATCH:half])
        return svd.save_checkpoint(ckpt, gathered=True)

    paths = run_backend("threads", 3, phase1)
    assert len(set(paths)) == 1  # one single file, same answer on all ranks

    def phase2(comm):
        part = block_partition(M, comm.size)
        block = snapshots[part.slice_of(comm.rank), :]
        svd = ParSVDParallel.from_checkpoint(comm, ckpt)
        assert svd.n_seen == half
        for start in range(half, N, BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        return svd.modes, svd.singular_values

    for backend, nranks in SERVING_MATRIX:
        modes, values = run_backend(backend, nranks, phase2)[0]
        assert np.allclose(values, serial.singular_values, rtol=1e-8)
        aligned = align_signs(serial.modes, modes)
        assert np.max(np.abs(aligned - serial.modes)) < 1e-6
