"""Integration: the public API surface as a downstream user sees it."""

import numpy as np
import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.4.0"

    def test_facade_exports(self):
        """The typed api layer is reachable from the package root."""
        for name in (
            "Session", "SessionResult", "RunConfig",
            "SolverConfig", "BackendConfig", "StreamConfig",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name), name

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_docstring(self):
        """The package docstring's quickstart must actually run."""
        data = np.random.default_rng(0).standard_normal((500, 60))
        svd = repro.ParSVDSerial(K=5, ff=1.0).initialize(data[:, :20])
        svd = svd.incorporate_data(data[:, 20:40]).incorporate_data(
            data[:, 40:]
        )
        assert svd.modes.shape == (500, 5)
        assert svd.singular_values.shape == (5,)

    def test_exception_hierarchy(self):
        assert issubclass(repro.ConfigurationError, repro.ReproError)
        assert issubclass(repro.ShapeError, repro.ReproError)
        assert issubclass(repro.NotInitializedError, repro.ReproError)
        assert issubclass(repro.DataFormatError, repro.ReproError)
        assert issubclass(repro.ConfigurationError, ValueError)
        assert issubclass(repro.NotInitializedError, RuntimeError)

    def test_catch_all_with_base_class(self):
        with pytest.raises(repro.ReproError):
            repro.ParSVDSerial(K=-1)
        with pytest.raises(repro.ReproError):
            repro.ParSVDSerial(K=2).incorporate_data(np.ones((3, 3)))

    def test_run_spmd_with_library_function(self):
        data = np.random.default_rng(1).standard_normal((60, 20))

        def job(comm):
            from repro.utils import block_partition

            part = block_partition(60, comm.size)
            block = data[part.slice_of(comm.rank), :]
            _, s = repro.apmos_svd(comm, block, r1=20, r2=3)  # r1=N: no local truncation
            return s

        results = repro.run_spmd(2, job)
        s_ref = np.linalg.svd(data, compute_uv=False)[:3]
        assert np.allclose(results[0], s_ref, rtol=1e-8)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.data
        import repro.perf
        import repro.postprocessing
        import repro.smpi

        assert repro.analysis.pod is not None
        assert repro.data.BurgersProblem is not None
        assert repro.perf.WeakScalingStudy is not None
        assert repro.postprocessing.format_table is not None
        assert repro.smpi.run_spmd is repro.run_spmd


class TestSubpackageExports:
    def test_perf_exports(self):
        import repro.perf as perf

        for name in perf.__all__:
            assert hasattr(perf, name), name
        assert hasattr(perf, "StrongScalingStudy")

    def test_analysis_exports(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name
        for expected in ("dmd", "spod", "compress", "distributed_pod", "pod"):
            assert hasattr(analysis, expected), expected

    def test_smpi_exports(self):
        import repro.smpi as smpi

        for name in smpi.__all__:
            assert hasattr(smpi, name), name

    def test_data_exports(self):
        import repro.data as data

        for name in data.__all__:
            assert hasattr(data, name), name

    def test_core_exports(self):
        import repro.core as core

        for name in core.__all__:
            assert hasattr(core, name), name
        assert hasattr(core, "apmos_svd_two_level")
