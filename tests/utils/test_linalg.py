"""Unit tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.utils.linalg import (
    align_signs,
    economy_qr,
    economy_svd,
    orthogonality_defect,
    qr_positive,
    subspace_angles_deg,
    truncate_svd,
)


class TestEconomyFactorizations:
    def test_svd_reconstructs(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        assert u.shape == (120, 30)
        assert np.allclose((u * s) @ vt, tall_matrix)

    def test_svd_descending(self, tall_matrix):
        _, s, _ = economy_svd(tall_matrix)
        assert np.all(np.diff(s) <= 0)

    def test_qr_reconstructs(self, tall_matrix):
        q, r = economy_qr(tall_matrix)
        assert q.shape == (120, 30)
        assert np.allclose(q @ r, tall_matrix)

    def test_svd_rejects_1d(self):
        with pytest.raises(ShapeError):
            economy_svd(np.ones(5))

    def test_qr_rejects_3d(self):
        with pytest.raises(ShapeError):
            economy_qr(np.ones((2, 2, 2)))


class TestQrPositive:
    def test_diag_nonnegative(self, rng):
        for _ in range(5):
            a = rng.standard_normal((40, 10))
            _, r = qr_positive(a)
            assert np.all(np.diagonal(r) >= 0)

    def test_reconstruction(self, tall_matrix):
        q, r = qr_positive(tall_matrix)
        assert np.allclose(q @ r, tall_matrix)

    def test_orthonormal(self, tall_matrix):
        q, _ = qr_positive(tall_matrix)
        assert orthogonality_defect(q) < 1e-12

    def test_uniqueness_under_row_permutation_of_factors(self, rng):
        # Same matrix, two code paths that might pick different signs:
        # qr_positive must be deterministic.
        a = rng.standard_normal((30, 8))
        q1, r1 = qr_positive(a)
        q2, r2 = qr_positive(a.copy(order="F"))
        assert np.allclose(q1, q2)
        assert np.allclose(r1, r2)

    def test_upper_triangular(self, tall_matrix):
        _, r = qr_positive(tall_matrix)
        assert np.allclose(r, np.triu(r))

    def test_wide_matrix(self, rng):
        a = rng.standard_normal((5, 12))
        q, r = qr_positive(a)
        assert q.shape == (5, 5)
        assert r.shape == (5, 12)
        assert np.allclose(q @ r, a)
        assert np.all(np.diagonal(r) >= 0)


class TestTruncateSvd:
    def test_truncates(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        ut, st, vtt = truncate_svd(u, s, vt, 7)
        assert ut.shape == (120, 7)
        assert st.shape == (7,)
        assert vtt.shape == (7, 30)

    def test_clips_when_rank_exceeds(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        ut, st, _ = truncate_svd(u, s, vt, 999)
        assert st.shape == (30,)
        assert ut.shape == (120, 30)

    def test_keeps_leading(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        _, st, _ = truncate_svd(u, s, vt, 5)
        assert np.array_equal(st, s[:5])

    def test_rejects_nonpositive_rank(self, tall_matrix):
        u, s, vt = economy_svd(tall_matrix)
        with pytest.raises(ShapeError):
            truncate_svd(u, s, vt, 0)


class TestAlignSigns:
    def test_flips_negated_columns(self, rng):
        ref = rng.standard_normal((50, 4))
        cand = ref.copy()
        cand[:, 1] *= -1
        cand[:, 3] *= -1
        assert np.allclose(align_signs(ref, cand), ref)

    def test_identity_when_aligned(self, rng):
        ref = rng.standard_normal((50, 4))
        assert np.allclose(align_signs(ref, ref), ref)

    def test_does_not_mutate_input(self, rng):
        ref = rng.standard_normal((10, 2))
        cand = -ref
        cand_copy = cand.copy()
        align_signs(ref, cand)
        assert np.array_equal(cand, cand_copy)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            align_signs(rng.standard_normal((5, 2)), rng.standard_normal((5, 3)))


class TestSubspaceAngles:
    def test_identical_subspaces_zero(self, rng):
        a = rng.standard_normal((60, 5))
        angles = subspace_angles_deg(a, a @ rng.standard_normal((5, 5)))
        assert np.all(angles < 1e-4)

    def test_orthogonal_subspaces_ninety(self):
        a = np.eye(10)[:, :3]
        b = np.eye(10)[:, 5:8]
        angles = subspace_angles_deg(a, b)
        assert np.allclose(angles, 90.0)

    def test_accepts_non_orthonormal_bases(self, rng):
        a = rng.standard_normal((40, 3))
        angles = subspace_angles_deg(a, 3.7 * a)
        assert np.all(angles < 1e-4)

    def test_dim_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            subspace_angles_deg(
                rng.standard_normal((10, 2)), rng.standard_normal((11, 2))
            )


class TestOrthogonalityDefect:
    def test_zero_for_identity(self):
        assert orthogonality_defect(np.eye(6)) == 0.0

    def test_positive_for_skewed(self, rng):
        a = rng.standard_normal((20, 4))
        assert orthogonality_defect(a) > 0.1
