"""Unit tests for repro.utils.timers."""

import time

import pytest

from repro.utils.timers import TimerRegistry, WallTimer


class TestWallTimer:
    def test_context_manager_measures(self):
        with WallTimer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            WallTimer().stop()

    def test_restartable(self):
        t = WallTimer()
        t.start()
        first = t.stop()
        t.start()
        second = t.stop()
        assert first >= 0 and second >= 0


class TestTimerRegistry:
    def test_measure_records(self):
        reg = TimerRegistry()
        with reg.measure("phase"):
            pass
        assert reg.count("phase") == 1
        assert reg.total("phase") >= 0

    def test_multiple_samples(self):
        reg = TimerRegistry()
        reg.add("x", 1.0)
        reg.add("x", 3.0)
        assert reg.count("x") == 2
        assert reg.total("x") == pytest.approx(4.0)
        assert reg.mean("x") == pytest.approx(2.0)

    def test_mean_unknown_raises(self):
        with pytest.raises(KeyError):
            TimerRegistry().mean("nope")

    def test_unknown_name_empty(self):
        reg = TimerRegistry()
        assert reg.samples("nope") == []
        assert reg.total("nope") == 0.0
        assert reg.count("nope") == 0

    def test_names_sorted(self):
        reg = TimerRegistry()
        reg.add("b", 1.0)
        reg.add("a", 1.0)
        assert reg.names() == ["a", "b"]

    def test_summary(self):
        reg = TimerRegistry()
        reg.add("k", 2.0)
        summary = reg.summary()
        assert summary["k"]["count"] == 1.0
        assert summary["k"]["mean"] == pytest.approx(2.0)
