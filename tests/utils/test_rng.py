"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import rank_rng, resolve_rng, spawn_rank_rngs


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_reproducible(self):
        a = resolve_rng(42).standard_normal(5)
        b = resolve_rng(42).standard_normal(5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert resolve_rng(gen) is gen

    def test_seedsequence_accepted(self):
        seq = np.random.SeedSequence(7)
        gen = resolve_rng(seq)
        assert isinstance(gen, np.random.Generator)


class TestSpawnRankRngs:
    def test_count(self):
        assert len(spawn_rank_rngs(0, 4)) == 4

    def test_streams_differ(self):
        gens = spawn_rank_rngs(0, 3)
        draws = [g.standard_normal(8) for g in gens]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_reproducible(self):
        a = [g.standard_normal(4) for g in spawn_rank_rngs(9, 3)]
        b = [g.standard_normal(4) for g in spawn_rank_rngs(9, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            spawn_rank_rngs(0, 0)


class TestRankRng:
    def test_matches_spawn(self):
        spawned = [g.standard_normal(6) for g in spawn_rank_rngs(5, 4)]
        for rank in range(4):
            local = rank_rng(5, rank, 4).standard_normal(6)
            assert np.array_equal(local, spawned[rank])

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            rank_rng(0, 4, 4)
        with pytest.raises(ValueError):
            rank_rng(0, -1, 4)
