"""Per-rank logging tests."""

import logging

import pytest

from repro.utils.logging_utils import RankFilter, get_rank_logger, root_only


class _Capture(logging.Handler):
    def __init__(self):
        super().__init__()
        self.records = []

    def emit(self, record):
        self.records.append(record)


class TestRankLogger:
    def test_records_tagged_with_rank(self):
        capture = _Capture()
        logger = get_rank_logger("t1", rank=2, nranks=4, handler=capture)
        logger.info("hello")
        assert capture.records[0].rank == 2
        assert capture.records[0].nranks == 4

    def test_distinct_loggers_per_rank(self):
        a = get_rank_logger("t2", 0, 2, handler=_Capture())
        b = get_rank_logger("t2", 1, 2, handler=_Capture())
        assert a is not b

    def test_idempotent_reconfiguration(self):
        capture = _Capture()
        get_rank_logger("t3", 0, 1, handler=_Capture())
        logger = get_rank_logger("t3", 0, 1, handler=capture)
        logger.info("once")
        assert len(capture.records) == 1  # no stacked handlers

    def test_level_respected(self):
        capture = _Capture()
        logger = get_rank_logger(
            "t4", 0, 1, level=logging.WARNING, handler=capture
        )
        logger.info("dropped")
        logger.warning("kept")
        assert [r.levelname for r in capture.records] == ["WARNING"]

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            get_rank_logger("t5", 3, 3)


class TestRootOnly:
    def test_nonroot_info_dropped(self):
        capture = _Capture()
        logger = get_rank_logger("t6", 1, 2, handler=capture)
        root_only(logger, rank=1)
        logger.info("quiet")
        logger.error("loud")
        assert [r.levelname for r in capture.records] == ["ERROR"]

    def test_root_info_kept(self):
        capture = _Capture()
        logger = get_rank_logger("t7", 0, 2, handler=capture)
        root_only(logger, rank=0)
        logger.info("kept")
        assert len(capture.records) == 1


class TestRankFilter:
    def test_always_passes(self):
        f = RankFilter(0, 1)
        record = logging.LogRecord("x", logging.INFO, "", 0, "m", (), None)
        assert f.filter(record) is True
        assert record.rank == 0
