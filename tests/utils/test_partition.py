"""Unit tests for repro.utils.partition."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.partition import block_partition


class TestBlockPartition:
    def test_even_split(self):
        p = block_partition(12, 4)
        assert p.counts == (3, 3, 3, 3)
        assert p.displs == (0, 3, 6, 9)

    def test_uneven_split_front_loaded(self):
        p = block_partition(10, 3)
        assert p.counts == (4, 3, 3)
        assert p.displs == (0, 4, 7)

    def test_counts_sum_to_total(self):
        p = block_partition(1037, 7)
        assert sum(p.counts) == 1037

    def test_more_parts_than_items(self):
        p = block_partition(2, 5)
        assert p.counts == (1, 1, 0, 0, 0)

    def test_zero_total(self):
        p = block_partition(0, 3)
        assert p.counts == (0, 0, 0)

    def test_range_of(self):
        p = block_partition(10, 3)
        assert p.range_of(0) == (0, 4)
        assert p.range_of(2) == (7, 10)

    def test_slice_roundtrip(self):
        p = block_partition(23, 4)
        data = np.arange(23)
        rebuilt = np.concatenate([data[p.slice_of(i)] for i in range(4)])
        assert np.array_equal(rebuilt, data)

    def test_owner_of(self):
        p = block_partition(10, 3)
        owners = [p.owner_of(i) for i in range(10)]
        assert owners == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_owner_out_of_range(self):
        p = block_partition(10, 3)
        with pytest.raises(ConfigurationError):
            p.owner_of(10)

    def test_local_index(self):
        p = block_partition(10, 3)
        assert p.local_index(5) == (1, 1)
        assert p.local_index(0) == (0, 0)
        assert p.local_index(9) == (2, 2)

    def test_scatter_gather_roundtrip(self, rng):
        p = block_partition(17, 5)
        a = rng.standard_normal((17, 3))
        blocks = p.scatter(a)
        assert [b.shape[0] for b in blocks] == list(p.counts)
        assert np.array_equal(p.gather(blocks), a)

    def test_scatter_axis1(self, rng):
        p = block_partition(9, 2)
        a = rng.standard_normal((4, 9))
        blocks = p.scatter(a, axis=1)
        assert blocks[0].shape == (4, 5)
        assert np.array_equal(p.gather(blocks, axis=1), a)

    def test_scatter_wrong_size_raises(self, rng):
        p = block_partition(10, 2)
        with pytest.raises(ConfigurationError):
            p.scatter(rng.standard_normal((11, 2)))

    def test_gather_wrong_block_count_raises(self, rng):
        p = block_partition(10, 2)
        with pytest.raises(ConfigurationError):
            p.gather([np.zeros((10, 1))])

    def test_gather_wrong_block_shape_raises(self):
        p = block_partition(10, 2)
        with pytest.raises(ConfigurationError):
            p.gather([np.zeros((4, 1)), np.zeros((5, 1))])

    def test_iter_yields_ranges(self):
        p = block_partition(10, 3)
        assert list(p) == [(0, 4), (4, 7), (7, 10)]

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            block_partition(-1, 2)
        with pytest.raises(ConfigurationError):
            block_partition(5, 0)

    def test_part_bounds_checked(self):
        p = block_partition(10, 3)
        with pytest.raises(ConfigurationError):
            p.range_of(3)
