"""`repro.faults`: deterministic fault injection — the typed schedule
(`FaultSpec`/`FaultConfig`), the seeded controller, the injecting
communicator proxy, and the refcounted process-global runtime."""

import pytest

from repro.config import FaultConfig, FaultSpec, RestartPolicy, RunConfig
from repro.exceptions import ConfigurationError
from repro.faults import runtime as faults_rt
from repro.faults.comm import FaultyCommunicator
from repro.faults.controller import FaultController, InjectedCrash
from repro.smpi import run_spmd
from repro.smpi.request import SendRequest
from repro.smpi.selfcomm import SelfCommunicator


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Every test starts and ends with injection off."""
    assert faults_rt.state() is None
    yield
    assert faults_rt.state() is None


def crash_config(rank=0, op="*", at=0, seed=0):
    return FaultConfig(
        enabled=True,
        seed=seed,
        schedule=(FaultSpec(kind="crash", rank=rank, op=op, at=at),),
    )


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="explode")

    def test_delay_requires_positive_delay_s(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="delay", delay_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="jitter", delay_s=-1.0)

    def test_count_must_be_positive_or_unlimited(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", count=0)
        assert FaultSpec(kind="crash", count=-1).count == -1

    def test_probability_range(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", probability=0.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", probability=1.5)

    def test_schedule_dicts_coerce_to_specs(self):
        cfg = FaultConfig(
            enabled=True,
            schedule=({"kind": "crash", "rank": 1, "op": "bcast", "at": 3},),
        )
        assert isinstance(cfg.schedule[0], FaultSpec)
        assert cfg.schedule[0].rank == 1

    def test_unknown_schedule_key_names_the_entry(self):
        with pytest.raises(ConfigurationError, match="schedule"):
            FaultConfig(enabled=True, schedule=({"kind": "crash", "nope": 1},))

    def test_active_requires_enabled_and_schedule(self):
        assert not FaultConfig().active
        assert not FaultConfig(enabled=True).active
        assert not FaultConfig(schedule=(FaultSpec(kind="crash"),)).active
        assert crash_config().active

    def test_run_config_round_trips_through_json(self):
        cfg = RunConfig(
            faults=FaultConfig(
                enabled=True,
                seed=9,
                schedule=(
                    FaultSpec(kind="crash", rank=1, op="bcast", at=3),
                    FaultSpec(kind="delay", op="send", delay_s=0.5, count=-1),
                ),
            )
        )
        assert RunConfig.from_json(cfg.to_json()) == cfg


class TestRestartPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RestartPolicy(backoff_s=0.1, backoff_factor=2.0, jitter_s=0.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_jitter_is_bounded(self):
        import random

        policy = RestartPolicy(backoff_s=0.1, jitter_s=0.05)
        delay = policy.backoff_for(1, random.Random(0))
        assert 0.1 <= delay <= 0.15

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            RestartPolicy(checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            RestartPolicy(min_size=0)


class TestFaultController:
    def test_crash_fires_once(self):
        controller = FaultController(crash_config(rank=0, op="bcast", at=1))
        assert controller.apply(0, "bcast") is False  # call #0: no fault
        with pytest.raises(InjectedCrash) as excinfo:
            controller.apply(0, "bcast")
        assert excinfo.value.rank == 0
        assert excinfo.value.op == "bcast"
        # Fire-once: the same controller never crashes this spec again.
        for _ in range(5):
            assert controller.apply(0, "bcast") is False
        assert controller.snapshot()["crash"] == 1

    def test_rank_and_op_filters(self):
        controller = FaultController(crash_config(rank=2, op="allreduce"))
        assert controller.apply(0, "allreduce") is False
        assert controller.apply(2, "bcast") is False
        with pytest.raises(InjectedCrash):
            controller.apply(2, "allreduce")

    def test_drop_reported_only_for_send_ops(self):
        cfg = FaultConfig(
            enabled=True,
            schedule=(FaultSpec(kind="drop", op="*", count=-1),),
        )
        controller = FaultController(cfg)
        assert controller.apply(0, "send") is True
        assert controller.apply(0, "bcast") is False  # collectives never drop
        snap = controller.snapshot()
        assert snap["drop"] == 1

    def test_per_rank_rng_is_deterministic(self):
        cfg = crash_config(seed=42)
        a, b = FaultController(cfg), FaultController(cfg)
        assert a._rng(3).random() == b._rng(3).random()
        assert a._rng(0).random() != a._rng(1).random()


class TestFaultyCommunicator:
    def test_sticky_crash_on_one_wrapper(self):
        controller = FaultController(crash_config(rank=0, op="bcast", at=0))
        comm = FaultyCommunicator(SelfCommunicator(), controller)
        with pytest.raises(InjectedCrash):
            comm.bcast(1)
        # The rank is dead for this wrapper's lifetime — every further op
        # raises, even ones the schedule never matched.
        with pytest.raises(InjectedCrash):
            comm.barrier()
        # ... but a fresh wrapper (a restarted attempt) over the SAME
        # controller runs clean: the crash already fired.
        fresh = FaultyCommunicator(SelfCommunicator(), controller)
        assert fresh.bcast(7) == 7

    def test_dropped_isend_returns_completed_request(self):
        cfg = FaultConfig(
            enabled=True,
            schedule=(FaultSpec(kind="drop", rank=0, op="isend"),),
        )
        comm = FaultyCommunicator(SelfCommunicator(), FaultController(cfg))
        request = comm.isend("x", dest=0, tag=1)
        assert isinstance(request, SendRequest)
        assert request.wait() is None
        assert not comm.iprobe(source=0, tag=1)

    def test_dropped_send_is_swallowed_between_ranks(self):
        cfg = FaultConfig(
            enabled=True,
            schedule=(FaultSpec(kind="drop", rank=0, op="send", at=0),),
        )
        faults_rt.install(cfg)
        try:

            def job(comm):
                if comm.rank == 0:
                    comm.send("lost", 1, tag=1)
                    comm.send("kept", 1, tag=2)
                    return None
                got = comm.recv(source=0, tag=2)
                assert not comm.iprobe(source=0, tag=1)
                return got

            results = run_spmd(2, job, timeout=10.0)
            assert results[1] == "kept"
        finally:
            faults_rt.uninstall()

    def test_split_and_dup_stay_injected(self):
        controller = FaultController(crash_config())
        comm = FaultyCommunicator(SelfCommunicator(), controller)
        assert isinstance(comm.dup(), FaultyCommunicator)
        sub = comm.split(0)
        assert isinstance(sub, FaultyCommunicator)
        assert sub.controller is controller

    def test_rank_size_passthrough(self):
        comm = FaultyCommunicator(
            SelfCommunicator(), FaultController(crash_config())
        )
        assert (comm.rank, comm.size) == (0, 1)
        assert (comm.Get_rank(), comm.Get_size()) == (0, 1)


class TestRuntime:
    def test_install_is_refcounted(self):
        cfg = crash_config()
        first = faults_rt.install(cfg)
        second = faults_rt.install(cfg)
        assert first is second is faults_rt.state()
        faults_rt.uninstall()
        assert faults_rt.state() is first
        faults_rt.uninstall()
        assert faults_rt.state() is None

    def test_pinned_controller_wins(self):
        pinned = FaultController(crash_config(seed=5))
        faults_rt.install(controller=pinned)
        try:
            # A nested config install joins the pinned controller.
            assert faults_rt.install(crash_config(seed=99)) is pinned
            faults_rt.uninstall()
        finally:
            faults_rt.uninstall()

    def test_inactive_config_installs_nothing(self):
        faults_rt.install(FaultConfig())  # enabled=False: recorded no-op
        try:
            assert faults_rt.state() is None
            comm = SelfCommunicator()
            assert faults_rt.inject_communicator(comm) is comm
        finally:
            faults_rt.uninstall()

    def test_inject_wraps_once(self):
        faults_rt.install(crash_config())
        try:
            comm = faults_rt.inject_communicator(SelfCommunicator())
            assert isinstance(comm, FaultyCommunicator)
            assert faults_rt.inject_communicator(comm) is comm
        finally:
            faults_rt.uninstall()

    def test_factory_wraps_when_installed(self):
        from repro.smpi import create_communicator

        faults_rt.install(crash_config(rank=1))
        try:
            comms = create_communicator("threads", 2)
            assert all(isinstance(c, FaultyCommunicator) for c in comms)
        finally:
            faults_rt.uninstall()

    def test_injected_faults_are_metered(self):
        from repro.obs import runtime as obs_rt

        obs_rt.install(metrics=True)
        try:
            cfg = FaultConfig(
                enabled=True,
                schedule=(
                    FaultSpec(kind="delay", op="bcast", delay_s=1e-6, count=2),
                ),
            )
            controller = FaultController(cfg)
            controller.apply(0, "bcast")
            controller.apply(0, "bcast")
            snap = obs_rt.current_registry().snapshot()
            assert (
                snap["counters"]["repro.faults.injected.delay"]["value"] == 2.0
            )
        finally:
            obs_rt.uninstall()
