"""Unit tests for low-rank snapshot compression."""

import numpy as np
import pytest

from repro.analysis.compression import CompressedSnapshots, compress
from repro.data.burgers import BurgersProblem
from repro.exceptions import ConfigurationError, DataFormatError, ShapeError


class TestCompressByRank:
    def test_exact_for_full_rank(self, rng):
        a = rng.standard_normal((40, 10))
        c = compress(a, rank=10)
        assert c.relative_error(a) < 1e-12

    def test_truncation_error_is_optimal(self, decaying_matrix):
        c = compress(decaying_matrix, rank=5)
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        optimal = np.linalg.norm(s[5:]) / np.linalg.norm(s)
        assert c.relative_error(decaying_matrix) == pytest.approx(
            optimal, rel=1e-8
        )

    def test_rank_clipped(self, rng):
        a = rng.standard_normal((20, 6))
        c = compress(a, rank=100)
        assert c.rank == 6

    def test_randomized_close_to_dense(self, decaying_matrix):
        dense = compress(decaying_matrix, rank=5)
        randomized = compress(
            decaying_matrix, rank=5, low_rank=True, rng=0
        )
        assert abs(
            randomized.relative_error(decaying_matrix)
            - dense.relative_error(decaying_matrix)
        ) < 1e-6


class TestCompressByEnergy:
    def test_energy_target_met(self, decaying_matrix):
        c = compress(decaying_matrix, energy=0.999)
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        captured = np.sum(s[: c.rank] ** 2) / np.sum(s**2)
        assert captured >= 0.999 - 1e-12

    def test_energy_picks_minimal_rank(self, decaying_matrix):
        c = compress(decaying_matrix, energy=0.999)
        s = np.linalg.svd(decaying_matrix, compute_uv=False)
        if c.rank > 1:
            below = np.sum(s[: c.rank - 1] ** 2) / np.sum(s**2)
            assert below < 0.999

    def test_full_energy_full_rank(self, rng):
        a = rng.standard_normal((20, 5))
        c = compress(a, energy=1.0)
        assert c.relative_error(a) < 1e-10


class TestAccounting:
    def test_compression_ratio_formula(self, decaying_matrix):
        c = compress(decaying_matrix, rank=4)
        m, n = decaying_matrix.shape
        expected = (m * n) / (4 * (m + n + 1))
        assert c.compression_ratio == pytest.approx(expected, rel=1e-12)

    def test_burgers_compresses_well(self):
        data = BurgersProblem(nx=512, nt=100).snapshot_matrix()
        c = compress(data, energy=0.9999)
        assert c.compression_ratio > 2.0
        assert c.relative_error(data) < 0.02


class TestPersistence:
    def test_roundtrip(self, decaying_matrix, tmp_path):
        c = compress(decaying_matrix, rank=4)
        path = c.save(tmp_path / "snap")
        loaded = CompressedSnapshots.load(path)
        assert np.array_equal(loaded.modes, c.modes)
        assert np.array_equal(loaded.right, c.right)
        assert loaded.original_shape == c.original_shape
        assert np.allclose(loaded.decompress(), c.decompress())

    def test_bad_archive_rejected(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, other=np.ones(2))
        with pytest.raises(DataFormatError):
            CompressedSnapshots.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"junk")
        with pytest.raises(DataFormatError):
            CompressedSnapshots.load(path)


class TestValidation:
    def test_exactly_one_policy(self, rng):
        a = rng.standard_normal((10, 4))
        with pytest.raises(ConfigurationError):
            compress(a)
        with pytest.raises(ConfigurationError):
            compress(a, rank=2, energy=0.9)

    def test_bad_energy(self, rng):
        a = rng.standard_normal((10, 4))
        with pytest.raises(ConfigurationError):
            compress(a, energy=0.0)
        with pytest.raises(ConfigurationError):
            compress(a, energy=1.5)

    def test_bad_rank(self, rng):
        with pytest.raises(ConfigurationError):
            compress(rng.standard_normal((10, 4)), rank=0)

    def test_bad_shape(self):
        with pytest.raises(ShapeError):
            compress(np.ones(5), rank=1)

    def test_inconsistent_factors_rejected(self, rng):
        with pytest.raises(ShapeError):
            CompressedSnapshots(
                modes=rng.standard_normal((10, 3)),
                singular_values=np.ones(3),
                right=rng.standard_normal((2, 5)),  # wrong rank
                original_shape=(10, 5),
            )
