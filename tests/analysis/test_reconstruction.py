"""Unit tests for reconstruction/energy analysis."""

import numpy as np
import pytest

from repro.analysis.reconstruction import (
    cumulative_energy,
    project_coefficients,
    rank_for_energy,
    reconstruct,
    reconstruction_error_curve,
)
from repro.exceptions import ShapeError


class TestProjection:
    def test_roundtrip_in_span(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        data = q @ rng.standard_normal((5, 12))
        coeffs = project_coefficients(q, data)
        assert np.allclose(reconstruct(q, coeffs), data, atol=1e-12)

    def test_shape_checks(self, rng):
        with pytest.raises(ShapeError):
            project_coefficients(
                rng.standard_normal((10, 2)), rng.standard_normal((11, 3))
            )
        with pytest.raises(ShapeError):
            reconstruct(rng.standard_normal((10, 2)), rng.standard_normal((3, 4)))


class TestErrorCurve:
    def test_monotone_nonincreasing(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        curve = reconstruction_error_curve(decaying_matrix, u[:, :15])
        assert np.all(np.diff(curve) <= 1e-12)

    def test_full_rank_reaches_zero(self, rng):
        a = rng.standard_normal((30, 8))
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        curve = reconstruction_error_curve(a, u)
        assert curve[-1] < 1e-10

    def test_matches_direct_computation(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        curve = reconstruction_error_curve(decaying_matrix, u[:, :5])
        for r in (1, 3, 5):
            direct = np.linalg.norm(
                decaying_matrix - u[:, :r] @ (u[:, :r].T @ decaying_matrix)
            ) / np.linalg.norm(decaying_matrix)
            assert curve[r - 1] == pytest.approx(direct, rel=1e-8, abs=1e-12)

    def test_matches_optimal_truncation_error(self, decaying_matrix):
        """Eckart--Young: with exact singular vectors the curve equals the
        tail norm of the spectrum."""
        u, s, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        curve = reconstruction_error_curve(decaying_matrix, u[:, :6])
        denom = np.linalg.norm(s)
        for r in range(1, 7):
            tail = np.linalg.norm(s[r:]) / denom
            assert curve[r - 1] == pytest.approx(tail, rel=1e-8)

    def test_zero_matrix(self):
        curve = reconstruction_error_curve(np.zeros((10, 4)), np.eye(10)[:, :2])
        assert np.allclose(curve, 0.0)

    def test_bad_max_rank(self, decaying_matrix, rng):
        u = rng.standard_normal((200, 3))
        with pytest.raises(ShapeError):
            reconstruction_error_curve(decaying_matrix, u, max_rank=0)


class TestEnergy:
    def test_cumulative_monotone_to_one(self):
        s = np.array([3.0, 2.0, 1.0])
        cum = cumulative_energy(s)
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] == pytest.approx(1.0)

    def test_values(self):
        cum = cumulative_energy(np.array([2.0, 1.0]))
        assert cum[0] == pytest.approx(0.8)
        assert cum[1] == pytest.approx(1.0)

    def test_zero_spectrum(self):
        assert np.allclose(cumulative_energy(np.zeros(3)), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            cumulative_energy(np.ones((2, 2)))


class TestRankForEnergy:
    def test_thresholds(self):
        s = np.array([2.0, 1.0])  # energies 4, 1 -> fractions 0.8, 1.0
        assert rank_for_energy(s, 0.5) == 1
        assert rank_for_energy(s, 0.8) == 1
        assert rank_for_energy(s, 0.9) == 2
        assert rank_for_energy(s, 1.0) == 2

    def test_invalid_target(self):
        with pytest.raises(ShapeError):
            rank_for_energy(np.ones(3), 0.0)
        with pytest.raises(ShapeError):
            rank_for_energy(np.ones(3), 1.5)
