"""Unit tests for reconstruction/energy analysis."""

import numpy as np
import pytest

from repro.analysis.reconstruction import (
    cumulative_energy,
    project_coefficients,
    rank_for_energy,
    reconstruct,
    reconstruction_error_curve,
)
from repro.exceptions import ShapeError


class TestProjection:
    def test_roundtrip_in_span(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        data = q @ rng.standard_normal((5, 12))
        coeffs = project_coefficients(q, data)
        assert np.allclose(reconstruct(q, coeffs), data, atol=1e-12)

    def test_shape_checks(self, rng):
        with pytest.raises(ShapeError):
            project_coefficients(
                rng.standard_normal((10, 2)), rng.standard_normal((11, 3))
            )
        with pytest.raises(ShapeError):
            reconstruct(rng.standard_normal((10, 2)), rng.standard_normal((3, 4)))


class TestErrorCurve:
    def test_monotone_nonincreasing(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        curve = reconstruction_error_curve(decaying_matrix, u[:, :15])
        assert np.all(np.diff(curve) <= 1e-12)

    def test_full_rank_reaches_zero(self, rng):
        a = rng.standard_normal((30, 8))
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        curve = reconstruction_error_curve(a, u)
        assert curve[-1] < 1e-10

    def test_matches_direct_computation(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        curve = reconstruction_error_curve(decaying_matrix, u[:, :5])
        for r in (1, 3, 5):
            direct = np.linalg.norm(
                decaying_matrix - u[:, :r] @ (u[:, :r].T @ decaying_matrix)
            ) / np.linalg.norm(decaying_matrix)
            assert curve[r - 1] == pytest.approx(direct, rel=1e-8, abs=1e-12)

    def test_matches_optimal_truncation_error(self, decaying_matrix):
        """Eckart--Young: with exact singular vectors the curve equals the
        tail norm of the spectrum."""
        u, s, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        curve = reconstruction_error_curve(decaying_matrix, u[:, :6])
        denom = np.linalg.norm(s)
        for r in range(1, 7):
            tail = np.linalg.norm(s[r:]) / denom
            assert curve[r - 1] == pytest.approx(tail, rel=1e-8)

    def test_zero_matrix(self):
        curve = reconstruction_error_curve(np.zeros((10, 4)), np.eye(10)[:, :2])
        assert np.allclose(curve, 0.0)

    def test_bad_max_rank(self, decaying_matrix, rng):
        u = rng.standard_normal((200, 3))
        with pytest.raises(ShapeError):
            reconstruction_error_curve(decaying_matrix, u, max_rank=0)


class TestEnergy:
    def test_cumulative_monotone_to_one(self):
        s = np.array([3.0, 2.0, 1.0])
        cum = cumulative_energy(s)
        assert np.all(np.diff(cum) >= 0)
        assert cum[-1] == pytest.approx(1.0)

    def test_values(self):
        cum = cumulative_energy(np.array([2.0, 1.0]))
        assert cum[0] == pytest.approx(0.8)
        assert cum[1] == pytest.approx(1.0)

    def test_zero_spectrum(self):
        assert np.allclose(cumulative_energy(np.zeros(3)), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            cumulative_energy(np.ones((2, 2)))


class TestRankForEnergy:
    def test_thresholds(self):
        s = np.array([2.0, 1.0])  # energies 4, 1 -> fractions 0.8, 1.0
        assert rank_for_energy(s, 0.5) == 1
        assert rank_for_energy(s, 0.8) == 1
        assert rank_for_energy(s, 0.9) == 2
        assert rank_for_energy(s, 1.0) == 2

    def test_invalid_target(self):
        with pytest.raises(ShapeError):
            rank_for_energy(np.ones(3), 0.0)
        with pytest.raises(ShapeError):
            rank_for_energy(np.ones(3), 1.5)


class TestFloat32Inputs:
    """ISSUE 2: the reconstruction helpers must behave under float32 data
    (the dtype large simulation outputs typically arrive in)."""

    @pytest.fixture
    def basis32(self, rng):
        u, _ = np.linalg.qr(rng.standard_normal((80, 6)))
        return u.astype(np.float32)

    @pytest.fixture
    def data32(self, rng):
        return rng.standard_normal((80, 12)).astype(np.float32)

    def test_project_preserves_dtype(self, basis32, data32):
        coeffs = project_coefficients(basis32, data32)
        assert coeffs.dtype == np.float32
        assert coeffs.shape == (6, 12)

    def test_round_trip_close_at_float32_tolerance(self, basis32, data32):
        coeffs = project_coefficients(basis32, data32)
        recon = reconstruct(basis32, coeffs)
        ref64 = reconstruct(
            basis32.astype(np.float64),
            project_coefficients(
                basis32.astype(np.float64), data32.astype(np.float64)
            ),
        )
        assert np.max(np.abs(recon.astype(np.float64) - ref64)) < 1e-5

    def test_error_curve_promotes_and_stays_monotone(self, basis32, data32):
        curve = reconstruction_error_curve(data32, basis32)
        assert curve.dtype == np.float64  # computed in double internally
        assert np.all(np.isfinite(curve))
        assert np.all(np.diff(curve) <= 1e-12)  # non-increasing in rank
        curve64 = reconstruction_error_curve(
            data32.astype(np.float64), basis32.astype(np.float64)
        )
        assert np.max(np.abs(curve - curve64)) < 1e-5

    def test_representable_float32_data_reconstructs(self, rng, basis32):
        inside = (basis32 @ rng.standard_normal((6, 4))).astype(np.float32)
        curve = reconstruction_error_curve(inside, basis32)
        # The cancellation identity floors at ~sqrt(eps_f32) for data that
        # was rounded to float32, not at float64 resolution.
        assert curve[-1] < 5e-3

    def test_cumulative_energy_float32_values(self, rng):
        s = np.sort(rng.random(8).astype(np.float32))[::-1]
        energy = cumulative_energy(s)
        assert np.isclose(energy[-1], 1.0)
        assert np.all(np.diff(energy) >= 0)


class TestServingRoundTrip:
    """project_coefficients / reconstruct round-trips agree with the
    serving QueryEngine — serial ('self') vs sharded ('threads') answers
    must coincide (ISSUE 2)."""

    @pytest.fixture
    def published(self, rng, tmp_path):
        from repro.serving import ModeBaseStore

        u, _ = np.linalg.qr(rng.standard_normal((96, 5)))
        store = ModeBaseStore(tmp_path / "store")
        store.publish("basis", u, np.linspace(2.0, 0.2, 5))
        return store, u

    def _serve(self, store, data, backend, nranks):
        from repro import run_backend
        from repro.serving import QueryEngine

        def job(comm):
            engine = QueryEngine(comm, store)
            coeffs = engine.project("basis", data)
            recon = engine.reconstruct("basis", coeffs)
            err = engine.reconstruction_error("basis", data)
            return coeffs, recon, err

        return run_backend(backend, nranks, job)[0]

    def test_engine_round_trip_matches_serial_functions(
        self, published, rng
    ):
        store, u = published
        data = rng.standard_normal((96, 9))
        ref_c = project_coefficients(u, data)
        ref_r = reconstruct(u, ref_c)
        ref_e = reconstruction_error_curve(data, u)[-1]
        for backend, nranks in [("self", 1), ("threads", 1), ("threads", 3)]:
            coeffs, recon, err = self._serve(store, data, backend, nranks)
            assert np.max(np.abs(coeffs - ref_c)) < 1e-10, (backend, nranks)
            assert np.max(np.abs(recon - ref_r)) < 1e-10, (backend, nranks)
            assert abs(err - ref_e) < 1e-10, (backend, nranks)

    def test_engine_round_trip_float32_payload(self, published, rng):
        """float32 queries through the engine stay within float32 accuracy
        of the float64 serial reference."""
        store, u = published
        data = rng.standard_normal((96, 6)).astype(np.float32)
        ref_c = project_coefficients(u, data.astype(np.float64))
        serial = self._serve(store, data, "self", 1)
        sharded = self._serve(store, data, "threads", 2)
        for coeffs, _, _ in (serial, sharded):
            assert np.max(np.abs(coeffs - ref_c)) < 1e-5
        # Serial vs sharded agree to float32 summation-order effects
        # (partial sums accumulate per shard in the payload dtype).
        assert np.max(np.abs(serial[0] - sharded[0])) < 1e-6
        assert abs(serial[2] - sharded[2]) < 1e-6
