"""Unit tests for batch Welch SPOD."""

import numpy as np
import pytest

from repro.analysis.spod import spod
from repro.exceptions import ConfigurationError, ShapeError


def travelling_wave_record(
    m=64, n=1024, dt=0.1, freq=0.8, amp=1.0, noise=0.05, seed=0
):
    """A coherent travelling wave at a known frequency + white noise."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, m)
    t = np.arange(n) * dt
    phase = 2 * np.pi * (freq * t[np.newaxis, :] - 3 * x[:, np.newaxis])
    return amp * np.cos(phase) + noise * rng.standard_normal((m, n))


class TestSpectrumRecovery:
    def test_peak_at_planted_frequency(self):
        freq = 0.8
        record = travelling_wave_record(freq=freq)
        result = spod(record, dt=0.1, n_per_block=128, overlap=0.5)
        # nearest bin to the planted frequency
        assert abs(result.peak_frequency() - freq) <= result.frequencies[1]

    def test_energy_concentrated_at_peak(self):
        record = travelling_wave_record(freq=0.8, noise=0.02)
        result = spod(record, dt=0.1, n_per_block=128)
        spectrum = result.energies[:, 0]
        peak = int(np.argmax(spectrum))
        off_peak = np.delete(spectrum, [peak - 1, peak, peak + 1])
        assert spectrum[peak] > 20 * np.max(off_peak)

    def test_mode_at_peak_is_travelling_wave(self):
        freq = 0.8
        record = travelling_wave_record(freq=freq, noise=0.01)
        result = spod(record, dt=0.1, n_per_block=128)
        mode = result.modes_at(freq)[:, 0]
        # a travelling wave's SPOD mode has ~uniform magnitude in space
        mag = np.abs(mode)
        assert mag.std() / mag.mean() < 0.15

    def test_two_waves_two_peaks(self):
        a = travelling_wave_record(freq=0.6, amp=1.0, noise=0.0)
        b = travelling_wave_record(freq=1.8, amp=0.5, noise=0.0, seed=1)
        result = spod(a + b, dt=0.1, n_per_block=256, overlap=0.5)
        spectrum = result.energies[:, 0].copy()
        spectrum[0] = 0.0
        df = result.frequencies[1]
        # first peak; mask its leakage neighbourhood, then find the second
        first = int(np.argmax(spectrum))
        lo, hi = max(first - 3, 0), min(first + 4, len(spectrum))
        masked = spectrum.copy()
        masked[lo:hi] = 0.0
        second = int(np.argmax(masked))
        peak_freqs = sorted(
            [result.frequencies[first], result.frequencies[second]]
        )
        assert abs(peak_freqs[0] - 0.6) <= df
        assert abs(peak_freqs[1] - 1.8) <= df


class TestStructure:
    def test_shapes(self):
        record = travelling_wave_record(m=32, n=512)
        result = spod(record, dt=0.1, n_per_block=64, n_modes=3)
        assert result.frequencies.shape == (33,)
        assert result.energies.shape == (33, 3)
        assert result.modes.shape == (33, 32, 3)

    def test_modes_orthonormal_per_frequency(self):
        record = travelling_wave_record(m=32, n=512)
        result = spod(record, dt=0.1, n_per_block=64, n_modes=3)
        for k in (1, 5, 10):
            gram = result.modes[k].conj().T @ result.modes[k]
            assert np.allclose(gram, np.eye(3), atol=1e-8)

    def test_energies_descending_per_frequency(self):
        record = travelling_wave_record(m=32, n=512)
        result = spod(record, dt=0.1, n_per_block=64)
        assert np.all(np.diff(result.energies, axis=1) <= 1e-12)

    def test_block_count(self):
        record = travelling_wave_record(m=16, n=256)
        result = spod(record, dt=1.0, n_per_block=64, overlap=0.5)
        # starts at 0,32,...,192 -> 7 blocks
        assert result.n_blocks == 7

    def test_frequencies_one_sided(self):
        record = travelling_wave_record(m=16, n=256)
        result = spod(record, dt=0.5, n_per_block=32)
        assert result.frequencies[0] == 0.0
        assert np.all(np.diff(result.frequencies) > 0)
        assert result.frequencies[-1] == pytest.approx(1.0)  # Nyquist of dt=0.5


class TestValidation:
    def test_bad_inputs(self):
        record = travelling_wave_record(m=8, n=128)
        with pytest.raises(ShapeError):
            spod(np.ones(5))
        with pytest.raises(ConfigurationError):
            spod(record, dt=0)
        with pytest.raises(ConfigurationError):
            spod(record, n_per_block=1)
        with pytest.raises(ConfigurationError):
            spod(record, n_per_block=1000)
        with pytest.raises(ConfigurationError):
            spod(record, overlap=1.0)
        with pytest.raises(ConfigurationError):
            spod(record, window="hann-ish")
        with pytest.raises(ConfigurationError):
            spod(record, n_modes=0)

    def test_boxcar_window_supported(self):
        record = travelling_wave_record(m=16, n=256)
        result = spod(record, n_per_block=64, window="boxcar")
        assert result.n_freq == 33
