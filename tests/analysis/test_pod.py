"""Unit tests for POD."""

import numpy as np
import pytest

from repro.analysis.pod import pod, pod_method_of_snapshots
from repro.exceptions import ShapeError
from repro.utils.linalg import orthogonality_defect


class TestPodSvdRoute:
    def test_modes_orthonormal(self, decaying_matrix):
        result = pod(decaying_matrix, n_modes=8)
        assert orthogonality_defect(result.modes) < 1e-10

    def test_reconstruction_full_rank_exact(self, rng):
        a = rng.standard_normal((30, 10))
        result = pod(a, subtract_mean=False)
        assert np.allclose(result.reconstruct(), a, atol=1e-10)

    def test_mean_subtraction_roundtrip(self, rng):
        a = rng.standard_normal((30, 10)) + 5.0
        result = pod(a, subtract_mean=True)
        assert np.allclose(result.reconstruct(), a, atol=1e-10)
        assert np.allclose(result.mean, a.mean(axis=1))

    def test_no_mean_subtraction_zero_mean_field(self, rng):
        a = rng.standard_normal((30, 10))
        result = pod(a, subtract_mean=False)
        assert np.allclose(result.mean, 0.0)

    def test_energy_fractions_sum_to_one(self, decaying_matrix):
        result = pod(decaying_matrix)
        assert result.energy_fractions.sum() == pytest.approx(1.0)

    def test_energies_are_squared_values(self, decaying_matrix):
        result = pod(decaying_matrix, n_modes=5)
        assert np.allclose(result.energies, result.singular_values**2)

    def test_truncated_reconstruction_error_decreases(self, decaying_matrix):
        result = pod(decaying_matrix)
        errors = [
            np.linalg.norm(decaying_matrix - result.reconstruct(k))
            for k in (1, 3, 6, 10)
        ]
        assert all(e1 >= e2 for e1, e2 in zip(errors, errors[1:]))

    def test_invalid_n_modes(self, decaying_matrix):
        with pytest.raises(ShapeError):
            pod(decaying_matrix, n_modes=0)
        result = pod(decaying_matrix, n_modes=3)
        with pytest.raises(ShapeError):
            result.reconstruct(10)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            pod(np.ones(5))


class TestMethodOfSnapshots:
    def test_agrees_with_svd_route(self, decaying_matrix):
        a = pod(decaying_matrix, n_modes=6)
        b = pod_method_of_snapshots(decaying_matrix, n_modes=6)
        assert np.allclose(a.singular_values, b.singular_values, rtol=1e-7)
        dots = np.abs(np.einsum("ij,ij->j", a.modes, b.modes))
        assert np.allclose(dots, 1.0, atol=1e-6)

    def test_modes_orthonormal(self, decaying_matrix):
        result = pod_method_of_snapshots(decaying_matrix, n_modes=6)
        assert orthogonality_defect(result.modes) < 1e-7

    def test_rank_deficient_drops_null_modes(self, rng):
        a = rng.standard_normal((50, 3)) @ rng.standard_normal((3, 12))
        result = pod_method_of_snapshots(a, subtract_mean=False)
        assert result.modes.shape[1] <= 3

    def test_reconstruction(self, rng):
        a = rng.standard_normal((40, 8))
        result = pod_method_of_snapshots(a, subtract_mean=False)
        assert np.allclose(result.reconstruct(), a, atol=1e-8)

    def test_coefficients_shape(self, decaying_matrix):
        result = pod_method_of_snapshots(decaying_matrix, n_modes=4)
        assert result.coefficients.shape == (4, 40)
