"""Unit tests for exact DMD."""

import numpy as np
import pytest

from repro.analysis.dmd import DMDResult, dmd
from repro.exceptions import ConfigurationError, ShapeError


def linear_system_snapshots(eigenvalues, m=60, n=40, seed=0, dt=1.0):
    """Snapshots of x_{k+1} = A x_k with prescribed (possibly complex)
    eigenvalues, embedded in an m-dimensional space."""
    rng = np.random.default_rng(seed)
    # real block-diagonal dynamics realised from the eigenvalue list
    blocks = []
    used = []
    for lam in eigenvalues:
        if np.iscomplex(lam) and np.conj(lam) not in used:
            r, theta = np.abs(lam), np.angle(lam)
            blocks.append(
                r * np.array(
                    [[np.cos(theta), -np.sin(theta)],
                     [np.sin(theta), np.cos(theta)]]
                )
            )
            used.extend([lam, np.conj(lam)])
        elif not np.iscomplex(lam):
            blocks.append(np.array([[float(np.real(lam))]]))
            used.append(lam)
    dim = sum(b.shape[0] for b in blocks)
    a_small = np.zeros((dim, dim))
    at = 0
    for b in blocks:
        a_small[at : at + b.shape[0], at : at + b.shape[0]] = b
        at += b.shape[0]
    lift, _ = np.linalg.qr(rng.standard_normal((m, dim)))
    x = rng.standard_normal(dim)
    snaps = np.empty((m, n))
    for k in range(n):
        snaps[:, k] = lift @ x
        x = a_small @ x
    return snaps


class TestEigenvalueRecovery:
    def test_real_decay_rates(self):
        snaps = linear_system_snapshots([0.9, 0.7, 0.5], n=30)
        result = dmd(snaps, rank=3)
        recovered = np.sort(result.eigenvalues.real)[::-1]
        assert np.allclose(recovered, [0.9, 0.7, 0.5], atol=1e-8)
        assert np.max(np.abs(result.eigenvalues.imag)) < 1e-8

    def test_oscillatory_pair(self):
        lam = 0.98 * np.exp(1j * 0.3)
        snaps = linear_system_snapshots([lam, np.conj(lam)], n=50)
        result = dmd(snaps, rank=2)
        angles = np.sort(np.abs(np.angle(result.eigenvalues)))
        assert np.allclose(angles, [0.3, 0.3], atol=1e-6)
        assert np.allclose(np.abs(result.eigenvalues), 0.98, atol=1e-6)

    def test_frequency_conversion(self):
        lam = np.exp(1j * np.pi / 4)  # period 8 samples
        snaps = linear_system_snapshots([lam, np.conj(lam)], n=40)
        result = dmd(snaps, rank=2, dt=0.5)
        freq = np.max(result.frequencies)
        # pi/4 per 0.5 time units -> (pi/4)/(2*pi*0.5) = 0.25 cycles/time
        assert freq == pytest.approx(0.25, rel=1e-6)

    def test_growth_rates_sign(self):
        snaps = linear_system_snapshots([1.05, 0.8], n=25)
        result = dmd(snaps, rank=2)
        rates = np.sort(result.growth_rates)
        assert rates[0] < 0 < rates[1]


class TestReconstructionPrediction:
    def test_reconstructs_training_data(self):
        snaps = linear_system_snapshots([0.95, 0.9 * np.exp(0.2j), 0.9 * np.exp(-0.2j)], n=30)
        result = dmd(snaps, rank=3)
        recon = result.reconstruct(30)
        err = np.linalg.norm(recon - snaps) / np.linalg.norm(snaps)
        assert err < 1e-6

    def test_prediction_extends_beyond_training(self):
        lam = 0.97
        snaps = linear_system_snapshots([lam], n=20)
        result = dmd(snaps, rank=1)
        future = result.predict(np.array([25.0]))
        # analytic decay from the first snapshot's mode content
        expected_norm = np.linalg.norm(snaps[:, 0]) * lam**25
        assert np.linalg.norm(future) == pytest.approx(expected_norm, rel=1e-6)

    def test_predict_requires_1d_times(self):
        snaps = linear_system_snapshots([0.9], n=10)
        result = dmd(snaps, rank=1)
        with pytest.raises(ShapeError):
            result.predict(np.zeros((2, 2)))

    def test_reconstruct_positive(self):
        snaps = linear_system_snapshots([0.9], n=10)
        result = dmd(snaps, rank=1)
        with pytest.raises(ShapeError):
            result.reconstruct(0)


class TestRandomizedVariant:
    def test_low_rank_matches_dense(self):
        snaps = linear_system_snapshots([0.95, 0.85, 0.75], n=40)
        dense = dmd(snaps, rank=3)
        randomized = dmd(snaps, rank=3, low_rank=True, rng=0)
        assert np.allclose(
            np.sort(dense.eigenvalues.real),
            np.sort(randomized.eigenvalues.real),
            atol=1e-6,
        )


class TestValidationAndRanking:
    def test_input_validation(self):
        with pytest.raises(ShapeError):
            dmd(np.ones(5), 2)
        with pytest.raises(ShapeError):
            dmd(np.ones((5, 1)), 2)
        with pytest.raises(ConfigurationError):
            dmd(np.ones((5, 4)), 0)
        with pytest.raises(ConfigurationError):
            dmd(np.ones((5, 4)), 2, dt=0.0)

    def test_rank_clipped_to_data(self):
        snaps = linear_system_snapshots([0.9, 0.8], n=10)
        result = dmd(snaps, rank=50)
        assert result.rank <= 9

    def test_dominant_indices_ranked(self):
        snaps = linear_system_snapshots([0.99, 0.5], n=30, seed=1)
        result = dmd(snaps, rank=2)
        order = result.dominant_indices()
        weights = np.abs(result.amplitudes) * np.linalg.norm(
            result.modes, axis=0
        )
        assert weights[order[0]] >= weights[order[1]]
        assert result.dominant_indices(1).shape == (1,)

    def test_result_frozen(self):
        snaps = linear_system_snapshots([0.9], n=8)
        result = dmd(snaps, rank=1)
        with pytest.raises(Exception):
            result.dt = 2.0
