"""Unit tests for coherent-structure extraction."""

import numpy as np
import pytest

from repro.analysis.coherent import extract_coherent_structures
from repro.data.era5_like import Era5LikeField
from repro.exceptions import ShapeError


@pytest.fixture
def simple_svd(rng):
    q, _ = np.linalg.qr(rng.standard_normal((60, 4)))
    s = np.array([4.0, 3.0, 2.0, 1.0])
    return q, s


class TestBasicReport:
    def test_shapes(self, simple_svd):
        modes, s = simple_svd
        report = extract_coherent_structures(modes, s)
        assert report.n_modes == 4
        assert report.energy_fractions.shape == (4,)
        assert report.cumulative_energy[-1] == pytest.approx(1.0)

    def test_n_modes_truncates(self, simple_svd):
        modes, s = simple_svd
        report = extract_coherent_structures(modes, s, n_modes=2)
        assert report.n_modes == 2

    def test_energy_ordering(self, simple_svd):
        modes, s = simple_svd
        report = extract_coherent_structures(modes, s)
        assert np.all(np.diff(report.energy_fractions) <= 0)

    def test_summary_lines(self, simple_svd):
        modes, s = simple_svd
        report = extract_coherent_structures(modes, s)
        lines = report.summary_lines()
        assert len(lines) == 4
        assert "sigma" in lines[0]
        assert "best-match" not in lines[0]  # no ground truth supplied

    def test_no_truth_dominant_none(self, simple_svd):
        modes, s = simple_svd
        report = extract_coherent_structures(modes, s)
        assert report.dominant_structure(0) is None

    def test_invalid_args(self, simple_svd):
        modes, s = simple_svd
        with pytest.raises(ShapeError):
            extract_coherent_structures(modes, s, n_modes=0)
        with pytest.raises(ShapeError):
            extract_coherent_structures(modes[:, 0], s)


class TestGroundTruthAlignment:
    def test_alignment_with_planted_mode(self, rng):
        structure = rng.standard_normal(50)
        structure /= np.linalg.norm(structure)
        modes = structure[:, None]
        report = extract_coherent_structures(
            modes, np.array([1.0]), ground_truth={"planted": structure}
        )
        name, value = report.dominant_structure(0)
        assert name == "planted"
        assert value == pytest.approx(1.0, abs=1e-10)

    def test_subspace_structure_2d(self, rng):
        """A quadrature pair matches any mode inside its 2-D span."""
        basis, _ = np.linalg.qr(rng.standard_normal((40, 2)))
        mixed = (basis @ np.array([0.6, 0.8]))[:, None]
        report = extract_coherent_structures(
            mixed, np.array([1.0]), ground_truth={"wave": basis}
        )
        _, value = report.dominant_structure(0)
        assert value == pytest.approx(1.0, abs=1e-10)

    def test_orthogonal_structure_zero(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((30, 2)))
        report = extract_coherent_structures(
            q[:, :1], np.array([1.0]), ground_truth={"other": q[:, 1]}
        )
        _, value = report.dominant_structure(0)
        assert value < 1e-10

    def test_dof_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            extract_coherent_structures(
                rng.standard_normal((30, 1)),
                np.ones(1),
                ground_truth={"bad": rng.standard_normal(29)},
            )

    def test_mode_index_checked(self, simple_svd, rng):
        modes, s = simple_svd
        report = extract_coherent_structures(
            modes, s, ground_truth={"x": rng.standard_normal(60)}
        )
        with pytest.raises(ShapeError):
            report.dominant_structure(9)


class TestEra5Workflow:
    def test_recovers_planted_structures(self):
        """End-to-end: SVD modes of the synthetic field match the planted
        seasonal/wave structures (the quantitative version of Figure 2)."""
        field = Era5LikeField(nlat=16, nlon=32, nt=200, noise_amp=0.3, seed=1)
        anomalies = field.anomaly_snapshots()
        u, s, _ = np.linalg.svd(anomalies, full_matrices=False)

        cos_map, sin_map = field.wave_patterns()[0]
        truth = {
            "seasonal": field.seasonal_pattern().ravel(),
            "wave4": np.column_stack([cos_map.ravel(), sin_map.ravel()]),
        }
        report = extract_coherent_structures(
            u[:, :3], s[:3], ground_truth=truth
        )
        assert report.dominant_structure(0)[0] == "seasonal"
        assert report.dominant_structure(1)[0] == "wave4"
        assert report.dominant_structure(2)[0] == "wave4"
        for j in range(3):
            assert report.dominant_structure(j)[1] > 0.9
        assert "best-match" in report.summary_lines()[0]
