"""Distributed analysis reductions vs their serial references."""

import numpy as np
import pytest

from repro.analysis.distributed import (
    distributed_inner_products,
    distributed_norm,
    distributed_pod,
    distributed_project,
    distributed_reconstruction_error,
)
from repro.analysis.pod import pod
from repro.exceptions import ShapeError
from repro.smpi import SelfComm, run_spmd
from repro.utils.partition import block_partition


def spmd_over_blocks(data, nranks, fn):
    """Run fn(comm, block) with data row-partitioned over nranks."""

    def job(comm):
        part = block_partition(data.shape[0], comm.size)
        return fn(comm, data[part.slice_of(comm.rank), :])

    return run_spmd(nranks, job)


class TestReductions:
    def test_inner_products_match_serial(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        basis = u[:, :5]

        def fn(comm, block):
            part = block_partition(decaying_matrix.shape[0], comm.size)
            basis_local = basis[part.slice_of(comm.rank), :]
            return distributed_inner_products(comm, basis_local, block)

        results = spmd_over_blocks(decaying_matrix, 3, fn)
        expected = basis.T @ decaying_matrix
        for r in results:
            assert np.allclose(r, expected, atol=1e-10)

    def test_norm_matches_serial(self, decaying_matrix):
        results = spmd_over_blocks(
            decaying_matrix, 4, lambda c, b: distributed_norm(c, b)
        )
        expected = np.linalg.norm(decaying_matrix)
        for r in results:
            assert r == pytest.approx(expected, rel=1e-12)

    def test_single_rank_degenerates(self, decaying_matrix):
        norm = distributed_norm(SelfComm(), decaying_matrix)
        assert norm == pytest.approx(np.linalg.norm(decaying_matrix))

    def test_row_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            distributed_inner_products(
                SelfComm(),
                rng.standard_normal((5, 2)),
                rng.standard_normal((6, 2)),
            )


class TestReconstructionError:
    def test_matches_serial_formula(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        basis = u[:, :4]
        expected = np.linalg.norm(
            decaying_matrix - basis @ (basis.T @ decaying_matrix)
        ) / np.linalg.norm(decaying_matrix)

        def fn(comm, block):
            part = block_partition(decaying_matrix.shape[0], comm.size)
            basis_local = basis[part.slice_of(comm.rank), :]
            return distributed_reconstruction_error(comm, block, basis_local)

        results = spmd_over_blocks(decaying_matrix, 3, fn)
        for r in results:
            assert r == pytest.approx(expected, rel=1e-6, abs=1e-10)

    def test_absolute_variant(self, decaying_matrix):
        u, _, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        basis = u[:, :4]
        rel = distributed_reconstruction_error(
            SelfComm(), decaying_matrix, basis, relative=True
        )
        absolute = distributed_reconstruction_error(
            SelfComm(), decaying_matrix, basis, relative=False
        )
        assert absolute == pytest.approx(
            rel * np.linalg.norm(decaying_matrix), rel=1e-10
        )

    def test_full_basis_zero_error(self, rng):
        a = rng.standard_normal((40, 8))
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        err = distributed_reconstruction_error(SelfComm(), a, u)
        assert err < 1e-7


class TestDistributedPod:
    def test_matches_serial_pod(self, decaying_matrix):
        serial = pod(decaying_matrix, n_modes=4, subtract_mean=True)

        def fn(comm, block):
            result, u_local = distributed_pod(comm, block, n_modes=4)
            return result.singular_values, u_local, result.coefficients

        results = spmd_over_blocks(decaying_matrix, 3, fn)
        values = results[0][0]
        modes = np.concatenate([r[1] for r in results], axis=0)
        coeffs = results[0][2]

        assert np.allclose(values, serial.singular_values[:4], rtol=1e-8)
        dots = np.abs(np.einsum("ij,ij->j", serial.modes[:, :4], modes))
        assert np.allclose(dots, 1.0, atol=1e-6)
        # coefficients agree up to the same sign convention
        signs = np.sign(np.einsum("ij,ij->j", serial.modes[:, :4], modes))
        assert np.allclose(coeffs * signs[:, None], serial.coefficients, atol=1e-6)

    def test_mean_is_local(self, decaying_matrix):
        def fn(comm, block):
            result, _ = distributed_pod(comm, block, n_modes=2)
            return result.mean

        results = spmd_over_blocks(decaying_matrix, 2, fn)
        stacked = np.concatenate(results)
        assert np.allclose(stacked, decaying_matrix.mean(axis=1))

    def test_no_mean_subtraction(self, decaying_matrix):
        result, _ = distributed_pod(
            SelfComm(), decaying_matrix, n_modes=3, subtract_mean=False
        )
        assert np.allclose(result.mean, 0.0)

    def test_invalid_n_modes(self, decaying_matrix):
        with pytest.raises(ShapeError):
            distributed_pod(SelfComm(), decaying_matrix, n_modes=0)
