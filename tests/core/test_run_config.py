"""Typed run-config layer: SolverConfig / BackendConfig / StreamConfig /
RunConfig validation and lossless dict / JSON round-trips."""

import dataclasses

import pytest

from repro.config import (
    BackendConfig,
    ObservabilityConfig,
    RunConfig,
    SolverConfig,
    StreamConfig,
    SVDConfig,
)
from repro.exceptions import ConfigurationError


class TestSolverConfig:
    def test_defaults_extend_svd_config(self):
        cfg = SolverConfig()
        assert cfg.K == SVDConfig().K
        assert cfg.ff == SVDConfig().ff
        assert cfg.qr_variant == "gather"
        assert cfg.gather == "bcast"
        assert cfg.apmos_group_size is None
        assert cfg.workspace is True
        assert cfg.overlap is False

    def test_is_an_svd_config(self):
        assert isinstance(SolverConfig(), SVDConfig)

    def test_svd_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(K=0)
        with pytest.raises(ConfigurationError):
            SolverConfig(ff=1.5)

    @pytest.mark.parametrize(
        "field, value",
        [
            ("qr_variant", "sideways"),
            ("gather", "sometimes"),
            ("apmos_group_size", 0),
            ("workspace", "yes"),
            ("overlap", 1),
        ],
    )
    def test_run_option_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            SolverConfig(**{field: value})

    def test_replace_preserves_type(self):
        cfg = SolverConfig(K=4).replace(qr_variant="tree")
        assert isinstance(cfg, SolverConfig)
        assert (cfg.K, cfg.qr_variant) == (4, "tree")

    def test_from_svd_config_lifts_plain_config(self):
        lifted = SolverConfig.from_svd_config(
            SVDConfig(K=7, ff=0.5, seed=3), qr_variant="tree"
        )
        assert (lifted.K, lifted.ff, lifted.seed) == (7, 0.5, 3)
        assert lifted.qr_variant == "tree"

    def test_from_svd_config_passthrough_and_override(self):
        base = SolverConfig(K=5, gather="root", overlap=True)
        assert SolverConfig.from_svd_config(base) is base
        overridden = SolverConfig.from_svd_config(base, gather="none")
        # options override, the solver-level fields of the base survive
        assert overridden.gather == "none"
        assert overridden.overlap is True
        assert overridden.K == 5

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SolverConfig().K = 3


class TestBackendConfig:
    def test_defaults(self):
        cfg = BackendConfig()
        assert cfg.name == "threads"
        assert cfg.size == 1
        assert cfg.timeout == 120.0
        assert cfg.irecv_buffer_bytes == 1 << 24

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "bogus"},
            {"size": 0},
            {"size": True},
            {"name": "self", "size": 2},
            {"timeout": 0.0},
            {"irecv_buffer_bytes": 0},
            {"irecv_buffer_bytes": True},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackendConfig(**kwargs)

    def test_every_registered_backend_accepted(self):
        from repro.smpi import BACKENDS

        for name in BACKENDS:
            assert BackendConfig(name=name).name == name


class TestStreamConfig:
    def test_defaults(self):
        cfg = StreamConfig()
        assert cfg.source is None
        assert cfg.batch is None
        assert cfg.prefetch == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"source": 42},
            {"batch": 0},
            {"batch": True},
            {"prefetch": -1},
            {"prefetch": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            StreamConfig(**kwargs)


class TestObservabilityConfig:
    def test_defaults_off(self):
        cfg = ObservabilityConfig()
        assert cfg.metrics is False
        assert cfg.trace is False
        assert cfg.window_s == 60.0
        assert cfg.enabled is False

    @pytest.mark.parametrize(
        "kwargs, expect",
        [
            ({"metrics": True}, True),
            ({"trace": True}, True),
            ({"metrics": True, "trace": True}, True),
        ],
    )
    def test_enabled_when_any_component_on(self, kwargs, expect):
        assert ObservabilityConfig(**kwargs).enabled is expect

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"metrics": 1},
            {"trace": "yes"},
            {"window_s": 0.0},
            {"window_s": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ObservabilityConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ObservabilityConfig().metrics = True


class TestRunConfig:
    def test_sections_must_be_typed(self):
        with pytest.raises(ConfigurationError):
            RunConfig(solver={"K": 3})
        with pytest.raises(ConfigurationError):
            RunConfig(backend="threads")
        with pytest.raises(ConfigurationError):
            RunConfig(stream={"batch": 10})

    def test_dict_round_trip(self):
        cfg = RunConfig(
            solver=SolverConfig(
                K=12, ff=0.9, low_rank=True, seed=7,
                qr_variant="tree", gather="root", overlap=True,
            ),
            backend=BackendConfig(name="threads", size=4, timeout=30.0),
            stream=StreamConfig(source="/data/snaps.npz", batch=25, prefetch=3),
            obs=ObservabilityConfig(metrics=True, trace=True, window_s=10.0),
        )
        assert RunConfig.from_dict(cfg.to_dict()) == cfg

    def test_json_round_trip(self):
        cfg = RunConfig(
            solver=SolverConfig(K=3, apmos_group_size=2),
            backend=BackendConfig(name="self"),
            stream=StreamConfig(batch=10),
        )
        assert RunConfig.from_json(cfg.to_json()) == cfg
        assert RunConfig.from_json(cfg.to_json(indent=2)) == cfg

    def test_default_round_trip(self):
        assert RunConfig.from_dict(RunConfig().to_dict()) == RunConfig()

    def test_missing_sections_take_defaults(self):
        cfg = RunConfig.from_dict({"solver": {"K": 5}})
        assert cfg.solver.K == 5
        assert cfg.backend == BackendConfig()
        assert cfg.stream == StreamConfig()
        assert cfg.obs == ObservabilityConfig()

    def test_obs_section_round_trips(self):
        cfg = RunConfig(obs=ObservabilityConfig(metrics=True))
        payload = cfg.to_dict()
        assert payload["obs"] == {
            "metrics": True,
            "trace": False,
            "window_s": 60.0,
        }
        assert RunConfig.from_dict(payload) == cfg

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown section"):
            RunConfig.from_dict({"sovler": {}})

    def test_invalid_value_names_the_section(self):
        """`repro config validate` reports which section failed."""
        with pytest.raises(ConfigurationError, match="'obs' section"):
            RunConfig.from_dict({"obs": {"window_s": -5.0}})
        with pytest.raises(ConfigurationError, match="'solver' section"):
            RunConfig.from_dict({"solver": {"ff": 2.0}})

    def test_unknown_key_rejected_with_name(self):
        with pytest.raises(ConfigurationError, match="frobnicate"):
            RunConfig.from_dict({"backend": {"frobnicate": 1}})

    def test_invalid_value_surfaces_specific_error(self):
        with pytest.raises(ConfigurationError, match="forget factor"):
            RunConfig.from_dict({"solver": {"ff": 2.0}})

    @pytest.mark.parametrize(
        "payload",
        [
            {"backend": {"timeout": "abc"}},
            {"backend": {"timeout": "60"}},
            {"solver": {"seed": "x"}},
            {"solver": {"K": [3]}},
        ],
    )
    def test_wrong_typed_values_surface_configuration_error(self, payload):
        """Never a raw TypeError/ValueError out of from_dict — the CLI's
        `config validate` contract."""
        with pytest.raises(ConfigurationError):
            RunConfig.from_dict(payload)

    def test_bad_json_rejected(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            RunConfig.from_json("{nope")

    def test_save_load_round_trip(self, tmp_path):
        cfg = RunConfig(
            solver=SolverConfig(K=6, overlap=True),
            backend=BackendConfig(size=2),
            stream=StreamConfig(batch=40, prefetch=1),
        )
        path = cfg.save(tmp_path / "run.json")
        assert RunConfig.load(path) == cfg

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            RunConfig.load(tmp_path / "absent.json")

    def test_replace_sections(self):
        cfg = RunConfig().replace(backend=BackendConfig(size=3))
        assert cfg.backend.size == 3
        assert cfg.solver == SolverConfig()


class TestServingConfig:
    def test_defaults(self):
        from repro.config import ServingConfig

        cfg = ServingConfig()
        assert (cfg.host, cfg.port) == ("127.0.0.1", 8080)
        assert cfg.flush_deadline_ms == 25.0
        assert cfg.max_batch == 64
        assert cfg.result_cache_entries == 256
        assert cfg.tenants == ()
        assert not cfg.auth_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host": ""},
            {"port": -1},
            {"port": 70000},
            {"flush_deadline_ms": 0.0},
            {"flush_deadline_ms": -5.0},
            {"max_batch": 0},
            {"result_cache_entries": -1},
        ],
    )
    def test_validation(self, kwargs):
        from repro.config import ServingConfig

        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs)

    def test_tenants_coerce_from_dicts(self):
        from repro.config import ServingConfig, TenantSpec

        cfg = ServingConfig(
            tenants=[{"name": "acme", "key": "k1"}, {"name": "zeus", "key": "k2"}]
        )
        assert cfg.tenants == (
            TenantSpec(name="acme", key="k1"),
            TenantSpec(name="zeus", key="k2"),
        )
        assert cfg.auth_enabled

    @pytest.mark.parametrize(
        "tenants, match",
        [
            (({"name": "a", "key": "k"}, {"name": "a", "key": "j"}), "name"),
            (({"name": "a", "key": "k"}, {"name": "b", "key": "k"}), "key"),
        ],
    )
    def test_duplicate_tenants_rejected(self, tenants, match):
        from repro.config import ServingConfig

        with pytest.raises(ConfigurationError, match=match):
            ServingConfig(tenants=tenants)

    @pytest.mark.parametrize(
        "kwargs", [{"name": ""}, {"name": "bad name", "key": "k"}, {"name": "a"}]
    )
    def test_tenant_spec_validation(self, kwargs):
        from repro.config import TenantSpec

        with pytest.raises(ConfigurationError):
            TenantSpec(**kwargs)

    def test_serving_section_round_trips(self):
        from repro.config import ServingConfig

        cfg = RunConfig(
            serving=ServingConfig(
                port=0,
                flush_deadline_ms=12.5,
                max_batch=8,
                result_cache_entries=4,
                tenants=({"name": "acme", "key": "k1"},),
            )
        )
        payload = cfg.to_dict()
        assert payload["serving"]["tenants"] == [{"name": "acme", "key": "k1"}]
        assert RunConfig.from_dict(payload) == cfg
        assert RunConfig.from_json(cfg.to_json(indent=2)) == cfg

    def test_serving_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="serving"):
            RunConfig.from_dict({"serving": {"portt": 1}})

    def test_serving_invalid_tenant_named_in_error(self):
        with pytest.raises(ConfigurationError):
            RunConfig.from_dict(
                {"serving": {"tenants": [{"name": "", "key": "k"}]}}
            )
