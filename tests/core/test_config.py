"""Unit tests for SVDConfig validation."""

import pytest

from repro.config import (
    DEFAULT_FORGET_FACTOR,
    DEFAULT_R1,
    DEFAULT_R2,
    GATHER_POLICIES,
    QR_VARIANTS,
    SVDConfig,
    validate_parallel_options,
)
from repro.exceptions import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        cfg = SVDConfig()
        assert cfg.ff == DEFAULT_FORGET_FACTOR == 0.95
        assert cfg.r1 == DEFAULT_R1 == 50
        assert cfg.r2 == DEFAULT_R2 == 5
        assert cfg.low_rank is False

    def test_as_dict(self):
        d = SVDConfig(K=3).as_dict()
        assert d["K"] == 3
        assert set(d) >= {"K", "ff", "low_rank", "r1", "r2", "seed"}


class TestValidation:
    @pytest.mark.parametrize("k", [0, -1])
    def test_bad_k(self, k):
        with pytest.raises(ConfigurationError):
            SVDConfig(K=k)

    def test_k_must_be_int(self):
        with pytest.raises(ConfigurationError):
            SVDConfig(K=2.5)
        with pytest.raises(ConfigurationError):
            SVDConfig(K=True)

    @pytest.mark.parametrize("ff", [0.0, -0.5, 1.01])
    def test_bad_ff(self, ff):
        with pytest.raises(ConfigurationError):
            SVDConfig(ff=ff)

    def test_ff_boundary_one_allowed(self):
        assert SVDConfig(ff=1.0).ff == 1.0

    @pytest.mark.parametrize("field", ["r1", "r2"])
    def test_bad_truncations(self, field):
        with pytest.raises(ConfigurationError):
            SVDConfig(**{field: 0})

    def test_bad_oversampling(self):
        with pytest.raises(ConfigurationError):
            SVDConfig(oversampling=-1)

    def test_bad_power_iters(self):
        with pytest.raises(ConfigurationError):
            SVDConfig(power_iters=-1)

    def test_bad_seed(self):
        with pytest.raises(ConfigurationError):
            SVDConfig(seed=-1)

    def test_none_seed_allowed(self):
        assert SVDConfig(seed=None).seed is None


class TestReplace:
    def test_replace_creates_new(self):
        cfg = SVDConfig(K=3)
        cfg2 = cfg.replace(K=7)
        assert cfg.K == 3
        assert cfg2.K == 7

    def test_replace_validates(self):
        with pytest.raises(ConfigurationError):
            SVDConfig().replace(ff=2.0)

    def test_frozen(self):
        cfg = SVDConfig()
        with pytest.raises(Exception):
            cfg.K = 9


class TestParallelOptions:
    def test_valid_combinations_pass(self):
        for qr in QR_VARIANTS:
            for gather in GATHER_POLICIES:
                validate_parallel_options(qr, gather, None)
                validate_parallel_options(qr, gather, 4)

    def test_bad_qr_variant(self):
        with pytest.raises(ConfigurationError):
            validate_parallel_options("sideways", "bcast", None)

    def test_bad_gather_policy(self):
        with pytest.raises(ConfigurationError):
            validate_parallel_options("gather", "sometimes", None)

    def test_bad_group_size(self):
        with pytest.raises(ConfigurationError):
            validate_parallel_options("gather", "bcast", 0)
        with pytest.raises(ConfigurationError):
            validate_parallel_options("gather", "bcast", True)
