"""Lazy mode assembly in ParSVDParallel.

The tentpole behavior: ``incorporate_data`` only invalidates the cached
gathered modes; the gather+bcast collective runs on the first ``.modes``
access after an update.  A pure streaming loop therefore performs zero
mode-assembly communication — asserted here via tracer call counts.
"""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.smpi import run_spmd
from repro.utils.partition import block_partition

M = 200
NRANKS = 3


def _gatherv_count(tracer):
    return sum(1 for r in tracer.records if r.op == "gatherv")


@pytest.fixture
def wide_matrix(rng):
    u, _ = np.linalg.qr(rng.standard_normal((M, 20)))
    v, _ = np.linalg.qr(rng.standard_normal((220, 20)))
    return (u * 0.6 ** np.arange(20)) @ v.T


class TestZeroGatherStreaming:
    def test_streaming_loop_defers_all_gathers(self, wide_matrix):
        """>= 10 incorporate_data calls with gather='bcast' move zero
        gatherv traffic until .modes is first read (acceptance criterion)."""

        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=0.95, gather="bcast")
            svd.initialize(block[:, :20])
            for start in range(20, 220, 20):
                svd.incorporate_data(block[:, start : start + 20])
            assert svd.iteration == 11
            return svd

        results, tracers = run_spmd(NRANKS, job, trace=True)
        for tracer in tracers:
            assert _gatherv_count(tracer) == 0

    def test_first_modes_read_triggers_exactly_one_gather(self, wide_matrix):
        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=0.95, gather="bcast")
            svd.initialize(block[:, :20])
            for start in range(20, 220, 20):
                svd.incorporate_data(block[:, start : start + 20])
            before = _gatherv_count(comm)
            shape = svd.modes.shape
            after_first = _gatherv_count(comm)
            _ = svd.modes  # cached: no second collective
            _ = svd.modes
            after_repeat = _gatherv_count(comm)
            return before, after_first, after_repeat, shape

        results, _ = run_spmd(NRANKS, job, trace=True)
        for before, after_first, after_repeat, shape in results:
            assert before == 0
            assert after_first == 1
            assert after_repeat == 1
            assert shape == (M, 4)

    def test_update_after_read_invalidates_cache(self, wide_matrix):
        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0, gather="bcast")
            svd.initialize(block[:, :40])
            first = np.array(svd.modes)
            assert svd.modes_current
            svd.incorporate_data(block[:, 40:80])
            assert not svd.modes_current
            second = svd.modes
            assert svd.modes_current
            return float(np.max(np.abs(first - second))), _gatherv_count(comm)

        results, _ = run_spmd(NRANKS, job, trace=True)
        for drift, gathers in results:
            assert drift > 0.0  # the factorization really moved
            assert gathers == 2  # one per read epoch, none per update

    def test_gather_none_never_communicates(self, wide_matrix):
        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, gather="none")
            svd.initialize(block[:, :40])
            svd.incorporate_data(block[:, 40:80])
            assert svd.modes.shape[0] == part.counts[comm.rank]
            return _gatherv_count(comm)

        results, _ = run_spmd(NRANKS, job, trace=True)
        assert results == [0] * NRANKS

    def test_root_policy_assembles_on_root_only(self, wide_matrix):
        """All ranks participate in the lazy collective; non-roots then
        raise and fall back to local_modes."""
        from repro.exceptions import ShapeError

        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, gather="root").initialize(
                block[:, :40]
            )
            if comm.rank == 0:
                return svd.modes.shape
            with pytest.raises(ShapeError):
                _ = svd.modes
            return svd.local_modes.shape

        results = run_spmd(NRANKS, job)
        part = block_partition(M, NRANKS)
        assert results[0] == (M, 3)
        assert results[1] == (part.counts[1], 3)

    def test_assemble_modes_is_explicit_collective(self, wide_matrix):
        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, gather="root").initialize(
                block[:, :40]
            )
            out = svd.assemble_modes()
            return None if out is None else out.shape

        results = run_spmd(NRANKS, job)
        assert results[0] == (M, 3)
        assert results[1] is None and results[2] is None

    def test_all_ranks_agree_after_lazy_bcast(self, wide_matrix):
        def job(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0)
            svd.initialize(block[:, :40])
            svd.incorporate_data(block[:, 40:80])
            return svd.modes, svd.singular_values

        results = run_spmd(NRANKS, job)
        ref_modes, ref_values = results[0]
        for modes, values in results[1:]:
            assert np.array_equal(modes, ref_modes)
            assert np.array_equal(values, ref_values)


class TestLazyCheckpointRestart:
    def test_roundtrip_without_intermediate_reads(self, wide_matrix, tmp_path):
        """checkpoint -> restart -> continue under the lazy path equals an
        uninterrupted stream, with zero gathers before the final read."""
        base = tmp_path / "lazy"

        def phase1(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=0.95, seed=0)
            svd.initialize(block[:, :40])
            for start in range(40, 80, 20):
                svd.incorporate_data(block[:, start : start + 20])
            svd.save_checkpoint(base)
            return _gatherv_count(comm)

        def phase2(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel.from_checkpoint(comm, base)
            for start in range(80, 220, 20):
                svd.incorporate_data(block[:, start : start + 20])
            gathers_before_read = _gatherv_count(comm)
            return svd.modes, svd.singular_values, gathers_before_read

        def straight(comm):
            part = block_partition(M, comm.size)
            block = wide_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=0.95, seed=0)
            svd.initialize(block[:, :40])
            for start in range(40, 220, 20):
                svd.incorporate_data(block[:, start : start + 20])
            return svd.modes, svd.singular_values

        phase1_gathers, _ = run_spmd(NRANKS, phase1, trace=True)
        assert [g for g in phase1_gathers] == [0] * NRANKS

        resumed, _ = run_spmd(NRANKS, phase2, trace=True)
        reference = run_spmd(NRANKS, straight)

        modes_r, values_r, gathers = resumed[0]
        modes_s, values_s = reference[0]
        assert gathers == 0
        assert np.allclose(values_r, values_s, rtol=1e-12)
        assert np.allclose(modes_r, modes_s, atol=1e-12)


class TestCheckpointKnobPersistence:
    def test_parallel_knobs_roundtrip(self, decaying_matrix, tmp_path):
        """qr_variant / gather / apmos_group_size survive a restart."""
        base = tmp_path / "knobs"

        def save(comm):
            part = block_partition(M, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(
                comm,
                K=3,
                qr_variant="tree",
                gather="root",
                apmos_group_size=2,
            )
            svd.initialize(block)
            svd.save_checkpoint(base)

        def load(comm):
            svd = ParSVDParallel.from_checkpoint(comm, base)
            return (
                svd._qr_variant,
                svd._gather,
                svd._apmos_group_size,
            )

        run_spmd(4, save)
        results = run_spmd(4, load)
        assert results == [("tree", "root", 2)] * 4

    def test_explicit_override_beats_recorded(self, decaying_matrix, tmp_path):
        base = tmp_path / "override"

        def save(comm):
            svd = ParSVDParallel(comm, K=3, qr_variant="tree", gather="none")
            svd.initialize(decaying_matrix)
            svd.save_checkpoint(base)

        def load(comm):
            svd = ParSVDParallel.from_checkpoint(
                comm, base, qr_variant="gather", gather="bcast"
            )
            return svd._qr_variant, svd._gather

        run_spmd(1, save)
        assert run_spmd(1, load) == [("gather", "bcast")]

    def test_restored_two_level_matches_straight_run(
        self, decaying_matrix, tmp_path
    ):
        """The regression this fixes: a restored instance used to fall back
        silently to single-level APMOS."""
        base = tmp_path / "twolevel"

        def save(comm):
            part = block_partition(M, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, ff=1.0, apmos_group_size=2)
            svd.initialize(block[:, :20])
            svd.save_checkpoint(base)

        def resume(comm):
            part = block_partition(M, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel.from_checkpoint(comm, base)
            assert svd._apmos_group_size == 2
            svd.incorporate_data(block[:, 20:40])
            return svd.singular_values

        run_spmd(4, save)
        values = run_spmd(4, resume)[0]

        serial = ParSVDSerial(K=3, ff=1.0)
        serial.initialize(decaying_matrix[:, :20])
        serial.incorporate_data(decaying_matrix[:, 20:40])
        assert np.allclose(values, serial.singular_values, rtol=1e-6)
