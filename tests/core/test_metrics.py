"""Unit tests for the comparison metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    ModeComparison,
    compare_modes,
    mode_error_curve,
    mode_errors,
    spectrum_relative_error,
)
from repro.exceptions import ShapeError


class TestModeErrors:
    def test_zero_for_identical(self, rng):
        modes = rng.standard_normal((50, 3))
        assert np.allclose(mode_errors(modes, modes), 0.0)

    def test_sign_flip_invisible(self, rng):
        modes = rng.standard_normal((50, 3))
        flipped = modes * np.array([1, -1, 1])
        assert np.allclose(mode_errors(modes, flipped), 0.0)

    def test_scaled_column_detected(self, rng):
        modes = rng.standard_normal((50, 2))
        bad = modes.copy()
        bad[:, 1] *= 2.0
        errors = mode_errors(modes, bad)
        assert errors[0] < 1e-12
        assert errors[1] == pytest.approx(1.0, rel=1e-9)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            mode_errors(rng.standard_normal((5, 2)), rng.standard_normal((6, 2)))

    def test_zero_reference_column(self):
        ref = np.zeros((10, 1))
        cand = np.ones((10, 1))
        err = mode_errors(ref, cand)
        assert err[0] == pytest.approx(np.sqrt(10))


class TestModeErrorCurve:
    def test_pointwise_difference(self, rng):
        ref = rng.standard_normal((30, 2))
        cand = ref.copy()
        cand[5, 0] += 0.5
        curve = mode_error_curve(ref, cand, 0)
        assert curve[5] == pytest.approx(-0.5)
        assert np.allclose(np.delete(curve, 5), 0.0)

    def test_sign_aligned_before_diff(self, rng):
        ref = rng.standard_normal((30, 2))
        curve = mode_error_curve(ref, -ref, 1)
        assert np.allclose(curve, 0.0)

    def test_mode_out_of_range(self, rng):
        ref = rng.standard_normal((10, 2))
        with pytest.raises(ShapeError):
            mode_error_curve(ref, ref, 5)


class TestSpectrumError:
    def test_zero_for_identical(self):
        s = np.array([3.0, 2.0, 1.0])
        assert np.allclose(spectrum_relative_error(s, s), 0.0)

    def test_relative(self):
        s = np.array([2.0, 1.0])
        c = np.array([2.2, 1.0])
        err = spectrum_relative_error(s, c)
        assert err[0] == pytest.approx(0.1)
        assert err[1] == 0.0

    def test_zero_reference_uses_absolute(self):
        err = spectrum_relative_error(np.array([0.0]), np.array([0.5]))
        assert err[0] == pytest.approx(0.5)

    def test_length_mismatch(self):
        with pytest.raises(ShapeError):
            spectrum_relative_error(np.ones(3), np.ones(4))


class TestCompareModes:
    def test_perfect_agreement(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        s = np.linspace(5, 1, 5)
        comparison = compare_modes(q, s, q * np.array([1, -1, 1, -1, 1]), s)
        assert comparison.agrees()
        assert comparison.worst_mode_error < 1e-12
        assert comparison.max_subspace_angle_deg < 1e-3

    def test_disagreement_detected(self, rng):
        q1, _ = np.linalg.qr(rng.standard_normal((40, 3)))
        q2, _ = np.linalg.qr(rng.standard_normal((40, 3)))
        s = np.ones(3)
        comparison = compare_modes(q1, s, q2, s)
        assert not comparison.agrees()
        assert comparison.worst_mode_error > 0.1

    def test_n_modes_limits(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        s = np.linspace(5, 1, 5)
        bad = q.copy()
        bad[:, 4] = q[:, 0]  # corrupt only the last mode
        comparison = compare_modes(q, s, bad, s, n_modes=2)
        assert comparison.agrees()
        assert comparison.mode_rel_errors.shape == (2,)

    def test_mismatched_widths_use_common(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((40, 5)))
        s = np.linspace(5, 1, 5)
        comparison = compare_modes(q, s, q[:, :3], s[:3])
        assert comparison.mode_rel_errors.shape == (3,)

    def test_invalid_n_modes(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((10, 2)))
        with pytest.raises(ShapeError):
            compare_modes(q, np.ones(2), q, np.ones(2), n_modes=0)

    def test_dataclass_properties(self):
        comparison = ModeComparison(
            mode_rel_errors=np.array([1e-8, 2e-8]),
            spectrum_rel_errors=np.array([1e-9]),
            max_subspace_angle_deg=1e-5,
        )
        assert comparison.worst_mode_error == pytest.approx(2e-8)
        assert comparison.worst_spectrum_error == pytest.approx(1e-9)
