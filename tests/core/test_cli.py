"""CLI smoke tests (fast parameterisations)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_burgers_defaults(self):
        args = build_parser().parse_args(["burgers"])
        assert args.nx == 2048
        assert args.ranks == 4
        assert args.ff == 0.95

    def test_scaling_mode_choices(self):
        args = build_parser().parse_args(["scaling", "--mode", "strong"])
        assert args.mode == "strong"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaling", "--mode", "sideways"])

    def test_serve_query_defaults(self):
        args = build_parser().parse_args(["serve-query"])
        assert args.nx == 512
        assert args.queries == 24
        assert args.window == 8
        assert args.store is None
        assert args.backend == "threads"

    def test_backend_choices(self):
        args = build_parser().parse_args(["burgers"])
        assert args.backend == "threads"
        args = build_parser().parse_args(["era5", "--backend", "self"])
        assert args.backend == "self"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["burgers", "--backend", "bogus"])


class TestConfigSubcommand:
    def test_dump_is_valid_run_config_json(self, capsys):
        from repro.api import RunConfig

        assert main(
            [
                "config", "dump",
                "--ranks", "4", "--modes", "8", "--ff", "1.0",
                "--batch", "50", "--qr-variant", "tree", "--overlap",
                "--prefetch", "2", "--seed", "3", "--low-rank",
            ]
        ) == 0
        cfg = RunConfig.from_json(capsys.readouterr().out)
        assert cfg.solver.K == 8
        assert cfg.solver.qr_variant == "tree"
        assert cfg.solver.overlap is True
        assert cfg.solver.low_rank is True
        assert cfg.solver.seed == 3
        assert cfg.backend.size == 4
        assert cfg.stream.batch == 50
        assert cfg.stream.prefetch == 2

    def test_dump_self_backend_forces_single_rank(self, capsys):
        from repro.api import RunConfig

        assert main(["config", "dump", "--backend", "self", "--ranks", "9"]) == 0
        cfg = RunConfig.from_json(capsys.readouterr().out)
        assert (cfg.backend.name, cfg.backend.size) == ("self", 1)

    def test_dump_validate_round_trip(self, capsys, tmp_path):
        assert main(["config", "dump", "--modes", "6"]) == 0
        dumped = capsys.readouterr().out
        path = tmp_path / "run.json"
        path.write_text(dumped)
        assert main(["config", "validate", str(path)]) == 0
        assert "valid RunConfig" in capsys.readouterr().out

    def test_validate_bad_file_exits_nonzero_with_specific_error(
        self, capsys, tmp_path
    ):
        path = tmp_path / "bad.json"
        path.write_text('{"solver": {"K": -1}}')
        assert main(["config", "validate", str(path)]) == 2
        err = capsys.readouterr().err
        assert "K must be positive" in err

    def test_validate_unknown_key_named(self, capsys, tmp_path):
        path = tmp_path / "unknown.json"
        path.write_text('{"backend": {"frobnicate": 1}}')
        assert main(["config", "validate", str(path)]) == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_validate_missing_file_exits_nonzero(self, capsys, tmp_path):
        assert main(["config", "validate", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_config_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["config"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PyParSVD reproduction" in out
        assert "K=10" in out
        assert "Session" in out

    def test_burgers_small(self, capsys):
        code = main(
            [
                "burgers",
                "--nx", "256", "--nt", "60", "--batch", "20",
                "--ranks", "2", "--modes", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_era5_small(self, capsys):
        code = main(
            [
                "era5",
                "--nlat", "12", "--nlon", "24", "--nt", "120",
                "--ranks", "2", "--modes", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        assert "best-match=seasonal" in out

    def test_burgers_self_backend(self, capsys):
        code = main(
            [
                "burgers",
                "--nx", "256", "--nt", "60", "--batch", "20",
                "--modes", "4", "--backend", "self",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 ranks, backend=self" in out
        assert "PASS" in out

    def test_serve_query_small(self, capsys, tmp_path):
        code = main(
            [
                "serve-query",
                "--nx", "128", "--nt", "40", "--batch", "20",
                "--modes", "3", "--ranks", "2", "--queries", "6",
                "--window", "3", "--store", str(tmp_path / "store"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "published 'burgers' v1" in out
        assert "PASS" in out
        # The chosen store directory was actually used.
        assert (tmp_path / "store" / "manifest.json").exists()

    def test_serve_query_self_backend(self, capsys):
        code = main(
            [
                "serve-query",
                "--nx", "128", "--nt", "40", "--batch", "20",
                "--modes", "3", "--queries", "4", "--backend", "self",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 shards, backend=self" in out
        assert "PASS" in out

    def test_scaling_weak_uncalibrated(self, capsys):
        code = main(["scaling", "--mode", "weak", "--max-nodes", "4", "--no-calibrate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "efficiency" in out

    def test_scaling_strong_uncalibrated(self, capsys):
        code = main(
            ["scaling", "--mode", "strong", "--max-nodes", "2", "--no-calibrate"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "turnover" in out


class TestTwoLevelScalingFlag:
    def test_group_size_flag(self, capsys):
        code = main(
            [
                "scaling", "--mode", "weak", "--max-nodes", "4",
                "--no-calibrate", "--group-size", "16",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "two-level, groups of 16" in out


class TestServeQueryStoreLifecycle:
    def test_default_store_is_temporary_and_cleaned_up(self, capsys):
        import pathlib
        import re

        code = main(
            [
                "serve-query",
                "--nx", "128", "--nt", "40", "--batch", "20",
                "--modes", "3", "--queries", "4", "--backend", "self",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        match = re.search(r"store: (\S+) \(temporary, removed on exit\)", out)
        assert match, out
        assert not pathlib.Path(match.group(1)).exists()


class TestConfigFileOption:
    def _write_config(self, tmp_path):
        from repro.api import (
            BackendConfig,
            RunConfig,
            SolverConfig,
            StreamConfig,
        )

        cfg = RunConfig(
            solver=SolverConfig(K=4, ff=1.0, r1=50),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=20),
        )
        path = tmp_path / "run.json"
        path.write_text(cfg.to_json(indent=2))
        return path

    def test_all_run_subcommands_accept_config(self):
        # Every subcommand that builds a RunConfig takes --config;
        # `scaling` (analytic perf model, no RunConfig) is the exception.
        for command in ("burgers", "era5", "serve-query", "profile", "chaos"):
            args = build_parser().parse_args([command, "--config", "run.json"])
            assert args.config == "run.json"
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--config", "run.json"]
        )
        assert args.config == "run.json"

    def test_override_map_covers_registered_subparsers(self):
        from repro.cli import _CONFIG_OVERRIDES

        parser = build_parser()
        assert set(_CONFIG_OVERRIDES) == set(parser._repro_subparsers)

    def test_explicit_dests_detection(self):
        from repro.cli import _explicit_dests

        parser = build_parser()
        argv = ["burgers", "--ranks", "2", "--ff=1.0", "--nx", "256"]
        explicit = _explicit_dests(parser, "burgers", argv)
        # Both "--flag value" and "--flag=value" spellings count.
        assert {"ranks", "ff", "nx"} <= explicit
        assert "modes" not in explicit
        assert "batch" not in explicit

    def test_file_values_win_when_flags_are_defaulted(self, tmp_path):
        from repro.cli import _config_from_file

        parser = build_parser()
        path = self._write_config(tmp_path)
        args = parser.parse_args(["burgers", "--config", str(path)])
        args._explicit = set()
        cfg = _config_from_file(args, "burgers")
        assert cfg.solver.K == 4
        assert cfg.solver.ff == 1.0
        assert cfg.backend.size == 2
        assert cfg.stream.batch == 20

    def test_explicit_flags_override_file(self, tmp_path):
        from repro.cli import _config_from_file, _explicit_dests

        parser = build_parser()
        path = self._write_config(tmp_path)
        argv = ["burgers", "--config", str(path), "--modes", "6", "--ranks", "1"]
        args = parser.parse_args(argv)
        args._explicit = _explicit_dests(parser, "burgers", argv)
        cfg = _config_from_file(args, "burgers")
        assert cfg.solver.K == 6
        assert cfg.backend.size == 1
        # Untouched flags keep the file's values, not argparse defaults.
        assert cfg.solver.ff == 1.0
        assert cfg.stream.batch == 20

    def test_explicit_self_backend_forces_single_rank(self, tmp_path):
        from repro.cli import _config_from_file

        parser = build_parser()
        path = self._write_config(tmp_path)
        args = parser.parse_args(
            ["burgers", "--config", str(path), "--backend", "self"]
        )
        args._explicit = {"backend"}
        cfg = _config_from_file(args, "burgers")
        assert (cfg.backend.name, cfg.backend.size) == ("self", 1)

    def test_burgers_runs_from_config_file(self, capsys, tmp_path):
        path = self._write_config(tmp_path)
        code = main(
            ["burgers", "--nx", "256", "--nt", "60", "--config", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "K=4, 2 ranks, backend=threads" in out
        assert "PASS" in out

    def test_burgers_flag_overrides_config_file(self, capsys, tmp_path):
        path = self._write_config(tmp_path)
        code = main(
            [
                "burgers", "--nx", "256", "--nt", "60",
                "--config", str(path), "--modes", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "K=3, 2 ranks, backend=threads" in out
        assert "PASS" in out

    def test_serve_query_runs_from_config_file(self, capsys, tmp_path):
        path = self._write_config(tmp_path)
        code = main(
            [
                "serve-query",
                "--nx", "128", "--nt", "40", "--queries", "4",
                "--store", str(tmp_path / "store"),
                "--config", str(path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out
        # The file's K=4 drove the published basis, not the --modes default.
        assert "4 modes" in out


class TestServeSubcommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "--store", "basedir"])
        assert args.store == "basedir"
        assert (args.host, args.port) == ("127.0.0.1", 8080)
        assert args.deadline_ms == 25.0
        assert args.max_batch == 64
        assert args.cache_entries == 256
        assert args.tenant is None
        assert not args.seed_demo

    def test_store_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_tenant_flag_repeatable(self):
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--tenant", "a:k1", "--tenant", "b:k2"]
        )
        assert args.tenant == ["a:k1", "b:k2"]

    def test_tenant_parse(self):
        from repro.cli import _parse_tenants
        from repro.config import TenantSpec
        from repro.exceptions import ConfigurationError

        assert _parse_tenants(["acme:k:with:colons"]) == (
            TenantSpec(name="acme", key="k:with:colons"),
        )
        for bad in ("nameonly", ":key", "name:"):
            with pytest.raises(ConfigurationError, match="NAME:KEY"):
                _parse_tenants([bad])

    def test_malformed_tenant_is_a_user_error(self, capsys, tmp_path):
        code = main(
            ["serve", "--store", str(tmp_path), "--tenant", "nocolon"]
        )
        assert code == 2
        assert "NAME:KEY" in capsys.readouterr().err

    def test_config_file_merge_covers_serving_section(self, tmp_path):
        from repro.cli import _config_from_file
        from repro.config import RunConfig, ServingConfig

        cfg = RunConfig(
            serving=ServingConfig(
                port=9999,
                flush_deadline_ms=7.0,
                max_batch=5,
                tenants=({"name": "acme", "key": "k"},),
            )
        )
        path = tmp_path / "serve.json"
        path.write_text(cfg.to_json(indent=2))
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--store", "s", "--config", str(path), "--port", "0"]
        )
        args._explicit = {"port"}
        merged = _config_from_file(args, "serve")
        # Explicit flag wins; untouched knobs keep the file's values.
        assert merged.serving.port == 0
        assert merged.serving.flush_deadline_ms == 7.0
        assert merged.serving.max_batch == 5
        assert merged.serving.tenants[0].name == "acme"


class TestProfileConfigOption:
    def test_profile_runs_from_config_file(self, capsys, tmp_path):
        from repro.config import RunConfig, SolverConfig, StreamConfig
        from repro.api import BackendConfig

        cfg = RunConfig(
            solver=SolverConfig(K=4, ff=1.0),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=16),
        )
        path = tmp_path / "run.json"
        path.write_text(cfg.to_json(indent=2))
        code = main(
            [
                "profile", "--config", str(path),
                "--steps", "3", "--ndof", "128",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        # The file's K/ranks/batch drove the run, not the flag defaults.
        assert "K=4, 2 ranks" in out
        assert "128x48 synthetic stream" in out
