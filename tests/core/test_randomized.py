"""Unit tests for the randomized linear algebra kernels."""

import numpy as np
import pytest

from repro.core.randomized import (
    gaussian_sketch,
    low_rank_svd,
    randomized_range_finder,
    randomized_svd,
    relative_spectral_error,
)
from repro.data.synthetic import (
    matrix_with_spectrum,
    spectrum_exponential,
    spectrum_polynomial,
)
from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.linalg import orthogonality_defect


class TestGaussianSketch:
    def test_shape(self):
        assert gaussian_sketch(30, 5, rng=0).shape == (30, 5)

    def test_reproducible(self):
        assert np.array_equal(gaussian_sketch(10, 3, rng=1), gaussian_sketch(10, 3, rng=1))

    def test_zero_mean_unit_variance(self):
        omega = gaussian_sketch(2000, 50, rng=0)
        assert abs(omega.mean()) < 0.01
        assert abs(omega.std() - 1.0) < 0.01

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            gaussian_sketch(0, 3)
        with pytest.raises(ConfigurationError):
            gaussian_sketch(3, -1)


class TestRangeFinder:
    def test_orthonormal_basis(self, rng):
        a = rng.standard_normal((100, 40))
        q = randomized_range_finder(a, 10, rng=0)
        assert orthogonality_defect(q) < 1e-12

    def test_captures_exact_low_rank(self, rng):
        a, *_ = matrix_with_spectrum(80, 40, spectrum_exponential(5, 0.5), rng=rng)
        q = randomized_range_finder(a, 5, oversampling=5, rng=0)
        # projection residual must vanish for an exactly rank-5 matrix
        residual = a - q @ (q.T @ a)
        assert np.linalg.norm(residual) < 1e-10 * np.linalg.norm(a)

    def test_column_count_clipped(self, rng):
        a = rng.standard_normal((20, 6))
        q = randomized_range_finder(a, 10, oversampling=10, rng=0)
        assert q.shape[1] <= 6

    def test_power_iterations_improve_slow_decay(self):
        a, *_ = matrix_with_spectrum(
            300, 150, spectrum_polynomial(150, 0.5), rng=3
        )
        def err(q):
            return np.linalg.norm(a - q @ (q.T @ a))

        q0 = randomized_range_finder(a, 10, oversampling=5, power_iters=0, rng=0)
        q2 = randomized_range_finder(a, 10, oversampling=5, power_iters=2, rng=0)
        assert err(q2) <= err(q0)

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ConfigurationError):
            randomized_range_finder(rng.standard_normal((5, 5)), 0)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            randomized_range_finder(np.ones(5), 2)


class TestRandomizedSvd:
    def test_exact_on_low_rank(self, rng):
        spectrum = spectrum_exponential(8, 0.6)
        a, u_true, s_true, _ = matrix_with_spectrum(120, 60, spectrum, rng=rng)
        u, s, vt = randomized_svd(a, 8, oversampling=8, rng=0)
        assert np.allclose(s, s_true, rtol=1e-9)
        assert np.allclose((u * s) @ vt, a, atol=1e-9)

    def test_returns_requested_rank(self, rng):
        a = rng.standard_normal((50, 30))
        u, s, vt = randomized_svd(a, 7, rng=0)
        assert u.shape == (50, 7)
        assert s.shape == (7,)
        assert vt.shape == (7, 30)

    def test_descending_values(self, rng):
        a = rng.standard_normal((60, 25))
        _, s, _ = randomized_svd(a, 10, rng=0)
        assert np.all(np.diff(s) <= 0)

    def test_orthonormal_factors(self, rng):
        a = rng.standard_normal((60, 25))
        u, _, vt = randomized_svd(a, 10, rng=0)
        assert orthogonality_defect(u) < 1e-10
        assert orthogonality_defect(vt.T) < 1e-10

    def test_reproducible_with_seed(self, rng):
        a = rng.standard_normal((40, 20))
        u1, s1, _ = randomized_svd(a, 5, rng=42)
        u2, s2, _ = randomized_svd(a, 5, rng=42)
        assert np.array_equal(u1, u2)
        assert np.array_equal(s1, s2)

    def test_error_bounded_by_tail(self, rng):
        """Randomized error must stay within a small factor of the optimal
        rank-k error (Halko et al. expectation bound)."""
        a, _, s_true, _ = matrix_with_spectrum(
            200, 100, spectrum_exponential(40, 0.8), rng=rng
        )
        k = 10
        u, s, vt = randomized_svd(a, k, oversampling=10, power_iters=1, rng=0)
        err = np.linalg.norm(a - (u * s) @ vt)
        optimal = np.linalg.norm(s_true[k:])
        assert err <= 3.0 * optimal


class TestLowRankSvd:
    def test_matches_paper_signature(self, rng):
        a = rng.standard_normal((40, 30))
        u, s = low_rank_svd(a, 6, rng=0)
        assert u.shape == (40, 6)
        assert s.shape == (6,)

    def test_paper_defaults_no_oversampling(self, rng):
        """Defaults (oversampling=0) must still produce exactly K vectors."""
        a = rng.standard_normal((40, 30))
        u, s = low_rank_svd(a, 6, rng=0)
        assert u.shape[1] == 6


class TestRelativeSpectralError:
    def test_zero_for_exact(self, rng):
        a = rng.standard_normal((30, 12))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        assert relative_spectral_error(a, u, s, vt) < 1e-12

    def test_recovers_vt_by_projection(self, rng):
        a = rng.standard_normal((30, 12))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        assert relative_spectral_error(a, u, s) < 1e-10

    def test_zero_matrix(self):
        a = np.zeros((5, 3))
        u = np.zeros((5, 2))
        s = np.zeros(2)
        assert relative_spectral_error(a, u, s) == 0.0

    def test_truncation_error_positive(self, rng):
        a = rng.standard_normal((30, 12))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        err = relative_spectral_error(a, u[:, :3], s[:3], vt[:3])
        assert 0 < err < 1
