"""Unit tests for ParSVDSerial."""

import numpy as np
import pytest

from repro import ParSVDSerial, SVDConfig
from repro.exceptions import (
    ConfigurationError,
    NotInitializedError,
    ShapeError,
)
from repro.utils.linalg import align_signs


class TestConstruction:
    def test_defaults_from_paper(self):
        svd = ParSVDSerial(K=10)
        assert svd.K == 10
        assert svd.ff == 0.95
        assert svd.low_rank is False

    def test_config_object(self):
        cfg = SVDConfig(K=4, ff=0.8, low_rank=True)
        svd = ParSVDSerial(config=cfg)
        assert svd.K == 4 and svd.ff == 0.8 and svd.low_rank

    def test_kwargs_override_config(self):
        svd = ParSVDSerial(K=7, config=SVDConfig(K=3, ff=0.5))
        assert svd.K == 7
        assert svd.ff == 0.5

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            ParSVDSerial(K=0)

    def test_invalid_ff(self):
        with pytest.raises(ConfigurationError):
            ParSVDSerial(K=3, ff=1.5)


class TestLifecycle:
    def test_results_before_initialize_raise(self):
        svd = ParSVDSerial(K=3)
        with pytest.raises(NotInitializedError):
            _ = svd.modes
        with pytest.raises(NotInitializedError):
            _ = svd.singular_values

    def test_incorporate_before_initialize_raises(self, decaying_matrix):
        svd = ParSVDSerial(K=3)
        with pytest.raises(NotInitializedError):
            svd.incorporate_data(decaying_matrix)

    def test_initialize_returns_self(self, decaying_matrix):
        svd = ParSVDSerial(K=3)
        assert svd.initialize(decaying_matrix) is svd
        assert svd.initialized

    def test_iteration_counts(self, decaying_matrix):
        svd = ParSVDSerial(K=3)
        svd.initialize(decaying_matrix[:, :10])
        svd.incorporate_data(decaying_matrix[:, 10:20])
        svd.incorporate_data(decaying_matrix[:, 20:30])
        assert svd.iteration == 3
        assert svd.n_seen == 30

    def test_row_count_locked_after_initialize(self, decaying_matrix):
        svd = ParSVDSerial(K=3).initialize(decaying_matrix[:, :10])
        with pytest.raises(ShapeError):
            svd.incorporate_data(np.zeros((11, 4)))

    def test_fit_stream(self, decaying_matrix):
        from repro.data import array_stream

        svd = ParSVDSerial(K=4, ff=1.0)
        svd.fit_stream(array_stream(decaying_matrix, 8))
        assert svd.iteration == 5
        assert svd.modes.shape == (200, 4)

    def test_fit_stream_empty_raises(self):
        svd = ParSVDSerial(K=3)
        with pytest.raises(ShapeError):
            svd.fit_stream([])


class TestNumerics:
    def test_matches_batch_svd_with_ff_one(self, rng):
        # exact-rank data (rank 4 <= K=5): streaming with ff=1 is exact
        data = rng.standard_normal((150, 4)) @ rng.standard_normal((4, 40))
        svd = ParSVDSerial(K=5, ff=1.0)
        svd.initialize(data[:, :10])
        for j in range(10, 40, 10):
            svd.incorporate_data(data[:, j : j + 10])
        u, s, _ = np.linalg.svd(data, full_matrices=False)
        assert np.allclose(svd.singular_values[:4], s[:4], rtol=1e-8)
        aligned = align_signs(u[:, :4], svd.modes[:, :4])
        assert np.max(np.abs(aligned - u[:, :4])) < 1e-6

    def test_truncated_streaming_close_to_batch(self, decaying_matrix):
        # K < rank: approximate, but leading values/modes remain accurate
        svd = ParSVDSerial(K=5, ff=1.0)
        svd.initialize(decaying_matrix[:, :10])
        for j in range(10, 40, 10):
            svd.incorporate_data(decaying_matrix[:, j : j + 10])
        _, s, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        rel = np.abs(svd.singular_values - s[:5]) / s[:5]
        assert rel[0] < 1e-8
        assert np.max(rel) < 5e-3

    def test_shapes(self, decaying_matrix):
        svd = ParSVDSerial(K=6).initialize(decaying_matrix)
        assert svd.modes.shape == (200, 6)
        assert svd.singular_values.shape == (6,)

    def test_randomized_variant_close(self, decaying_matrix):
        dense = ParSVDSerial(K=5, ff=1.0).initialize(decaying_matrix)
        rand = ParSVDSerial(
            K=5, ff=1.0, low_rank=True, oversampling=10, power_iters=2, seed=0
        ).initialize(decaying_matrix)
        rel = np.abs(rand.singular_values - dense.singular_values)
        assert np.max(rel / dense.singular_values) < 1e-8

    def test_seed_reproducibility(self, decaying_matrix):
        a = ParSVDSerial(K=4, low_rank=True, seed=11).initialize(decaying_matrix)
        b = ParSVDSerial(K=4, low_rank=True, seed=11).initialize(decaying_matrix)
        assert np.array_equal(a.modes, b.modes)


class TestPersistence:
    def test_save_load_roundtrip(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=4).initialize(decaying_matrix)
        path = svd.save_results(tmp_path / "result")
        loaded = ParSVDSerial.load_results(path)
        assert np.array_equal(loaded["modes"], svd.modes)
        assert np.array_equal(loaded["singular_values"], svd.singular_values)
        assert loaded["K"] == 4
        assert loaded["iteration"] == 1

    def test_save_appends_npz_suffix(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        path = svd.save_results(tmp_path / "noext")
        assert path.suffix == ".npz"

    def test_save_preserves_dotted_stem(self, decaying_matrix, tmp_path):
        """Regression: 'results.v2' must save as 'results.v2.npz', not
        clobber the stem into 'results.npz'."""
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        path = svd.save_results(tmp_path / "results.v2")
        assert path.name == "results.v2.npz"
        assert not (tmp_path / "results.npz").exists()
        loaded = ParSVDSerial.load_results(path)
        assert loaded["K"] == 2

    def test_save_keeps_existing_npz_suffix(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        path = svd.save_results(tmp_path / "plain.npz")
        assert path.name == "plain.npz"

    def test_save_before_initialize_raises(self, tmp_path):
        with pytest.raises(NotInitializedError):
            ParSVDSerial(K=2).save_results(tmp_path / "x")


class TestPostprocessingHooks:
    def test_plot_singular_values_renders(self, decaying_matrix):
        svd = ParSVDSerial(K=4).initialize(decaying_matrix)
        out = svd.plot_singular_values()
        assert "sigma" in out
        assert "legend" in out

    def test_plot_modes_renders(self, decaying_matrix):
        svd = ParSVDSerial(K=4).initialize(decaying_matrix)
        out = svd.plot_1d_modes(mode_indices=(0, 1))
        assert "mode1" in out and "mode2" in out
