"""Allocation-free streaming fast lane: equality + allocation regression.

Satellite coverage for the zero-copy / workspace-reuse PR:

* the workspace fast lane (``workspace=True``, the default) produces
  modes/singular values within 1e-12 of the seed allocation-per-step path
  (``workspace=False``) across qr-variant x dtype;
* both lanes still agree with the serial reference;
* per-step allocated bytes are *flat* after warmup over 50 streaming
  steps (tracemalloc) — the workspace cannot leak or grow with the
  number of snapshots seen.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.core.metrics import compare_modes
from repro.smpi import create_communicator, run_spmd
from repro.utils.partition import block_partition

M = 180
K = 5
BATCH = 12
NRANKS = 3


@pytest.fixture
def stream_matrix(rng):
    """Rank-4 tall matrix (so K=5 truncation is exact in both dtypes)."""
    left = rng.standard_normal((M, 4))
    right = rng.standard_normal((4, 8 * BATCH))
    return left @ right


def run_stream(data, nranks, *, workspace, qr_variant, dtype, overlap=False):
    data = data.astype(dtype)

    def job(comm):
        part = block_partition(M, comm.size)
        block = data[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(
            comm,
            K=K,
            ff=0.97,
            qr_variant=qr_variant,
            workspace=workspace,
            overlap=overlap,
        )
        svd.initialize(block[:, :BATCH])
        for start in range(BATCH, data.shape[1], BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        return np.array(svd.modes), np.array(svd.singular_values)

    return run_spmd(nranks, job)[0]


class TestFastLaneEquality:
    @pytest.mark.parametrize("qr_variant", ["gather", "tree"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_workspace_matches_seed_path(
        self, stream_matrix, qr_variant, dtype
    ):
        """Fast lane == seed path to <= 1e-12 (identical FP operations,
        only the destination buffers differ)."""
        fast_modes, fast_values = run_stream(
            stream_matrix,
            NRANKS,
            workspace=True,
            qr_variant=qr_variant,
            dtype=dtype,
        )
        seed_modes, seed_values = run_stream(
            stream_matrix,
            NRANKS,
            workspace=False,
            qr_variant=qr_variant,
            dtype=dtype,
        )
        assert fast_modes.dtype == seed_modes.dtype
        assert np.max(np.abs(fast_modes - seed_modes)) <= 1e-12
        assert np.max(np.abs(fast_values - seed_values)) <= 1e-12

    @pytest.mark.parametrize("workspace", [True, False])
    def test_both_lanes_match_serial_reference(self, stream_matrix, workspace):
        serial = ParSVDSerial(K=K, ff=0.97)
        serial.initialize(stream_matrix[:, :BATCH])
        for start in range(BATCH, stream_matrix.shape[1], BATCH):
            serial.incorporate_data(stream_matrix[:, start : start + BATCH])

        modes, values = run_stream(
            stream_matrix,
            NRANKS,
            workspace=workspace,
            qr_variant="gather",
            dtype=np.float64,
        )
        comparison = compare_modes(
            serial.modes, serial.singular_values, modes, values, n_modes=3
        )
        assert comparison.worst_spectrum_error < 1e-8
        assert comparison.worst_mode_error < 1e-6

    def test_single_rank_self_backend(self, stream_matrix):
        """The fast lane also runs on the zero-overhead self backend."""
        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97)
        svd.initialize(stream_matrix[:, :BATCH])
        for start in range(BATCH, stream_matrix.shape[1], BATCH):
            svd.incorporate_data(stream_matrix[:, start : start + BATCH])

        seed = ParSVDParallel(comm, K=K, ff=0.97, workspace=False)
        seed.initialize(stream_matrix[:, :BATCH])
        for start in range(BATCH, stream_matrix.shape[1], BATCH):
            seed.incorporate_data(stream_matrix[:, start : start + BATCH])

        assert np.max(np.abs(svd.modes - seed.modes)) <= 1e-12
        assert np.max(np.abs(svd.singular_values - seed.singular_values)) <= 1e-12


class TestOverlapEquality:
    """The pipelined (overlap=True) engine is a pure schedule change: the
    numbers must match the PR-3 fast path to <= 1e-12 everywhere."""

    @pytest.mark.parametrize("qr_variant", ["gather", "tree"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_overlap_matches_fast_lane(self, stream_matrix, qr_variant, dtype):
        fast = run_stream(
            stream_matrix,
            NRANKS,
            workspace=True,
            qr_variant=qr_variant,
            dtype=dtype,
        )
        overlapped = run_stream(
            stream_matrix,
            NRANKS,
            workspace=True,
            qr_variant=qr_variant,
            dtype=dtype,
            overlap=True,
        )
        assert overlapped[0].dtype == fast[0].dtype
        assert np.max(np.abs(overlapped[0] - fast[0])) <= 1e-12
        assert np.max(np.abs(overlapped[1] - fast[1])) <= 1e-12

    @pytest.mark.parametrize("qr_variant", ["gather", "tree"])
    def test_overlap_without_workspace_matches_seed(
        self, stream_matrix, qr_variant
    ):
        seed = run_stream(
            stream_matrix,
            NRANKS,
            workspace=False,
            qr_variant=qr_variant,
            dtype=np.float64,
        )
        overlapped = run_stream(
            stream_matrix,
            NRANKS,
            workspace=False,
            qr_variant=qr_variant,
            dtype=np.float64,
            overlap=True,
        )
        assert np.max(np.abs(overlapped[0] - seed[0])) <= 1e-12
        assert np.max(np.abs(overlapped[1] - seed[1])) <= 1e-12

    def test_parallel_qr_pins_pipelined_update(self, stream_matrix):
        """The public blocking parallel_qr stays consistent with the
        pipelined update path: applying its (q_local, u, s) by hand
        reproduces incorporate_data's state to round-off."""
        from repro.utils.linalg import truncate_svd

        def job(comm):
            part = block_partition(M, comm.size)
            block = stream_matrix[part.slice_of(comm.rank), :]
            ref = ParSVDParallel(comm, K=K, ff=0.97, workspace=False)
            ref.initialize(block[:, :BATCH])
            ref.incorporate_data(block[:, BATCH : 2 * BATCH])

            manual = ParSVDParallel(comm, K=K, ff=0.97, workspace=False)
            manual.initialize(block[:, :BATCH])
            scale = 0.97 * manual.singular_values
            ll = np.concatenate(
                (
                    manual.local_modes * scale[np.newaxis, :],
                    block[:, BATCH : 2 * BATCH],
                ),
                axis=1,
            )
            q_local, u_new, s_new = manual.parallel_qr(ll)
            u_t, s_t, _ = truncate_svd(u_new, s_new, None, K)
            return (
                np.array(ref.local_modes),
                q_local @ u_t,
                np.array(ref.singular_values),
                np.array(s_t),
            )

        for ref_modes, manual_modes, ref_values, manual_values in run_spmd(
            NRANKS, job
        ):
            # parallel_qr combines (q1 @ q2) @ u_t; the pipelined path
            # fuses q1 @ (q2 @ u_t) — identical to round-off, not bits.
            assert np.max(np.abs(ref_modes - manual_modes)) <= 1e-10
            assert np.max(np.abs(ref_values - manual_values)) <= 1e-12

    def test_pending_step_completes_on_access(self, stream_matrix):
        """An in-flight step finalises lazily on the first result access
        (and pending_update reports the in-flight state)."""

        def job(comm):
            part = block_partition(M, comm.size)
            block = stream_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=K, ff=0.97, overlap=True)
            svd.initialize(block[:, :BATCH])
            assert not svd.pending_update
            svd.incorporate_data(block[:, BATCH : 2 * BATCH])
            posted = svd.pending_update
            values = np.array(svd.singular_values)  # finalises
            settled = svd.pending_update
            assert np.array_equal(values, svd.singular_values)
            return posted, settled, values

        results = run_spmd(NRANKS, job)
        for posted, settled, values in results:
            # Multi-rank runs really defer (single-rank steps have no
            # communication to leave in flight but must still complete).
            assert posted
            assert not settled
            assert np.array_equal(values, results[0][2])

    def test_failed_step_completion_poisons_instance(self, stream_matrix):
        """If an in-flight step fails to complete, later accesses keep
        raising (counters already include the lost batch — serving the
        stale factorization silently would be a wrong result)."""
        from repro.exceptions import CommunicatorError

        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97, overlap=True)
        svd.initialize(stream_matrix[:, :BATCH])

        class ExplodingStep:
            def finish(self, reduce_fn):
                raise RuntimeError("peer died mid-step")

        svd._pending = ExplodingStep()
        with pytest.raises(RuntimeError, match="peer died"):
            _ = svd.singular_values
        # Poisoned: the failure persists instead of serving stale state.
        with pytest.raises(CommunicatorError, match="stale"):
            _ = svd.singular_values
        with pytest.raises(CommunicatorError, match="stale"):
            svd.incorporate_data(stream_matrix[:, BATCH : 2 * BATCH])

    def test_overlap_checkpoint_roundtrip_finalizes(self, stream_matrix, tmp_path):
        """Checkpointing with a step in flight completes it first — the
        saved state equals the blocking loop's."""
        path = tmp_path / "overlap.npz"

        def job(comm):
            part = block_partition(M, comm.size)
            block = stream_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=K, ff=0.97, overlap=True)
            svd.initialize(block[:, :BATCH])
            svd.incorporate_data(block[:, BATCH : 2 * BATCH])
            svd.save_checkpoint(path, gathered=True)
            return np.array(svd.singular_values)

        values = run_spmd(NRANKS, job)[0]
        restarted = ParSVDParallel.from_checkpoint(
            create_communicator("self"), path
        )
        assert np.max(np.abs(restarted.singular_values - values)) <= 1e-12


class TestLocalModesBufferContract:
    def test_assembled_modes_stable_on_self_backend(self, stream_matrix):
        """.modes (gather='bcast') must be a stable snapshot on EVERY
        backend — on single-rank communicators gatherv returns the send
        buffer aliased, which must not expose the recycled workspace."""
        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97)
        svd.initialize(stream_matrix[:, :BATCH])
        svd.incorporate_data(stream_matrix[:, BATCH : 2 * BATCH])
        held = svd.modes
        snapshot = np.array(held)
        svd.incorporate_data(stream_matrix[:, 2 * BATCH : 3 * BATCH])
        svd.incorporate_data(stream_matrix[:, 3 * BATCH : 4 * BATCH])
        assert np.array_equal(held, snapshot)

    def test_local_modes_snapshot_survives_two_updates(self, stream_matrix):
        """Copies of local_modes are stable; the live view is documented to
        alias workspace memory (double-buffered, overwritten at t + 2)."""
        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97)
        svd.initialize(stream_matrix[:, :BATCH])
        svd.incorporate_data(stream_matrix[:, BATCH : 2 * BATCH])
        held = svd.local_modes
        snapshot = np.array(held)
        svd.incorporate_data(stream_matrix[:, 2 * BATCH : 3 * BATCH])
        # One update later the handed-out generation is still intact.
        assert np.array_equal(held, snapshot)


class TestAllocationFlatness:
    def test_per_step_allocated_bytes_flat_over_50_steps(self, rng):
        """tracemalloc regression: per-step allocation must not grow with
        the number of snapshots seen, and the workspace must not leak."""
        m, k, batch, steps, warmup = 240, 6, 10, 50, 8
        left = rng.standard_normal((m, 4))
        right = rng.standard_normal((4, batch * (steps + warmup + 1)))
        data = left @ right

        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=k, ff=0.97)
        svd.initialize(data[:, :batch])
        col = batch

        def step():
            nonlocal col
            svd.incorporate_data(data[:, col : col + batch])
            col += batch

        for _ in range(warmup):
            step()

        gc.collect()
        gc.disable()
        tracemalloc.start()
        try:
            per_step = []
            net = []
            for _ in range(steps):
                tracemalloc.reset_peak()
                before, _ = tracemalloc.get_traced_memory()
                step()
                after, peak = tracemalloc.get_traced_memory()
                per_step.append(peak - before)
                net.append(after - before)
        finally:
            tracemalloc.stop()
            gc.enable()

        early = float(np.mean(per_step[:10]))
        late = float(np.mean(per_step[-10:]))
        # Flat after warmup: the late-stream per-step allocation stays
        # within 25% of the early one (identical in practice; the margin
        # absorbs interpreter noise).
        assert late <= 1.25 * early + 4096
        # And the streaming state itself must not accumulate: net traced
        # growth per step is bounded by interpreter noise, far below one
        # (m, k + batch) float64 workspace buffer per step.
        buffer_bytes = m * (k + batch) * 8
        assert float(np.mean(net)) < 0.25 * buffer_bytes
