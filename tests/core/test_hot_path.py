"""Allocation-free streaming fast lane: equality + allocation regression.

Satellite coverage for the zero-copy / workspace-reuse PR:

* the workspace fast lane (``workspace=True``, the default) produces
  modes/singular values within 1e-12 of the seed allocation-per-step path
  (``workspace=False``) across qr-variant x dtype;
* both lanes still agree with the serial reference;
* per-step allocated bytes are *flat* after warmup over 50 streaming
  steps (tracemalloc) — the workspace cannot leak or grow with the
  number of snapshots seen.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.core.metrics import compare_modes
from repro.smpi import create_communicator, run_spmd
from repro.utils.partition import block_partition

M = 180
K = 5
BATCH = 12
NRANKS = 3


@pytest.fixture
def stream_matrix(rng):
    """Rank-4 tall matrix (so K=5 truncation is exact in both dtypes)."""
    left = rng.standard_normal((M, 4))
    right = rng.standard_normal((4, 8 * BATCH))
    return left @ right


def run_stream(data, nranks, *, workspace, qr_variant, dtype):
    data = data.astype(dtype)

    def job(comm):
        part = block_partition(M, comm.size)
        block = data[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(
            comm,
            K=K,
            ff=0.97,
            qr_variant=qr_variant,
            workspace=workspace,
        )
        svd.initialize(block[:, :BATCH])
        for start in range(BATCH, data.shape[1], BATCH):
            svd.incorporate_data(block[:, start : start + BATCH])
        return np.array(svd.modes), np.array(svd.singular_values)

    return run_spmd(nranks, job)[0]


class TestFastLaneEquality:
    @pytest.mark.parametrize("qr_variant", ["gather", "tree"])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_workspace_matches_seed_path(
        self, stream_matrix, qr_variant, dtype
    ):
        """Fast lane == seed path to <= 1e-12 (identical FP operations,
        only the destination buffers differ)."""
        fast_modes, fast_values = run_stream(
            stream_matrix,
            NRANKS,
            workspace=True,
            qr_variant=qr_variant,
            dtype=dtype,
        )
        seed_modes, seed_values = run_stream(
            stream_matrix,
            NRANKS,
            workspace=False,
            qr_variant=qr_variant,
            dtype=dtype,
        )
        assert fast_modes.dtype == seed_modes.dtype
        assert np.max(np.abs(fast_modes - seed_modes)) <= 1e-12
        assert np.max(np.abs(fast_values - seed_values)) <= 1e-12

    @pytest.mark.parametrize("workspace", [True, False])
    def test_both_lanes_match_serial_reference(self, stream_matrix, workspace):
        serial = ParSVDSerial(K=K, ff=0.97)
        serial.initialize(stream_matrix[:, :BATCH])
        for start in range(BATCH, stream_matrix.shape[1], BATCH):
            serial.incorporate_data(stream_matrix[:, start : start + BATCH])

        modes, values = run_stream(
            stream_matrix,
            NRANKS,
            workspace=workspace,
            qr_variant="gather",
            dtype=np.float64,
        )
        comparison = compare_modes(
            serial.modes, serial.singular_values, modes, values, n_modes=3
        )
        assert comparison.worst_spectrum_error < 1e-8
        assert comparison.worst_mode_error < 1e-6

    def test_single_rank_self_backend(self, stream_matrix):
        """The fast lane also runs on the zero-overhead self backend."""
        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97)
        svd.initialize(stream_matrix[:, :BATCH])
        for start in range(BATCH, stream_matrix.shape[1], BATCH):
            svd.incorporate_data(stream_matrix[:, start : start + BATCH])

        seed = ParSVDParallel(comm, K=K, ff=0.97, workspace=False)
        seed.initialize(stream_matrix[:, :BATCH])
        for start in range(BATCH, stream_matrix.shape[1], BATCH):
            seed.incorporate_data(stream_matrix[:, start : start + BATCH])

        assert np.max(np.abs(svd.modes - seed.modes)) <= 1e-12
        assert np.max(np.abs(svd.singular_values - seed.singular_values)) <= 1e-12


class TestLocalModesBufferContract:
    def test_assembled_modes_stable_on_self_backend(self, stream_matrix):
        """.modes (gather='bcast') must be a stable snapshot on EVERY
        backend — on single-rank communicators gatherv returns the send
        buffer aliased, which must not expose the recycled workspace."""
        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97)
        svd.initialize(stream_matrix[:, :BATCH])
        svd.incorporate_data(stream_matrix[:, BATCH : 2 * BATCH])
        held = svd.modes
        snapshot = np.array(held)
        svd.incorporate_data(stream_matrix[:, 2 * BATCH : 3 * BATCH])
        svd.incorporate_data(stream_matrix[:, 3 * BATCH : 4 * BATCH])
        assert np.array_equal(held, snapshot)

    def test_local_modes_snapshot_survives_two_updates(self, stream_matrix):
        """Copies of local_modes are stable; the live view is documented to
        alias workspace memory (double-buffered, overwritten at t + 2)."""
        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=K, ff=0.97)
        svd.initialize(stream_matrix[:, :BATCH])
        svd.incorporate_data(stream_matrix[:, BATCH : 2 * BATCH])
        held = svd.local_modes
        snapshot = np.array(held)
        svd.incorporate_data(stream_matrix[:, 2 * BATCH : 3 * BATCH])
        # One update later the handed-out generation is still intact.
        assert np.array_equal(held, snapshot)


class TestAllocationFlatness:
    def test_per_step_allocated_bytes_flat_over_50_steps(self, rng):
        """tracemalloc regression: per-step allocation must not grow with
        the number of snapshots seen, and the workspace must not leak."""
        m, k, batch, steps, warmup = 240, 6, 10, 50, 8
        left = rng.standard_normal((m, 4))
        right = rng.standard_normal((4, batch * (steps + warmup + 1)))
        data = left @ right

        comm = create_communicator("self")
        svd = ParSVDParallel(comm, K=k, ff=0.97)
        svd.initialize(data[:, :batch])
        col = batch

        def step():
            nonlocal col
            svd.incorporate_data(data[:, col : col + batch])
            col += batch

        for _ in range(warmup):
            step()

        gc.collect()
        gc.disable()
        tracemalloc.start()
        try:
            per_step = []
            net = []
            for _ in range(steps):
                tracemalloc.reset_peak()
                before, _ = tracemalloc.get_traced_memory()
                step()
                after, peak = tracemalloc.get_traced_memory()
                per_step.append(peak - before)
                net.append(after - before)
        finally:
            tracemalloc.stop()
            gc.enable()

        early = float(np.mean(per_step[:10]))
        late = float(np.mean(per_step[-10:]))
        # Flat after warmup: the late-stream per-step allocation stays
        # within 25% of the early one (identical in practice; the margin
        # absorbs interpreter noise).
        assert late <= 1.25 * early + 4096
        # And the streaming state itself must not accumulate: net traced
        # growth per step is bounded by interpreter noise, far below one
        # (m, k + batch) float64 workspace buffer per step.
        buffer_bytes = m * (k + batch) * 8
        assert float(np.mean(net)) < 0.25 * buffer_bytes
