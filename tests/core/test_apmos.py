"""Unit tests for APMOS (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.apmos import apmos_svd, generate_right_vectors, stack_gathered
from repro.core.metrics import mode_errors
from repro.exceptions import ShapeError
from repro.smpi import SelfComm, run_spmd
from repro.utils.partition import block_partition


class TestGenerateRightVectors:
    def test_svd_and_mos_agree(self, decaying_matrix):
        v1, s1 = generate_right_vectors(decaying_matrix, 10, method="svd")
        v2, s2 = generate_right_vectors(decaying_matrix, 10, method="mos")
        assert np.allclose(s1, s2, rtol=1e-8)
        # right vectors agree up to sign
        dots = np.abs(np.einsum("ij,ij->j", v1, v2))
        assert np.allclose(dots, 1.0, atol=1e-7)

    def test_truncation(self, decaying_matrix):
        v, s = generate_right_vectors(decaying_matrix, 7)
        assert v.shape == (40, 7)
        assert s.shape == (7,)

    def test_auto_prefers_mos_for_tall(self, rng):
        a = rng.standard_normal((400, 20))
        v, s = generate_right_vectors(a, 5, method="auto")
        v_ref, s_ref = generate_right_vectors(a, 5, method="svd")
        assert np.allclose(s, s_ref, rtol=1e-8)

    def test_rank_deficient_clipped(self, rng):
        # rank-2 matrix: only 2 meaningful right vectors remain
        a = rng.standard_normal((60, 2)) @ rng.standard_normal((2, 20))
        v, s = generate_right_vectors(a, 10)
        assert s.shape[0] == 2
        assert np.all(s > 0)

    def test_values_descending(self, decaying_matrix):
        _, s = generate_right_vectors(decaying_matrix, 10)
        assert np.all(np.diff(s) <= 0)

    def test_invalid_inputs(self, decaying_matrix):
        with pytest.raises(ShapeError):
            generate_right_vectors(decaying_matrix, 0)
        with pytest.raises(ShapeError):
            generate_right_vectors(np.ones(4), 2)
        with pytest.raises(ShapeError):
            generate_right_vectors(decaying_matrix, 5, method="bogus")


class TestStackGathered:
    def test_column_stacks(self, rng):
        blocks = [rng.standard_normal((6, 2)), rng.standard_normal((6, 3))]
        stacked = stack_gathered(blocks)
        assert stacked.shape == (6, 5)
        assert np.array_equal(stacked[:, :2], blocks[0])

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            stack_gathered([])


class TestApmosSvd:
    def _reference(self, data, r2):
        u, s, _ = np.linalg.svd(data, full_matrices=False)
        return u[:, :r2], s[:r2]

    def test_single_rank_matches_svd(self, decaying_matrix):
        u_ref, s_ref = self._reference(decaying_matrix, 5)
        u, s = apmos_svd(SelfComm(), decaying_matrix, r1=40, r2=5)
        assert np.allclose(s, s_ref, rtol=1e-10)
        assert mode_errors(u_ref, u).max() < 1e-8

    @pytest.mark.parametrize("nranks", [2, 3, 4, 5])
    def test_multirank_matches_svd(self, decaying_matrix, nranks):
        m = decaying_matrix.shape[0]
        u_ref, s_ref = self._reference(decaying_matrix, 5)

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            return apmos_svd(comm, block, r1=40, r2=5)

        results = run_spmd(nranks, job)
        s = results[0][1]
        u = np.concatenate([r[0] for r in results], axis=0)
        assert np.allclose(s, s_ref, rtol=1e-8)
        assert mode_errors(u_ref, u).max() < 1e-6

    def test_all_ranks_same_values(self, decaying_matrix):
        m = decaying_matrix.shape[0]

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            _, s = apmos_svd(comm, block, r1=30, r2=4)
            return s

        results = run_spmd(3, job)
        for s in results[1:]:
            assert np.array_equal(s, results[0])

    def test_r1_truncation_degrades_gracefully(self, decaying_matrix):
        """Small r1 loses accuracy but stays a valid factorization."""
        m = decaying_matrix.shape[0]
        _, s_ref = self._reference(decaying_matrix, 3)

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            return apmos_svd(comm, block, r1=5, r2=3)

        results = run_spmd(4, job)
        s = results[0][1]
        assert np.all(np.diff(s) <= 0)
        # leading value should still be well captured
        assert abs(s[0] - s_ref[0]) / s_ref[0] < 1e-2

    def test_low_rank_variant(self, decaying_matrix):
        m = decaying_matrix.shape[0]
        u_ref, s_ref = self._reference(decaying_matrix, 4)

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            return apmos_svd(
                comm, block, r1=40, r2=4,
                low_rank=True, oversampling=10, power_iters=2, rng=0,
            )

        results = run_spmd(2, job)
        s = results[0][1]
        assert np.allclose(s, s_ref, rtol=1e-6)

    def test_r2_larger_than_rank_clipped(self, rng):
        a = rng.standard_normal((80, 3)) @ rng.standard_normal((3, 20))
        u, s = apmos_svd(SelfComm(), a, r1=10, r2=10)
        assert s.shape[0] <= 3
        assert np.all(s > 0)

    def test_local_modes_partition_of_unity(self, decaying_matrix):
        """Stacked local modes must be orthonormal globally."""
        m = decaying_matrix.shape[0]

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            u_local, _ = apmos_svd(comm, block, r1=40, r2=5)
            return u_local

        results = run_spmd(3, job)
        u = np.concatenate(results, axis=0)
        gram = u.T @ u
        assert np.allclose(gram, np.eye(5), atol=1e-8)
