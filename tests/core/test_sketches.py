"""Unit tests for the sketch families."""

import numpy as np
import pytest

from repro.core.randomized import (
    make_sketch,
    rademacher_sketch,
    randomized_svd,
    sparse_sign_sketch,
)
from repro.data.synthetic import matrix_with_spectrum, spectrum_exponential
from repro.exceptions import ConfigurationError


class TestRademacher:
    def test_entries_are_pm_one(self):
        omega = rademacher_sketch(50, 10, rng=0)
        assert set(np.unique(omega)) == {-1.0, 1.0}

    def test_unit_variance(self):
        omega = rademacher_sketch(2000, 20, rng=0)
        assert abs(omega.var() - 1.0) < 1e-3  # sample mean offsets the variance slightly

    def test_reproducible(self):
        assert np.array_equal(
            rademacher_sketch(10, 3, rng=4), rademacher_sketch(10, 3, rng=4)
        )


class TestSparseSign:
    def test_density_respected(self):
        omega = sparse_sign_sketch(5000, 10, density=0.2, rng=0)
        frac = np.mean(omega != 0)
        assert abs(frac - 0.2) < 0.02

    def test_nonzero_magnitude(self):
        omega = sparse_sign_sketch(100, 5, density=0.25, rng=0)
        nz = omega[omega != 0]
        assert np.allclose(np.abs(nz), 1.0 / np.sqrt(0.25))

    def test_unit_second_moment(self):
        omega = sparse_sign_sketch(20000, 4, density=0.1, rng=1)
        assert abs((omega**2).mean() - 1.0) < 0.05

    def test_density_validated(self):
        with pytest.raises(ConfigurationError):
            sparse_sign_sketch(10, 2, density=0.0)
        with pytest.raises(ConfigurationError):
            sparse_sign_sketch(10, 2, density=1.5)

    def test_full_density_is_sign_matrix(self):
        omega = sparse_sign_sketch(30, 3, density=1.0, rng=0)
        assert set(np.unique(omega)) <= {-1.0, 1.0}


class TestDispatch:
    def test_known_kinds(self):
        for kind in ("gaussian", "rademacher", "sparse"):
            omega = make_sketch(kind, 20, 4, rng=0)
            assert omega.shape == (20, 4)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_sketch("butterfly", 10, 2)


class TestSketchesInRandomizedSvd:
    @pytest.mark.parametrize("sketch", ["gaussian", "rademacher", "sparse"])
    def test_exact_recovery_any_sketch(self, sketch):
        a, _, s_true, _ = matrix_with_spectrum(
            120, 60, spectrum_exponential(6, 0.6), rng=3
        )
        u, s, vt = randomized_svd(a, 6, oversampling=8, rng=0, sketch=sketch)
        assert np.allclose(s, s_true, rtol=1e-8)
        assert np.linalg.norm(a - (u * s) @ vt) < 1e-8 * np.linalg.norm(a)

    @pytest.mark.parametrize("sketch", ["rademacher", "sparse"])
    def test_error_comparable_to_gaussian(self, sketch, rng):
        a = rng.standard_normal((200, 80))

        def err(kind):
            u, s, vt = randomized_svd(
                a, 8, oversampling=8, power_iters=1, rng=0, sketch=kind
            )
            return np.linalg.norm(a - (u * s) @ vt)

        assert err(sketch) < 1.2 * err("gaussian")
