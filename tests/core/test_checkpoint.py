"""Checkpoint/restart of streaming state."""

import pathlib

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.core.checkpoint import (
    CHECKPOINT_VERSION,
    rank_checkpoint_path,
    read_checkpoint,
    write_checkpoint,
)
from repro.exceptions import DataFormatError, NotInitializedError
from repro.smpi import ParallelFailure, run_spmd
from repro.utils.partition import block_partition


class TestSerialCheckpoint:
    def test_resume_equals_uninterrupted(self, decaying_matrix, tmp_path):
        """checkpoint -> restart -> continue == one uninterrupted stream."""
        batches = [(0, 10), (10, 20), (20, 30), (30, 40)]

        straight = ParSVDSerial(K=4, ff=0.95, seed=0)
        straight.initialize(decaying_matrix[:, 0:10])
        for start, stop in batches[1:]:
            straight.incorporate_data(decaying_matrix[:, start:stop])

        first = ParSVDSerial(K=4, ff=0.95, seed=0)
        first.initialize(decaying_matrix[:, 0:10])
        first.incorporate_data(decaying_matrix[:, 10:20])
        ckpt = first.save_checkpoint(tmp_path / "mid")

        resumed = ParSVDSerial.from_checkpoint(ckpt)
        resumed.incorporate_data(decaying_matrix[:, 20:30])
        resumed.incorporate_data(decaying_matrix[:, 30:40])

        assert np.allclose(
            resumed.singular_values, straight.singular_values, rtol=1e-12
        )
        assert np.allclose(resumed.modes, straight.modes, atol=1e-12)
        assert resumed.iteration == straight.iteration == 4
        assert resumed.n_seen == straight.n_seen == 40

    def test_config_restored(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=3, ff=0.8, low_rank=True, seed=7)
        svd.initialize(decaying_matrix)
        ckpt = svd.save_checkpoint(tmp_path / "cfg")
        resumed = ParSVDSerial.from_checkpoint(ckpt)
        assert resumed.K == 3
        assert resumed.ff == 0.8
        assert resumed.low_rank is True
        assert resumed.config.seed == 7

    def test_row_count_enforced_after_restore(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=3).initialize(decaying_matrix)
        ckpt = svd.save_checkpoint(tmp_path / "rows")
        resumed = ParSVDSerial.from_checkpoint(ckpt)
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError):
            resumed.incorporate_data(np.zeros((7, 3)))

    def test_uninitialised_cannot_checkpoint(self, tmp_path):
        with pytest.raises(NotInitializedError):
            ParSVDSerial(K=2).save_checkpoint(tmp_path / "x")

    def test_kind_mismatch_rejected(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=3).initialize(decaying_matrix)
        path = write_checkpoint(
            tmp_path / "wrongkind",
            svd.config,
            svd.modes,
            svd.singular_values,
            1,
            40,
            kind="parallel",
        )
        with pytest.raises(DataFormatError):
            ParSVDSerial.from_checkpoint(path)


class TestCheckpointFormat:
    def test_version_stamped(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        ckpt = svd.save_checkpoint(tmp_path / "v")
        state = read_checkpoint(ckpt)
        assert state["kind"] == "serial"
        assert CHECKPOINT_VERSION == 1

    def test_unknown_version_rejected(self, decaying_matrix, tmp_path):
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.asarray(999),
            kind=np.asarray("serial"),
        )
        with pytest.raises(DataFormatError):
            read_checkpoint(path)

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(DataFormatError):
            read_checkpoint(path)

    def test_unreadable_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zipfile")
        with pytest.raises(DataFormatError):
            read_checkpoint(path)

    def test_rank_path_naming(self, tmp_path):
        assert rank_checkpoint_path(tmp_path / "s.npz", 3).name == "s.rank3.npz"
        assert rank_checkpoint_path(tmp_path / "s", 0).name == "s.rank0.npz"

    def test_dotted_stem_preserved(self, decaying_matrix, tmp_path):
        """Regression: 'state.v2' must become 'state.v2.npz', not
        'state.npz'."""
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        path = svd.save_checkpoint(tmp_path / "state.v2")
        assert pathlib.Path(path).name == "state.v2.npz"
        assert not (tmp_path / "state.npz").exists()
        resumed = ParSVDSerial.from_checkpoint(path)
        assert resumed.K == 2

    def test_old_checkpoint_without_parallel_fields_readable(
        self, decaying_matrix, tmp_path
    ):
        """Format-v1 files written before the parallel run options were
        recorded must still load, with the historical defaults."""
        svd = ParSVDSerial(K=2).initialize(decaying_matrix)
        path = svd.save_checkpoint(tmp_path / "old")
        with np.load(path) as data:
            trimmed = {
                key: data[key]
                for key in data.files
                if not key.startswith("par_")
            }
        np.savez(path, **trimmed)
        state = read_checkpoint(path)
        assert state["qr_variant"] == "gather"
        assert state["gather"] == "bcast"
        assert state["apmos_group_size"] is None


class TestParallelCheckpoint:
    def test_resume_across_spmd_runs(self, decaying_matrix, tmp_path):
        m = decaying_matrix.shape[0]
        base = tmp_path / "par"

        def phase1(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0)
            svd.initialize(block[:, :20])
            svd.save_checkpoint(base)
            return svd.singular_values

        def phase2(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel.from_checkpoint(comm, base)
            svd.incorporate_data(block[:, 20:40])
            return svd.modes, svd.singular_values, svd.iteration

        def straight(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0)
            svd.initialize(block[:, :20])
            svd.incorporate_data(block[:, 20:40])
            return svd.modes, svd.singular_values

        run_spmd(3, phase1)
        resumed = run_spmd(3, phase2)
        reference = run_spmd(3, straight)

        modes_r, values_r, iteration = resumed[0]
        modes_s, values_s = reference[0]
        assert iteration == 2
        assert np.allclose(values_r, values_s, rtol=1e-12)
        assert np.allclose(modes_r, modes_s, atol=1e-12)

    def test_rank_count_mismatch_rejected(self, decaying_matrix, tmp_path):
        m = decaying_matrix.shape[0]
        base = tmp_path / "mismatch"

        def save(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            ParSVDParallel(comm, K=3).initialize(block).save_checkpoint(base)

        run_spmd(2, save)

        def load(comm):
            ParSVDParallel.from_checkpoint(comm, base)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(3, load, timeout=5.0)
        assert any(
            isinstance(f.exception, DataFormatError)
            for f in info.value.failures
        )


class TestGatheredCheckpoint:
    """save_checkpoint(gathered=True): one rank-0 file, any-rank restart."""

    def _stream(self, comm, data, upto, base=None, restart=False, K=3):
        m = data.shape[0]
        part = block_partition(m, comm.size)
        block = data[part.slice_of(comm.rank), :]
        if restart:
            svd = ParSVDParallel.from_checkpoint(comm, base)
            start0 = svd.n_seen
        else:
            svd = ParSVDParallel(comm, K=K, ff=1.0, r1=20)
            svd.initialize(block[:, :10])
            start0 = 10
        for start in range(start0, upto, 10):
            svd.incorporate_data(block[:, start : start + 10])
        return svd

    def test_single_file_written_at_rank0(self, decaying_matrix, tmp_path):
        base = tmp_path / "single"

        def job(comm):
            svd = self._stream(comm, decaying_matrix, 20)
            return svd.save_checkpoint(base, gathered=True)

        paths = run_spmd(2, job)
        assert paths == [str(tmp_path / "single.npz")] * 2
        state = read_checkpoint(paths[0])
        assert state["kind"] == "gathered"
        assert state["modes"].shape == (decaying_matrix.shape[0], 3)
        assert state["nranks"] == 2
        # No per-rank shards were produced.
        assert not rank_checkpoint_path(base, 0).exists()

    @pytest.mark.parametrize("restart_ranks", [1, 2, 3])
    def test_restart_at_any_rank_count(
        self, decaying_matrix, tmp_path, restart_ranks
    ):
        """Save gathered at 2 ranks; continuing at 1/2/3 ranks all land on
        the uninterrupted trajectory."""
        base = tmp_path / "resize"

        def phase1(comm):
            self._stream(comm, decaying_matrix, 20).save_checkpoint(
                base, gathered=True
            )

        def phase2(comm):
            svd = self._stream(
                comm, decaying_matrix, 40, base=base, restart=True
            )
            return svd.modes, svd.singular_values, svd.iteration, svd.n_seen

        def straight(comm):
            svd = self._stream(comm, decaying_matrix, 40)
            return svd.modes, svd.singular_values

        run_spmd(2, phase1)
        modes_r, values_r, iteration, n_seen = run_spmd(
            restart_ranks, phase2
        )[0]
        modes_s, values_s = run_spmd(2, straight)[0]
        assert iteration == 4
        assert n_seen == 40
        assert np.allclose(values_r, values_s, rtol=1e-10)
        assert np.allclose(modes_r, modes_s, atol=1e-10)

    def test_gathered_restores_run_options(self, decaying_matrix, tmp_path):
        base = tmp_path / "opts"
        m = decaying_matrix.shape[0]

        def save(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(
                comm, K=3, ff=0.9, qr_variant="tree", gather="root"
            )
            svd.initialize(block)
            svd.save_checkpoint(base, gathered=True)

        def load(comm):
            svd = ParSVDParallel.from_checkpoint(comm, base)
            return svd._qr_variant, svd._gather, svd.ff

        run_spmd(2, save)
        assert run_spmd(3, load) == [("tree", "root", 0.9)] * 3

    def test_plain_file_not_gathered_rejected(
        self, decaying_matrix, tmp_path
    ):
        """A serial checkpoint sitting at the exact path is not silently
        scattered."""
        svd = ParSVDSerial(K=3).initialize(decaying_matrix)
        path = svd.save_checkpoint(tmp_path / "serialstate")

        def load(comm):
            ParSVDParallel.from_checkpoint(comm, path)

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, load, timeout=5.0)
        assert any(
            isinstance(f.exception, DataFormatError)
            for f in info.value.failures
        )

    def test_invalid_kind_rejected_at_write(self, decaying_matrix, tmp_path):
        from repro.config import SVDConfig

        with pytest.raises(DataFormatError):
            write_checkpoint(
                tmp_path / "bad",
                SVDConfig(K=3),
                decaying_matrix[:, :3],
                np.ones(3),
                1,
                10,
                kind="sideways",
            )

    def test_save_then_immediate_restart_same_job(
        self, decaying_matrix, tmp_path
    ):
        """The gathered save's exit barrier: a rank may restart from the
        file immediately after save_checkpoint returns, even though only
        rank 0 wrote it."""
        base = tmp_path / "immediate"

        def job(comm):
            svd = self._stream(comm, decaying_matrix, 20)
            svd.save_checkpoint(base, gathered=True)
            resumed = ParSVDParallel.from_checkpoint(comm, base)
            return resumed.n_seen, resumed.singular_values

        for n_seen, values in run_spmd(4, job):
            assert n_seen == 20
            assert values.shape == (3,)

    def test_results_archive_at_stem_does_not_block_shard_restart(
        self, decaying_matrix, tmp_path
    ):
        """save_results("state") + per-rank shards at the same stem: the
        gathered-file probe must fall back to the shards, not choke on the
        results archive at state.npz."""
        base = tmp_path / "state"
        m = decaying_matrix.shape[0]

        def save(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, ff=1.0, r1=20)
            svd.initialize(block)
            svd.save_checkpoint(base)  # shards state.rank<i>.npz
            svd.assemble_modes()  # collective: every rank participates
            if comm.rank == 0:
                svd.save_results(base)  # results archive at state.npz
            return svd.singular_values

        def load(comm):
            return ParSVDParallel.from_checkpoint(comm, base).singular_values

        saved = run_spmd(2, save)[0]
        assert (tmp_path / "state.npz").exists()
        assert np.allclose(run_spmd(2, load)[0], saved)
