"""Unit tests for the Levy--Lindenbaum streaming kernels."""

import numpy as np
import pytest

from repro.core.streaming import (
    StreamingState,
    incorporate_batch,
    initialize_streaming,
)
from repro.exceptions import ConfigurationError, ShapeError
from repro.utils.linalg import align_signs, orthogonality_defect


def stream_all(data, k, ff, batch, **kw):
    state = initialize_streaming(data[:, :batch], k, **kw)
    for start in range(batch, data.shape[1], batch):
        state = incorporate_batch(
            state, data[:, start : start + batch], k, ff, **kw
        )
    return state


class TestInitialize:
    def test_matches_truncated_svd(self, decaying_matrix):
        state = initialize_streaming(decaying_matrix, 6)
        u, s, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        assert np.allclose(state.singular_values, s[:6], rtol=1e-10)
        assert np.allclose(align_signs(u[:, :6], state.modes), u[:, :6], atol=1e-8)

    def test_modes_orthonormal(self, decaying_matrix):
        state = initialize_streaming(decaying_matrix, 6)
        assert orthogonality_defect(state.modes) < 1e-10

    def test_k_larger_than_batch_clipped(self, rng):
        a = rng.standard_normal((50, 3))
        state = initialize_streaming(a, 10)
        assert state.rank == 3

    def test_counts(self, decaying_matrix):
        state = initialize_streaming(decaying_matrix, 4)
        assert state.batches == 1
        assert state.n_seen == decaying_matrix.shape[1]

    def test_rejects_empty_batch(self):
        with pytest.raises(ShapeError):
            initialize_streaming(np.empty((10, 0)), 3)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            initialize_streaming(np.ones(5), 2)


class TestIncorporate:
    def test_ff_one_exact_when_k_covers_rank(self, rng):
        """With ff=1 and K >= rank(A), streaming is exact: no information is
        ever truncated away, so the recursion reproduces the one-shot SVD."""
        k, rank = 6, 5
        left = rng.standard_normal((150, rank))
        right = rng.standard_normal((rank, 40))
        data = left @ right
        state = stream_all(data, k, 1.0, batch=10)
        u, s, _ = np.linalg.svd(data, full_matrices=False)
        assert np.allclose(state.singular_values[:rank], s[:rank], rtol=1e-9)
        aligned = align_signs(u[:, :rank], state.modes[:, :rank])
        assert np.max(np.abs(aligned - u[:, :rank])) < 1e-7

    def test_ff_one_approximates_batch_svd_under_truncation(
        self, decaying_matrix
    ):
        """With K < rank(A) each update discards tail energy, so streaming
        is only approximate; with a 0.5-ratio spectrum the trailing retained
        value carries the largest (but still small) error."""
        k = 6
        state = stream_all(decaying_matrix, k, 1.0, batch=10)
        _, s, _ = np.linalg.svd(decaying_matrix, full_matrices=False)
        rel = np.abs(state.singular_values - s[:k]) / s[:k]
        assert rel[0] < 1e-8  # leading value essentially exact
        assert np.max(rel) < 5e-3  # trailing value within truncation error

    def test_modes_stay_orthonormal(self, decaying_matrix):
        state = stream_all(decaying_matrix, 5, 0.95, batch=8)
        assert orthogonality_defect(state.modes) < 1e-10

    def test_values_descending(self, decaying_matrix):
        state = stream_all(decaying_matrix, 5, 0.9, batch=8)
        assert np.all(np.diff(state.singular_values) <= 0)

    def test_forget_factor_discounts_history(self, rng):
        """With small ff, the result should track the most recent batch."""
        m = 100
        old = rng.standard_normal((m, 1)) @ rng.standard_normal((1, 30))
        recent_dir = rng.standard_normal((m, 1))
        recent = recent_dir @ rng.standard_normal((1, 30))

        state = initialize_streaming(old, 1)
        state = incorporate_batch(state, recent, 1, ff=0.05)
        mode = state.modes[:, 0]
        recent_unit = recent_dir[:, 0] / np.linalg.norm(recent_dir)
        assert abs(abs(mode @ recent_unit)) > 0.99

    def test_ff_one_keeps_history(self, rng):
        """With ff=1 an energetic old direction must survive a weak batch."""
        m = 100
        strong_dir = rng.standard_normal((m, 1))
        strong = 100.0 * strong_dir @ rng.standard_normal((1, 20))
        weak = 0.01 * rng.standard_normal((m, 20))

        state = initialize_streaming(strong, 2)
        state = incorporate_batch(state, weak, 2, ff=1.0)
        unit = strong_dir[:, 0] / np.linalg.norm(strong_dir)
        assert abs(state.modes[:, 0] @ unit) > 0.999

    def test_row_mismatch_raises(self, decaying_matrix):
        state = initialize_streaming(decaying_matrix, 3)
        with pytest.raises(ShapeError):
            incorporate_batch(state, np.zeros((7, 2)), 3, 1.0)

    def test_invalid_ff_raises(self, decaying_matrix):
        state = initialize_streaming(decaying_matrix[:, :5], 3)
        with pytest.raises(ConfigurationError):
            incorporate_batch(state, decaying_matrix[:, 5:8], 3, ff=0.0)
        with pytest.raises(ConfigurationError):
            incorporate_batch(state, decaying_matrix[:, 5:8], 3, ff=1.5)

    def test_counters_accumulate(self, decaying_matrix):
        state = stream_all(decaying_matrix, 4, 0.95, batch=10)
        assert state.batches == 4
        assert state.n_seen == 40

    def test_single_snapshot_batches(self, rng):
        # rank-2 data with K=3: one-column batches must still be exact
        data = rng.standard_normal((80, 2)) @ rng.standard_normal((2, 10))
        state = stream_all(data, 3, 1.0, batch=1)
        _, s, _ = np.linalg.svd(data, full_matrices=False)
        assert np.allclose(state.singular_values[:2], s[:2], rtol=1e-8)


class TestRandomizedInner:
    def test_low_rank_inner_close_to_dense(self, decaying_matrix):
        dense = stream_all(decaying_matrix, 5, 1.0, batch=10)
        randomized = stream_all(
            decaying_matrix, 5, 1.0, batch=10,
            low_rank=True, oversampling=10, power_iters=2, rng=0,
        )
        rel = np.abs(randomized.singular_values - dense.singular_values)
        rel /= dense.singular_values
        assert np.max(rel) < 1e-6

    def test_streaming_state_frozen(self, decaying_matrix):
        state = initialize_streaming(decaying_matrix, 3)
        with pytest.raises(Exception):
            state.modes = None  # dataclass frozen
