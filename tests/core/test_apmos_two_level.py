"""Two-level (hierarchical) APMOS."""

import numpy as np
import pytest

from repro.core.apmos import apmos_svd, apmos_svd_two_level
from repro.exceptions import ShapeError
from repro.smpi import ParallelFailure, SelfComm, run_spmd
from repro.utils.partition import block_partition


def run_two_level(data, nranks, group_size, r1, r2):
    def job(comm):
        part = block_partition(data.shape[0], comm.size)
        block = data[part.slice_of(comm.rank), :]
        return apmos_svd_two_level(
            comm, block, r1=r1, r2=r2, group_size=group_size
        )

    results = run_spmd(nranks, job)
    u = np.concatenate([r[0] for r in results], axis=0)
    return u, results[0][1]


def run_flat(data, nranks, r1, r2):
    def job(comm):
        part = block_partition(data.shape[0], comm.size)
        block = data[part.slice_of(comm.rank), :]
        return apmos_svd(comm, block, r1=r1, r2=r2)

    results = run_spmd(nranks, job)
    u = np.concatenate([r[0] for r in results], axis=0)
    return u, results[0][1]


class TestEquivalence:
    @pytest.mark.parametrize("group_size", [1, 2, 3, 6, 10])
    def test_matches_flat_apmos_untruncated(self, decaying_matrix, group_size):
        """With r1 >= rank of each group stack the hierarchy is exact."""
        u_flat, s_flat = run_flat(decaying_matrix, 6, r1=40, r2=4)
        u_two, s_two = run_two_level(
            decaying_matrix, 6, group_size, r1=40, r2=4
        )
        assert np.allclose(s_two, s_flat, rtol=1e-10)
        assert np.allclose(np.abs(u_two), np.abs(u_flat), atol=1e-8)

    def test_matches_exact_svd(self, decaying_matrix):
        u, s = run_two_level(decaying_matrix, 6, 2, r1=40, r2=4)
        s_ref = np.linalg.svd(decaying_matrix, compute_uv=False)
        assert np.allclose(s, s_ref[: s.shape[0]], rtol=1e-9)

    def test_group_size_does_not_divide_ranks(self, decaying_matrix):
        """5 ranks in groups of 2 -> groups of sizes 2,2,1."""
        u, s = run_two_level(decaying_matrix, 5, 2, r1=40, r2=3)
        s_ref = np.linalg.svd(decaying_matrix, compute_uv=False)
        assert np.allclose(s, s_ref[: s.shape[0]], rtol=1e-9)

    def test_all_ranks_same_values(self, decaying_matrix):
        def job(comm):
            part = block_partition(decaying_matrix.shape[0], comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            _, s = apmos_svd_two_level(comm, block, r1=30, r2=3, group_size=2)
            return s

        results = run_spmd(4, job)
        for s in results[1:]:
            assert np.array_equal(s, results[0])

    def test_modes_globally_orthonormal(self, decaying_matrix):
        u, s = run_two_level(decaying_matrix, 6, 3, r1=40, r2=4)
        gram = u.T @ u
        assert np.allclose(gram, np.eye(s.shape[0]), atol=1e-8)

    def test_single_rank(self, decaying_matrix):
        u, s = apmos_svd_two_level(
            SelfComm(), decaying_matrix, r1=40, r2=3, group_size=4
        )
        s_ref = np.linalg.svd(decaying_matrix, compute_uv=False)
        assert np.allclose(s, s_ref[: s.shape[0]], rtol=1e-10)

    def test_invalid_group_size(self, decaying_matrix):
        def job(comm):
            apmos_svd_two_level(
                comm, decaying_matrix, r1=10, r2=2, group_size=0
            )

        with pytest.raises(ParallelFailure) as info:
            run_spmd(2, job, timeout=5.0)
        assert any(
            isinstance(f.exception, ShapeError) for f in info.value.failures
        )


class TestTrafficAdvantage:
    def test_root_gather_volume_reduced(self, decaying_matrix):
        """The whole point: rank 0 receives fewer bytes hierarchically."""

        def flat(comm):
            part = block_partition(decaying_matrix.shape[0], comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            apmos_svd(comm, block, r1=40, r2=3)

        def two_level(comm):
            part = block_partition(decaying_matrix.shape[0], comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            apmos_svd_two_level(comm, block, r1=40, r2=3, group_size=3)

        _, tracers_flat = run_spmd(6, flat, trace=True)
        _, tracers_two = run_spmd(6, two_level, trace=True)
        # rank 0 in the flat scheme receives W from 5 peers; in the
        # two-level scheme it receives from its 2 group members plus 1
        # other leader
        flat_bytes = tracers_flat[0].bytes_for("gather")
        two_bytes = tracers_two[0].bytes_for("gather")
        assert two_bytes < flat_bytes


class TestScalingModel:
    def test_two_level_improves_high_rank_efficiency(self):
        from repro.perf.scaling import WeakScalingStudy

        study = WeakScalingStudy(calibrate=False)
        counts = study.paper_rank_counts(max_nodes=256)
        flat = study.run(counts)
        hier = study.run(counts, group_size=64)
        # at 16384 ranks the hierarchy must be substantially better
        assert hier.efficiency[-1] > flat.efficiency[-1] * 1.5
        # and never worse than half at small scale
        assert np.all(hier.efficiency >= flat.efficiency * 0.5)

    def test_degenerate_group_sizes_match_flat(self):
        from repro.perf.scaling import WeakScalingStudy

        study = WeakScalingStudy(calibrate=False)
        p_flat = study.point(256)
        for g in (None, 1, 256, 1000):
            p = study.point(256, group_size=g)
            assert p.total_s == pytest.approx(p_flat.total_s)


class TestParallelClassIntegration:
    def test_parallel_class_with_group_size(self, decaying_matrix):
        """ParSVDParallel(apmos_group_size=...) matches the flat class."""

        def run(group_size):
            from repro import ParSVDParallel

            def job(comm):
                part = block_partition(decaying_matrix.shape[0], comm.size)
                block = decaying_matrix[part.slice_of(comm.rank), :]
                svd = ParSVDParallel(
                    comm, K=4, ff=1.0, apmos_group_size=group_size
                )
                svd.initialize(block[:, :20])
                svd.incorporate_data(block[:, 20:])
                return svd.modes, svd.singular_values

            return run_spmd(4, job)[0]

        flat_modes, flat_values = run(None)
        two_modes, two_values = run(2)
        assert np.allclose(two_values, flat_values, rtol=1e-10)
        assert np.allclose(np.abs(two_modes), np.abs(flat_modes), atol=1e-8)

    def test_invalid_group_size_rejected(self, decaying_matrix):
        from repro import ParSVDParallel
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ParSVDParallel(SelfComm(), K=2, apmos_group_size=0)
