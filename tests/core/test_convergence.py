"""Unit tests for the streaming convergence monitor."""

import numpy as np
import pytest

from repro import ParSVDSerial
from repro.core.convergence import ConvergenceMonitor
from repro.exceptions import ConfigurationError


def _orthonormal(rng, m, k):
    q, _ = np.linalg.qr(rng.standard_normal((m, k)))
    return q


class TestMechanics:
    def test_first_update_never_converged(self, rng):
        monitor = ConvergenceMonitor(patience=1)
        q = _orthonormal(rng, 30, 3)
        assert monitor.update(q, np.ones(3)) is False
        assert monitor.history[0].max_value_change == np.inf

    def test_identical_updates_converge_after_patience(self, rng):
        monitor = ConvergenceMonitor(patience=2)
        q = _orthonormal(rng, 30, 3)
        s = np.array([3.0, 2.0, 1.0])
        assert monitor.update(q, s) is False  # baseline
        assert monitor.update(q, s) is False  # streak 1
        assert monitor.update(q, s) is True   # streak 2 == patience

    def test_value_jump_resets_streak(self, rng):
        monitor = ConvergenceMonitor(value_tol=1e-6, patience=1)
        q = _orthonormal(rng, 30, 2)
        monitor.update(q, np.array([2.0, 1.0]))
        monitor.update(q, np.array([2.0, 1.0]))
        assert monitor.converged
        monitor.update(q, np.array([3.0, 1.0]))  # 50% jump
        assert not monitor.converged

    def test_subspace_rotation_detected(self, rng):
        monitor = ConvergenceMonitor(angle_tol_deg=1.0, patience=1)
        q1 = _orthonormal(rng, 40, 2)
        q2 = _orthonormal(rng, 40, 2)  # unrelated subspace
        s = np.ones(2)
        monitor.update(q1, s)
        assert monitor.update(q2, s) is False
        assert monitor.history[-1].max_angle_deg > 10

    def test_shape_change_resets_baseline(self, rng):
        monitor = ConvergenceMonitor(patience=1)
        monitor.update(_orthonormal(rng, 30, 2), np.ones(2))
        # rank grows (stream saw more snapshots): becomes a new baseline
        assert monitor.update(_orthonormal(rng, 30, 3), np.ones(3)) is False
        assert monitor.history[-1].max_value_change == np.inf

    def test_reset(self, rng):
        monitor = ConvergenceMonitor(patience=1)
        q = _orthonormal(rng, 20, 2)
        monitor.update(q, np.ones(2))
        monitor.update(q, np.ones(2))
        assert monitor.converged
        monitor.reset()
        assert not monitor.converged
        assert monitor.iterations == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConvergenceMonitor(value_tol=0)
        with pytest.raises(ConfigurationError):
            ConvergenceMonitor(angle_tol_deg=-1)
        with pytest.raises(ConfigurationError):
            ConvergenceMonitor(patience=0)

    def test_history_arrays(self, rng):
        monitor = ConvergenceMonitor(patience=1)
        q = _orthonormal(rng, 20, 2)
        for _ in range(3):
            monitor.update(q, np.ones(2))
        changes = monitor.value_change_history()
        assert changes.shape == (3,)
        assert changes[0] == np.inf
        assert np.all(changes[1:] == 0.0)


class TestWithStreamingSvd:
    def test_stationary_stream_converges(self, rng):
        """Repeated draws from one fixed low-rank process stabilise."""
        basis = _orthonormal(rng, 200, 3)
        monitor = ConvergenceMonitor(
            value_tol=0.2, angle_tol_deg=5.0, patience=2
        )
        svd = ParSVDSerial(K=3, ff=1.0)
        converged_at = None
        for i in range(30):
            batch = basis @ (np.diag([5.0, 3.0, 1.0]) @ rng.standard_normal((3, 20)))
            if i == 0:
                svd.initialize(batch)
            else:
                svd.incorporate_data(batch)
            if monitor.update(svd.modes, svd.singular_values):
                converged_at = i
                break
        assert converged_at is not None
        assert converged_at >= 2

    def test_regime_change_breaks_convergence(self, rng):
        basis_a = _orthonormal(rng, 150, 2)
        basis_b = _orthonormal(rng, 150, 2)
        monitor = ConvergenceMonitor(
            value_tol=0.2, angle_tol_deg=5.0, patience=1
        )
        svd = ParSVDSerial(K=2, ff=0.5)
        for i in range(10):
            batch = basis_a @ rng.standard_normal((2, 15))
            if i == 0:
                svd.initialize(batch)
            else:
                svd.incorporate_data(batch)
            monitor.update(svd.modes, svd.singular_values)
        assert monitor.converged
        # switch regimes: low ff tracks the new subspace -> large angle
        svd.incorporate_data(10.0 * basis_b @ rng.standard_normal((2, 15)))
        assert monitor.update(svd.modes, svd.singular_values) is False
