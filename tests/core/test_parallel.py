"""Unit tests for ParSVDParallel."""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.core.metrics import compare_modes
from repro.exceptions import ConfigurationError, ShapeError
from repro.smpi import SelfComm, run_spmd
from repro.utils.partition import block_partition


def run_parallel(data, nranks, batches, **svd_kwargs):
    """Drive ParSVDParallel over column batches on nranks ranks."""
    m = data.shape[0]

    def job(comm):
        part = block_partition(m, comm.size)
        block = data[part.slice_of(comm.rank), :]
        svd = ParSVDParallel(comm, **svd_kwargs)
        first = True
        for start, stop in batches:
            if first:
                svd.initialize(block[:, start:stop])
                first = False
            else:
                svd.incorporate_data(block[:, start:stop])
        return svd.modes, svd.singular_values, svd.iteration

    return run_spmd(nranks, job)


class TestConstruction:
    def test_invalid_qr_variant(self):
        with pytest.raises(ConfigurationError):
            ParSVDParallel(SelfComm(), K=3, qr_variant="bogus")

    def test_invalid_gather_policy(self):
        with pytest.raises(ConfigurationError):
            ParSVDParallel(SelfComm(), K=3, gather="bogus")

    def test_invalid_apmos_group_size(self):
        with pytest.raises(ConfigurationError):
            ParSVDParallel(SelfComm(), K=3, apmos_group_size=0)

    def test_config_knobs_forwarded(self):
        svd = ParSVDParallel(SelfComm(), K=4, ff=0.9, r1=20)
        assert svd.K == 4
        assert svd.ff == 0.9
        assert svd.config.r1 == 20


class TestSingleRank:
    def test_matches_serial_one_shot(self, decaying_matrix):
        serial = ParSVDSerial(K=5, ff=1.0).initialize(decaying_matrix)
        parallel = ParSVDParallel(SelfComm(), K=5, ff=1.0).initialize(
            decaying_matrix
        )
        comparison = compare_modes(
            serial.modes,
            serial.singular_values,
            parallel.modes,
            parallel.singular_values,
        )
        assert comparison.worst_spectrum_error < 1e-8
        assert comparison.worst_mode_error < 1e-6


class TestMultiRank:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_streaming_matches_serial(self, decaying_matrix, nranks):
        batches = [(0, 10), (10, 20), (20, 30), (30, 40)]
        serial = ParSVDSerial(K=5, ff=1.0)
        serial.initialize(decaying_matrix[:, :10])
        for start, stop in batches[1:]:
            serial.incorporate_data(decaying_matrix[:, start:stop])

        results = run_parallel(
            decaying_matrix, nranks, batches, K=5, ff=1.0, r1=40
        )
        modes, values, iteration = results[0]
        assert iteration == 4
        comparison = compare_modes(
            serial.modes, serial.singular_values, modes, values, n_modes=3
        )
        assert comparison.worst_spectrum_error < 1e-6
        assert comparison.worst_mode_error < 1e-4

    def test_all_ranks_agree_with_bcast_gather(self, decaying_matrix):
        results = run_parallel(
            decaying_matrix, 3, [(0, 20), (20, 40)], K=4, ff=0.95
        )
        ref_modes, ref_values, _ = results[0]
        for modes, values, _ in results[1:]:
            assert np.array_equal(modes, ref_modes)
            assert np.array_equal(values, ref_values)

    def test_tree_variant_matches_gather_variant(self, decaying_matrix):
        batches = [(0, 20), (20, 40)]
        gather_results = run_parallel(
            decaying_matrix, 4, batches, K=4, ff=1.0, qr_variant="gather"
        )
        tree_results = run_parallel(
            decaying_matrix, 4, batches, K=4, ff=1.0, qr_variant="tree"
        )
        gm, gv, _ = gather_results[0]
        tm, tv, _ = tree_results[0]
        assert np.allclose(gv, tv, rtol=1e-9)
        assert np.allclose(gm, tm, atol=1e-7)

    def test_modes_shape_is_global(self, decaying_matrix):
        results = run_parallel(decaying_matrix, 4, [(0, 40)], K=6)
        modes, values, _ = results[0]
        assert modes.shape == (200, 6)
        assert values.shape == (6,)

    def test_modes_globally_orthonormal(self, decaying_matrix):
        results = run_parallel(
            decaying_matrix, 3, [(0, 20), (20, 40)], K=5, ff=1.0
        )
        modes, _, _ = results[0]
        gram = modes.T @ modes
        assert np.allclose(gram, np.eye(5), atol=1e-8)


class TestGatherPolicies:
    def test_root_policy_only_rank0_has_modes(self, decaying_matrix):
        m = decaying_matrix.shape[0]

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, gather="root").initialize(block)
            if comm.rank == 0:
                return svd.modes.shape
            with pytest.raises(ShapeError):
                _ = svd.modes
            return svd.local_modes.shape

        results = run_spmd(3, job)
        assert results[0] == (200, 3)
        part = block_partition(m, 3)
        assert results[1] == (part.counts[1], 3)

    def test_none_policy_keeps_local(self, decaying_matrix):
        m = decaying_matrix.shape[0]

        def job(comm):
            part = block_partition(m, comm.size)
            block = decaying_matrix[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=3, gather="none").initialize(block)
            return svd.modes.shape, svd.local_modes.shape

        results = run_spmd(2, job)
        part = block_partition(m, 2)
        for rank, (modes_shape, local_shape) in enumerate(results):
            assert modes_shape == (part.counts[rank], 3)
            assert modes_shape == local_shape


class TestRandomized:
    def test_low_rank_close_to_dense(self, decaying_matrix):
        batches = [(0, 20), (20, 40)]
        dense = run_parallel(
            decaying_matrix, 2, batches, K=4, ff=1.0
        )
        randomized = run_parallel(
            decaying_matrix, 2, batches,
            K=4, ff=1.0, low_rank=True, oversampling=10, power_iters=2, seed=0,
        )
        dv = dense[0][1]
        rv = randomized[0][1]
        assert np.max(np.abs(dv - rv) / dv) < 1e-6

    def test_randomized_deterministic_given_seed(self, decaying_matrix):
        batches = [(0, 40)]
        a = run_parallel(
            decaying_matrix, 2, batches, K=3, low_rank=True, seed=5
        )
        b = run_parallel(
            decaying_matrix, 2, batches, K=3, low_rank=True, seed=5
        )
        assert np.array_equal(a[0][0], b[0][0])
