"""float32 end-to-end support: memory-halved pipelines keep their dtype."""

import numpy as np
import pytest

from repro import ParSVDParallel, ParSVDSerial
from repro.core.apmos import apmos_svd, generate_right_vectors
from repro.core.streaming import initialize_streaming, incorporate_batch
from repro.core.tsqr import tsqr_gather, tsqr_tree
from repro.exceptions import ShapeError
from repro.smpi import SelfComm, run_spmd
from repro.utils.linalg import as_floating
from repro.utils.partition import block_partition


@pytest.fixture
def data32(rng):
    # rank 3 < K=4 so streaming/APMOS truncation is exact and any error in
    # the accuracy test is genuinely a precision effect
    left = rng.standard_normal((150, 3)).astype(np.float32)
    right = rng.standard_normal((3, 40)).astype(np.float32)
    return left @ right


class TestAsFloating:
    def test_float32_preserved(self):
        a = np.ones((3, 2), dtype=np.float32)
        assert as_floating(a).dtype == np.float32

    def test_float64_preserved(self):
        a = np.ones((3, 2), dtype=np.float64)
        assert as_floating(a).dtype == np.float64

    def test_ints_promote(self):
        assert as_floating(np.ones((2, 2), dtype=np.int32)).dtype == np.float64

    def test_bools_promote(self):
        assert as_floating(np.ones(3, dtype=bool)).dtype == np.float64

    def test_complex_rejected(self):
        with pytest.raises(ShapeError):
            as_floating(np.ones(3, dtype=complex))

    def test_lists_promote(self):
        assert as_floating([[1, 2], [3, 4]]).dtype == np.float64


class TestStreamingFloat32:
    def test_state_stays_float32(self, data32):
        state = initialize_streaming(data32[:, :10], 4)
        assert state.modes.dtype == np.float32
        state = incorporate_batch(state, data32[:, 10:20], 4, 0.95)
        assert state.modes.dtype == np.float32
        assert state.singular_values.dtype == np.float32

    def test_serial_class_float32(self, data32):
        svd = ParSVDSerial(K=4, ff=1.0)
        svd.initialize(data32[:, :20])
        svd.incorporate_data(data32[:, 20:])
        assert svd.modes.dtype == np.float32
        assert svd.singular_values.dtype == np.float32

    def test_accuracy_within_single_precision(self, data32):
        svd = ParSVDSerial(K=4, ff=1.0)
        svd.initialize(data32[:, :20])
        svd.incorporate_data(data32[:, 20:])
        s64 = np.linalg.svd(data32.astype(np.float64), compute_uv=False)[:3]
        rel = np.abs(svd.singular_values[:3].astype(np.float64) - s64) / s64
        assert np.max(rel) < 1e-4  # single-precision regime


class TestDistributedFloat32:
    def test_apmos_float32(self, data32):
        u, s = apmos_svd(SelfComm(), data32, r1=20, r2=4)
        assert u.dtype == np.float32
        assert s.dtype == np.float32

    def test_right_vectors_float32(self, data32):
        v, s = generate_right_vectors(data32, 8)
        assert v.dtype == np.float32

    @pytest.mark.parametrize("fn", [tsqr_gather, tsqr_tree])
    def test_tsqr_float32(self, data32, fn):
        m = data32.shape[0]

        def job(comm):
            part = block_partition(m, comm.size)
            q, r = fn(comm, data32[part.slice_of(comm.rank), :20])
            return q.dtype, r.dtype

        results = run_spmd(2, job)
        for qd, rd in results:
            assert qd == np.float32
            assert rd == np.float32

    def test_parallel_class_float32(self, data32):
        m = data32.shape[0]

        def job(comm):
            part = block_partition(m, comm.size)
            block = data32[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, K=4, ff=1.0)
            svd.initialize(block[:, :20])
            svd.incorporate_data(block[:, 20:])
            return svd.modes.dtype, svd.singular_values.dtype

        results = run_spmd(2, job)
        for md, sd in results:
            assert md == np.float32
            assert sd == np.float32
