"""Unit tests for the distributed TSQR variants."""

import numpy as np
import pytest

from repro.core.tsqr import (
    level_of_absorption,
    stride_of_absorption,
    tsqr_gather,
    tsqr_tree,
)
from repro.smpi import SelfComm, run_spmd
from repro.utils.linalg import orthogonality_defect, qr_positive
from repro.utils.partition import block_partition


def run_tsqr(data, nranks, variant):
    m = data.shape[0]
    fn = tsqr_gather if variant == "gather" else tsqr_tree

    def job(comm):
        part = block_partition(m, comm.size)
        return fn(comm, data[part.slice_of(comm.rank), :])

    results = run_spmd(nranks, job)
    q = np.concatenate([r[0] for r in results], axis=0)
    return q, results[0][1], [r[1] for r in results]


@pytest.mark.parametrize("variant", ["gather", "tree"])
class TestTsqrCommon:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 7, 8])
    def test_matches_serial_qr(self, rng, variant, nranks):
        a = rng.standard_normal((160, 12))
        q, r, _ = run_tsqr(a, nranks, variant)
        q_ref, r_ref = qr_positive(a)
        assert np.allclose(r, r_ref, atol=1e-9)
        assert np.allclose(q, q_ref, atol=1e-8)

    def test_reconstruction(self, rng, variant):
        a = rng.standard_normal((90, 7))
        q, r, _ = run_tsqr(a, 3, variant)
        assert np.allclose(q @ r, a, atol=1e-10)

    def test_q_orthonormal(self, rng, variant):
        a = rng.standard_normal((120, 9))
        q, _, _ = run_tsqr(a, 4, variant)
        assert orthogonality_defect(q) < 1e-10

    def test_r_replicated_on_all_ranks(self, rng, variant):
        a = rng.standard_normal((60, 5))
        _, _, all_r = run_tsqr(a, 3, variant)
        for r in all_r[1:]:
            assert np.array_equal(r, all_r[0])

    def test_r_positive_diag(self, rng, variant):
        a = rng.standard_normal((80, 6))
        _, r, _ = run_tsqr(a, 4, variant)
        assert np.all(np.diagonal(r) >= 0)

    def test_single_rank(self, rng, variant):
        a = rng.standard_normal((40, 6))
        fn = tsqr_gather if variant == "gather" else tsqr_tree
        q, r = fn(SelfComm(), a)
        q_ref, r_ref = qr_positive(a)
        assert np.allclose(q, q_ref)
        assert np.allclose(r, r_ref)


class TestVariantsAgree:
    @pytest.mark.parametrize("nranks", [2, 3, 5, 6, 8])
    def test_gather_and_tree_identical(self, rng, nranks):
        a = rng.standard_normal((200, 10))
        qg, rg, _ = run_tsqr(a, nranks, "gather")
        qt, rt, _ = run_tsqr(a, nranks, "tree")
        assert np.allclose(rg, rt, atol=1e-9)
        assert np.allclose(qg, qt, atol=1e-8)


class TestTreeHelpers:
    def test_level_of_absorption(self):
        assert level_of_absorption(1) == 0
        assert level_of_absorption(2) == 1
        assert level_of_absorption(3) == 0
        assert level_of_absorption(4) == 2
        assert level_of_absorption(6) == 1

    def test_stride_of_absorption(self):
        assert stride_of_absorption(1) == 1
        assert stride_of_absorption(2) == 2
        assert stride_of_absorption(6) == 2
        assert stride_of_absorption(8) == 8

    def test_rank_zero_rejected(self):
        with pytest.raises(ValueError):
            level_of_absorption(0)
        with pytest.raises(ValueError):
            stride_of_absorption(0)


class TestEdgeShapes:
    def test_ranks_with_fewer_rows_than_columns(self, rng):
        """Blocks narrower than the column count still reduce correctly."""
        a = rng.standard_normal((10, 6))  # 4 ranks -> blocks of 3,3,2,2 rows
        q, r, _ = run_tsqr(a, 4, "gather")
        assert np.allclose(q @ r, a, atol=1e-10)
        assert orthogonality_defect(q) < 1e-10

    def test_streaming_width(self, rng):
        """The streaming update factors (K + batch)-wide blocks."""
        a = rng.standard_normal((300, 25))
        q, r, _ = run_tsqr(a, 6, "gather")
        assert q.shape == (300, 25)
        assert np.allclose(q @ r, a, atol=1e-9)
