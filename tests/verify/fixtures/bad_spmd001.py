"""Deliberately buggy: collective under a rank-dependent branch."""


def broadcast_from_root_only(comm, value):
    if comm.rank == 0:
        comm.bcast(value, 0)
    return value


def barrier_on_workers_only(comm):
    if comm.Get_rank() == 0:
        pass
    else:
        comm.barrier()
