"""The same deliberate bugs, every one suppressed inline."""


def broadcast_from_root_only(comm, value):
    if comm.rank == 0:
        comm.bcast(value, 0)  # spmd: ignore[SPMD001]
    return value


def fire_and_forget(comm, payload):
    comm.isend(payload, 1)  # spmd: ignore[SPMD002]
    return payload


def send_in_reserved_band(comm, payload):
    comm.send(payload, 1, 1 << 24)  # spmd: ignore[SPMD003]


def fold_in_place(comm, block, op):
    return comm.allreduce(block, op, out=block)  # spmd: ignore[SPMD004]


def patch_received_snapshot(comm, value):
    shared = comm.bcast(value, 0)
    shared[0] = 0.0  # spmd: ignore[SPMD005]
    return shared


def everything_ignored(comm, payload):
    comm.isend(payload, 1, 1 << 25)  # spmd: ignore
    return payload
