"""Deliberately buggy: out= buffer aliasing the collective's input."""


def fold_in_place(comm, block, op):
    return comm.allreduce(block, op, out=block)
