"""Deliberately buggy: hardcoded tags inside the reserved band."""


def send_in_reserved_band(comm, payload):
    comm.send(payload, 1, 1 << 24)


def recv_in_reserved_band(comm):
    return comm.recv(0, tag=16777217)
