"""Deliberately buggy: nonblocking requests that never complete."""


def fire_and_forget(comm, payload):
    comm.isend(payload, 1)
    return payload


def receive_and_drop(comm):
    request = comm.irecv(0)
    return None


def collective_dropped(comm, block, op):
    folded = comm.iallreduce(block, op)
    return block
