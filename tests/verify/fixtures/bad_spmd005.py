"""Deliberately buggy: mutating an array received from bcast."""


def patch_received_snapshot(comm, value):
    shared = comm.bcast(value, 0)
    shared[0] = 0.0
    return shared


def scale_received_alias(comm, value):
    received = comm.bcast(value, 0)
    alias = received
    alias *= 2.0
    return alias
