"""Static analyzer: every rule fires on its buggy fixture, every
suppression silences it, and the sanctioned SPMD shapes stay clean."""

import pathlib
import textwrap

import pytest

from repro.verify import RULES, lint_file, lint_paths, lint_source
from repro.verify.static import Finding

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _codes(findings):
    return [f.code for f in findings]


def _lint(snippet: str):
    return lint_source(textwrap.dedent(snippet), "<test>")


class TestFixtureFiles:
    """The deliberately-buggy fixture modules self-test every rule."""

    @pytest.mark.parametrize(
        "name, code, count",
        [
            ("bad_spmd001.py", "SPMD001", 2),
            ("bad_spmd002.py", "SPMD002", 3),
            ("bad_spmd003.py", "SPMD003", 2),
            ("bad_spmd004.py", "SPMD004", 1),
            ("bad_spmd005.py", "SPMD005", 2),
        ],
    )
    def test_rule_fires_on_fixture(self, name, code, count):
        findings = lint_file(FIXTURES / name)
        assert _codes(findings) == [code] * count

    def test_suppressed_fixture_is_clean(self):
        assert lint_file(FIXTURES / "suppressed.py") == []

    def test_lint_paths_walks_directory(self):
        findings = lint_paths([FIXTURES])
        assert {f.code for f in findings} == {
            "SPMD001",
            "SPMD002",
            "SPMD003",
            "SPMD004",
            "SPMD005",
        }

    def test_findings_carry_fixits(self):
        for finding in lint_paths([FIXTURES]):
            assert finding.fixit == RULES[finding.code].fixit
            assert finding.code in finding.format()
            assert "fix:" in finding.format()
            assert finding.to_dict()["line"] == finding.line


class TestRankBranches:
    def test_matched_if_else_is_clean(self):
        assert (
            _lint(
                """
                def f(comm, x):
                    if comm.rank == 0:
                        out = comm.bcast(x, 0)
                    else:
                        out = comm.bcast(None, 0)
                    return out
                """
            )
            == []
        )

    def test_early_return_split_is_clean(self):
        # The tracer's root/receiver shape: the root arm returns, the
        # fallthrough is the other ranks' arm.
        assert (
            _lint(
                """
                def f(comm, x):
                    if comm.rank == 0:
                        return comm.gather(x, 0)
                    comm.gather(x, 0)
                    return None
                """
            )
            == []
        )

    def test_unmatched_else_arm_flagged(self):
        findings = _lint(
            """
            def f(comm, x):
                if comm.rank == 0:
                    comm.bcast(x, 0)
                else:
                    comm.bcast(x, 0)
                    comm.barrier()
            """
        )
        assert _codes(findings) == ["SPMD001"]
        assert "'barrier'" in findings[0].message

    def test_rank_guard_without_termination_flagged(self):
        findings = _lint(
            """
            def f(comm, x):
                if comm.rank != 0:
                    comm.allreduce(x, None)
            """
        )
        assert _codes(findings) == ["SPMD001"]

    def test_raise_guard_is_not_an_arm(self):
        # `if rank-dep: raise` is a guard; the collective after it is
        # the normal path, not a divergent arm.
        assert (
            _lint(
                """
                def f(comm, x):
                    if comm.rank >= 8:
                        raise ValueError("too many ranks")
                    return comm.allreduce(x, None)
                """
            )
            == []
        )

    def test_name_indirect_condition_not_detected(self):
        # Documented limitation: rank-dependence hidden behind a name.
        assert (
            _lint(
                """
                def f(comm, x):
                    leader = comm.rank == 0
                    if leader:
                        comm.bcast(x, 0)
                """
            )
            == []
        )


class TestUnawaitedRequests:
    def test_escapes_are_clean(self):
        # The TSQR driver's idioms: subscript, attribute, call argument.
        assert (
            _lint(
                """
                def f(comm, self, requests, depth, x):
                    requests[depth] = comm.irecv(1, depth)
                    self._reply = comm.irecv(2, 0)
                    self._outbox.append(comm.isend(x, 1))
                    return comm.ibcast(x, 0)
                """
            )
            == []
        )

    def test_waited_names_are_clean(self):
        assert (
            _lint(
                """
                def f(comm, x, waitall):
                    a = comm.irecv(0)
                    b = comm.isend(x, 1)
                    waitall([a, b])
                """
            )
            == []
        )

    def test_module_level_discard_flagged(self):
        findings = _lint("comm.irecv(0)\n")
        assert _codes(findings) == ["SPMD002"]


class TestReservedTags:
    def test_band_boundary(self):
        clean = _lint("def f(comm, x):\n    comm.send(x, 1, (1 << 24) - 1)\n")
        assert clean == []
        flagged = _lint(
            "def f(comm, x):\n    comm.send(x, 1, tag=(1 << 24) + 7)\n"
        )
        assert _codes(flagged) == ["SPMD003"]
        assert "16777223" in flagged[0].message

    def test_computed_tags_not_flagged(self):
        assert (
            _lint(
                """
                def f(comm, x, base):
                    comm.send(x, 1, base + 3)
                """
            )
            == []
        )


class TestOutAliasing:
    def test_distinct_buffer_is_clean(self):
        assert (
            _lint(
                """
                def f(comm, x, buf, op):
                    return comm.allreduce(x, op, out=buf)
                """
            )
            == []
        )

    def test_igatherv_alias_flagged(self):
        findings = _lint(
            """
            def f(comm, block):
                return comm.igatherv_rows(block, 0, out=block)
            """
        )
        assert _codes(findings) == ["SPMD004"]


class TestSnapshotWrites:
    def test_copy_before_write_is_clean(self):
        assert (
            _lint(
                """
                def f(comm, x):
                    received = comm.bcast(x, 0)
                    received = received.copy()
                    received[0] = 1.0
                    return received
                """
            )
            == []
        )

    def test_mutator_method_flagged(self):
        findings = _lint(
            """
            def f(comm, x):
                shared = comm.bcast(x, 0)
                shared.fill(0.0)
            """
        )
        assert _codes(findings) == ["SPMD005"]


class TestSuppression:
    def test_bare_ignore_suppresses_all(self):
        assert (
            _lint(
                "def f(comm, x):\n"
                "    comm.isend(x, 1, 1 << 25)  # spmd: ignore\n"
            )
            == []
        )

    def test_ignore_of_other_code_keeps_finding(self):
        findings = _lint(
            "def f(comm, x):\n"
            "    comm.isend(x, 1)  # spmd: ignore[SPMD001]\n"
        )
        assert _codes(findings) == ["SPMD002"]


class TestParseErrors:
    def test_syntax_error_becomes_spmd000(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert _codes(findings) == ["SPMD000"]
        assert findings[0].path == "bad.py"


class TestShippedTreeIsClean:
    def test_repo_sources_have_zero_findings(self):
        root = pathlib.Path(__file__).resolve().parents[2]
        findings = lint_paths(
            [root / "src", root / "examples", root / "benchmarks"]
        )
        assert findings == [], "\n".join(f.format() for f in findings)


def test_finding_is_hashable_value_object():
    finding = Finding(path="p.py", line=3, col=1, code="SPMD001", message="m")
    assert finding == Finding(
        path="p.py", line=3, col=1, code="SPMD001", message="m"
    )
    assert hash(finding) is not None
