"""Cross-rank schedule conformance checker on real traced runs.

The divergent jobs are written so they *complete* on the threads
backend (unbounded mailboxes absorb the asymmetry) — which is exactly
the point of the checker: catch contract violations that would deadlock
real MPI but pass an in-process smoke test.
"""

import numpy as np
import pytest

from repro.smpi import SUM, run_spmd
from repro.smpi.tracer import CommRecord
from repro.verify import check_schedules, checked_run


def _trace(size, job):
    results, tracers = run_spmd(size, job, trace=True)
    return tracers


class TestConformingRuns:
    def test_identical_streams_conform(self):
        def job(comm):
            x = np.full(4, float(comm.rank))
            comm.bcast(x, 0)
            comm.allreduce(x, SUM)
            comm.barrier()
            return None

        report = check_schedules(_trace(3, job))
        assert report.ok
        assert report.divergence is None
        assert "conform" in report.describe()
        assert all(len(s) == 3 for s in report.streams.values())

    def test_single_rank_trivially_conforms(self):
        def job(comm):
            comm.bcast(np.ones(2), 0)

        assert check_schedules(_trace(1, job)).ok

    def test_gather_contribution_shapes_may_differ(self):
        # gatherv row counts legitimately differ per rank: not a
        # divergence.
        def job(comm):
            block = np.ones((comm.rank + 1, 3))
            comm.gatherv_rows(block, 0)

        assert check_schedules(_trace(2, job)).ok


class TestDivergentRuns:
    def test_op_order_divergence(self):
        def job(comm):
            if comm.rank == 0:
                comm.bcast(np.ones(2), 0)
                comm.barrier()
            else:
                comm.barrier()
                comm.bcast(None, 0)

        report = check_schedules(_trace(2, job))
        assert not report.ok
        assert report.divergence.index == 0
        assert report.divergence.field == "op"
        assert report.divergence.values == {0: "bcast", 1: "barrier"}
        assert "different collectives" in report.describe()

    def test_dtype_divergence(self):
        def job(comm):
            dtype = np.float64 if comm.rank == 0 else np.float32
            comm.allreduce(np.ones(3, dtype=dtype), SUM)

        report = check_schedules(_trace(2, job))
        assert not report.ok
        assert report.divergence.field == "dtype"
        assert set(report.divergence.values.values()) == {
            "float64",
            "float32",
        }

    def test_root_divergence(self):
        # Both ranks believe they are the broadcast root; on the
        # threads backend both fan out and return immediately.
        def job(comm):
            comm.bcast(np.ones(2), comm.rank)

        report = check_schedules(_trace(2, job))
        assert not report.ok
        assert report.divergence.field == "root"
        assert report.divergence.values == {0: 0, 1: 1}

    def test_shape_divergence(self):
        def job(comm):
            shape = 4 if comm.rank == 0 else 5
            comm.bcast(np.ones(shape), comm.rank)

        report = check_schedules(_trace(2, job))
        assert not report.ok
        # Root diverges first (checked before shape at the same index).
        assert report.divergence.field in ("root", "shape")

    def test_length_divergence(self):
        def job(comm):
            if comm.rank == 0:
                comm.bcast(np.ones(2), 0)

        report = check_schedules(_trace(2, job))
        assert not report.ok
        assert report.divergence.field in ("length", "op")
        assert "rank 1" in report.describe()


class TestRecordListInput:
    def test_plain_record_lists_are_accepted(self):
        streams = [
            [CommRecord(op="bcast", nbytes=8, root=0)],
            [CommRecord(op="barrier", nbytes=0)],
        ]
        report = check_schedules(streams)
        assert not report.ok
        assert report.divergence.field == "op"

    def test_p2p_records_are_filtered_out(self):
        streams = [
            [
                CommRecord(op="send", nbytes=8, peer=1),
                CommRecord(op="barrier", nbytes=0),
            ],
            [
                CommRecord(op="recv", nbytes=8, peer=0),
                CommRecord(op="barrier", nbytes=0),
            ],
        ]
        assert check_schedules(streams).ok


class TestCheckedRun:
    @pytest.fixture()
    def config(self):
        from repro.api import (
            BackendConfig,
            RunConfig,
            SolverConfig,
            StreamConfig,
        )

        return RunConfig(
            solver=SolverConfig(K=3, ff=1.0, r1=16),
            backend=BackendConfig(name="threads", size=2),
            stream=StreamConfig(batch=12),
        )

    def test_clean_workload_reports_ok(self, config):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((32, 24))

        def job(session):
            return session.fit_stream(data).result().singular_values

        report = checked_run(config, job)
        assert report.ok, report.describe()
        assert len(report.results) == 2
        assert report.schedule.ok
        assert report.leaks == []
        assert report.unawaited == []
        assert "conform" in report.describe()
