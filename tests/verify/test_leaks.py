"""Leak detector and ResourceWarning finalizers (the runtime SPMD002)."""

import gc
import warnings

import numpy as np
import pytest

from repro.smpi import create_communicator
from repro.smpi.provenance import TRACKER, track
from repro.smpi.request import CollectiveRequest
from repro.verify import format_leaks


class _NeverDone:
    """A child request that never completes (a peer that never sent)."""

    def test(self):
        return False, None

    def wait(self, timeout=None):  # pragma: no cover - never called
        raise AssertionError("wait on a never-completing child")


class TestPendingRequests:
    def test_pending_receive_is_reported_with_origin(self):
        with track(capture_tracebacks=True) as scope:
            comms = create_communicator("threads", 2)
            request = comms[1].irecv(0, 9)
            leaks = scope.pending_requests()
            assert len(leaks) == 1
            assert leaks[0].kind == "RecvRequest"
            assert "source=0" in leaks[0].detail
            assert "tag=9" in leaks[0].detail
            assert leaks[0].origin and "test_leaks" in leaks[0].origin
            assert "created at:" in leaks[0].describe()
            request.cancel()
            assert scope.pending_requests() == []

    def test_completed_receive_is_not_reported(self):
        with track() as scope:
            comms = create_communicator("threads", 2)
            comms[0].send(np.ones(3), 1, 4)
            request = comms[1].irecv(0, 4)
            request.wait(timeout=5.0)
            assert scope.pending_requests() == []

    def test_pending_collective_is_reported_with_metadata(self):
        with track() as scope:
            request = CollectiveRequest(
                [_NeverDone()],
                finalize=lambda payloads: None,
                op="iallreduce",
                root=0,
                tag=42,
            )
            leaks = scope.pending_requests()
            assert len(leaks) == 1
            assert leaks[0].kind == "CollectiveRequest"
            assert "iallreduce" in leaks[0].detail
            assert "root=0" in leaks[0].detail
            assert "tag=42" in leaks[0].detail
            request._done = True  # retire the deliberate leak


class TestUnreleasedEnvelopes:
    def test_unconsumed_message_is_reported_until_received(self):
        with track() as scope:
            comms = create_communicator("threads", 2)
            comms[0].send(np.ones(8), 1, 2)
            envelopes = scope.unreleased_envelopes()
            assert len(envelopes) == 1
            assert envelopes[0].kind == "Envelope"
            assert "tag=2" in envelopes[0].detail
            comms[1].recv(0, 2)
            assert scope.unreleased_envelopes() == []

    def test_format_leaks(self):
        with track() as scope:
            comms = create_communicator("threads", 2)
            comms[0].send(np.ones(2), 1, 7)
            text = format_leaks(scope.leaks())
            assert "1 leaked resource(s)" in text
            assert "Envelope" in text
            comms[1].recv(0, 7)
        assert format_leaks([]) == "no leaked requests or envelopes"


class TestScopeSemantics:
    def test_earlier_traffic_is_out_of_scope(self):
        comms = create_communicator("threads", 2)
        comms[0].send(np.ones(2), 1, 1)
        with track() as scope:
            assert scope.unreleased_envelopes() == []
        comms[1].recv(0, 1)

    def test_nested_scopes_compose(self):
        with track() as outer:
            comms = create_communicator("threads", 2)
            with track() as inner:
                comms[0].send(np.ones(2), 1, 3)
                assert len(inner.unreleased_envelopes()) == 1
            # Inner exit must not clear the outer scope's view.
            assert len(outer.unreleased_envelopes()) == 1
            comms[1].recv(0, 3)

    def test_tracker_disabled_records_nothing(self):
        # The global test guard keeps the tracker enabled; drain its
        # refcount to observe true-disabled behavior, then restore.
        depth = 0
        while TRACKER.enabled:
            TRACKER.disable()
            depth += 1
        try:
            comms = create_communicator("threads", 2)
            request = comms[1].irecv(0, 11)
            assert TRACKER.pending_requests() == []
            request.cancel()
        finally:
            for _ in range(depth):
                TRACKER.enable()


class TestFinalizerWarnings:
    def test_unawaited_receive_warns_on_gc(self):
        comms = create_communicator("threads", 2)
        request = comms[1].irecv(0, 5)
        with pytest.warns(ResourceWarning, match="SPMD002"):
            del request
            gc.collect()

    def test_warning_names_the_collective(self):
        request = CollectiveRequest(
            [_NeverDone()],
            finalize=lambda payloads: None,
            op="ibcast",
            root=1,
            tag=9,
        )
        with pytest.warns(ResourceWarning, match=r"ibcast, root=1, tag=9"):
            del request
            gc.collect()

    def test_warning_carries_origin_when_tracked(self):
        with track(capture_tracebacks=True):
            comms = create_communicator("threads", 2)
            request = comms[1].irecv(0, 6)
            with pytest.warns(ResourceWarning, match="created at"):
                del request
                gc.collect()

    def test_completed_request_does_not_warn(self):
        comms = create_communicator("threads", 2)
        comms[0].send(np.ones(2), 1, 8)
        request = comms[1].irecv(0, 8)
        request.wait(timeout=5.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            del request
            gc.collect()

    def test_cancelled_request_does_not_warn(self):
        comms = create_communicator("threads", 2)
        request = comms[1].irecv(0, 12)
        request.cancel()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            del request
            gc.collect()


#: Requests deliberately kept alive past a marked test's teardown, so
#: the global guard's opt-out path is genuinely exercised (see below).
_DELIBERATE_LEAKS = []


class TestPytestPlugin:
    def test_leak_guard_fixture_passes_clean_test(self, spmd_leak_guard):
        comms = create_communicator("threads", 2)
        comms[0].send(np.ones(2), 1, 1)
        comms[1].recv(0, 1)
        assert spmd_leak_guard.leaks() == []

    @pytest.mark.spmd_allow_leaks
    def test_allow_leaks_marker_opts_out(self):
        # A live, never-completed request survives this test's teardown;
        # without the marker the global guard would fail it.
        comms = create_communicator("threads", 2)
        _DELIBERATE_LEAKS.append(comms[1].irecv(0, 3))

    def test_marker_leak_cleanup(self):
        # Runs after the marked test (file order): retire its leak so
        # nothing lingers.  The guard's per-test mark means this test is
        # not blamed for the pre-existing request either way.
        while _DELIBERATE_LEAKS:
            _DELIBERATE_LEAKS.pop().cancel()
