"""The ``repro verify`` subcommand end-to-end."""

import json
import pathlib

from repro.cli import main

REPO = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures"


class TestStaticMode:
    def test_shipped_tree_is_clean(self, capsys):
        code = main(
            [
                "verify",
                str(REPO / "src"),
                str(REPO / "examples"),
                str(REPO / "benchmarks"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "no findings" in out

    def test_buggy_file_fails_with_fixit(self, capsys):
        code = main(["verify", str(FIXTURES / "bad_spmd001.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "SPMD001" in out
        assert "fix:" in out
        assert "2 finding(s)" in out

    def test_select_filters_codes(self, capsys):
        code = main(["verify", str(FIXTURES), "--select", "SPMD003"])
        out = capsys.readouterr().out
        assert code == 1
        assert "SPMD003" in out
        assert "SPMD001" not in out

    def test_select_can_silence_a_file(self, capsys):
        code = main(
            ["verify", str(FIXTURES / "bad_spmd001.py"), "--select", "SPMD005"]
        )
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = main(
            ["verify", str(FIXTURES / "bad_spmd004.py"), "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert [f["code"] for f in payload["findings"]] == ["SPMD004"]
        finding = payload["findings"][0]
        assert finding["path"].endswith("bad_spmd004.py")
        assert finding["line"] > 0
        assert "out=" in finding["message"]


class TestScheduleMode:
    def test_schedule_smoke_conforms(self, capsys):
        code = main(
            [
                "verify",
                str(FIXTURES / "suppressed.py"),
                "--schedule",
                "--ranks",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "dynamic:" in out
        assert "conform" in out
        assert "no leaked requests or envelopes" in out
        assert "no requests garbage-collected un-awaited" in out

    def test_schedule_json(self, capsys):
        code = main(
            [
                "verify",
                str(FIXTURES / "suppressed.py"),
                "--schedule",
                "--format",
                "json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["findings"] == []
        assert payload["schedule"]["ok"] is True
        assert payload["schedule"]["divergence"] is None
        assert payload["schedule"]["leaks"] == []
        assert payload["schedule"]["unawaited"] == []
