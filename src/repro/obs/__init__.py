"""repro.obs — always-on observability: metrics registry + span tracing.

The layer the ROADMAP's serving frontend, elastic/failover and GPU
dispatch items land on: a thread-safe :class:`MetricsRegistry`
(counters/gauges/log-bucket histograms, lock-striped, rolling rates), a
:class:`SpanTracer` with per-rank phase timelines and Chrome-trace
(Perfetto) export, and the install/uninstall runtime that keeps the
instrumented hot paths at zero cost while observability is off.

Quickstart::

    from repro import obs

    obs.install(metrics=True, trace=True)
    ...  # run a Session / run_spmd job
    obs.uninstall()

    print("\\n".join(obs.default_tracer().summary_lines()))
    obs.default_tracer().write_chrome_trace("trace.json")
    snapshot = obs.default_registry().snapshot()

or set :class:`repro.config.ObservabilityConfig` on a
:class:`~repro.config.RunConfig` (the ``obs`` section) and let
:class:`repro.api.Session` manage the lifecycle — ``Session.metrics``
and ``Session.dump_trace(path)`` expose the results.  The CLI surfaces
the same via ``repro profile`` and ``--metrics-json``/``--trace``.

Metric naming convention: ``repro.<subsystem>.<name>``.
"""

from .comm import ObservedCommunicator
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import (
    ObsState,
    current_registry,
    current_tracer,
    default_registry,
    default_tracer,
    install,
    installed,
    observe_communicator,
    reset,
    span,
    state,
    uninstall,
)
from .tracing import (
    PHASES,
    SpanTracer,
    phases_per_rank,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservedCommunicator",
    "ObsState",
    "PHASES",
    "SpanTracer",
    "current_registry",
    "current_tracer",
    "default_registry",
    "default_tracer",
    "install",
    "installed",
    "observe_communicator",
    "phases_per_rank",
    "reset",
    "span",
    "state",
    "uninstall",
    "validate_chrome_trace",
]
