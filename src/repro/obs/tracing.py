"""Span tracing with Chrome-trace (Perfetto) export and phase rollups.

A :class:`SpanTracer` records closed spans — named intervals tagged with a
*phase* (``ingest``, ``qr``, ``tsqr_comm``, ``svd``, ``wait``, ``flush``)
and a *rank*.  Spans nest: each thread keeps a stack, so a span opened
inside another records its parent, and the Chrome-trace export renders
the nesting as stacked slices.

Export targets:

* :meth:`SpanTracer.chrome_trace` — the ``trace_event`` JSON format
  (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
  one *pid* per rank (with ``process_name`` metadata events), one *tid*
  per thread, ``"X"`` complete events with microsecond ``ts``/``dur``.
  Load the file in ``chrome://tracing`` or https://ui.perfetto.dev.
* :meth:`SpanTracer.phase_summary` / :meth:`SpanTracer.summary_lines` —
  per-phase totals as a dict / plain-text table (what ``repro profile``
  prints).

:func:`validate_chrome_trace` is the schema check used by the test suite
and the CI profile smoke job.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, Set

__all__ = [
    "SpanTracer",
    "validate_chrome_trace",
    "phases_per_rank",
]

#: Canonical phase tags used by the built-in instrumentation.  Spans may
#: carry any string phase; these are the ones the stack emits.
PHASES = ("ingest", "qr", "tsqr_comm", "svd", "wait", "flush")


class _Span:
    """Context manager / decorator recording one closed span."""

    __slots__ = ("_tracer", "_name", "_phase", "_rank", "_t0", "_parent")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        phase: Optional[str],
        rank: Optional[int],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._phase = phase
        self._rank = rank
        self._t0 = 0.0
        self._parent: Optional[str] = None

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        t1 = time.perf_counter()
        stack = self._tracer._stack()
        if stack and stack[-1] == self._name:
            stack.pop()
        self._tracer._record(
            self._name, self._phase, self._rank, self._parent, self._t0, t1
        )

    def __call__(self, fn: Any) -> Any:
        """Decorator form: time every call of ``fn`` as a fresh span."""
        tracer, name, phase, rank = (
            self._tracer,
            self._name,
            self._phase,
            self._rank,
        )

        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with _Span(tracer, name, phase, rank):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", name)
        wrapper.__doc__ = fn.__doc__
        return wrapper


class SpanTracer:
    """Collects closed spans from any thread; exports timelines."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        # Each event: dict(name, phase, rank, tid, parent, t0, dur) with
        # t0 relative to the tracer epoch, seconds.
        self._events: List[Dict[str, Any]] = []

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(
        self,
        name: str,
        *,
        phase: Optional[str] = None,
        rank: Optional[int] = None,
    ) -> _Span:
        return _Span(self, name, phase, rank)

    def _record(
        self,
        name: str,
        phase: Optional[str],
        rank: Optional[int],
        parent: Optional[str],
        t0: float,
        t1: float,
    ) -> None:
        event = {
            "name": name,
            "phase": phase,
            "rank": rank,
            "tid": threading.get_ident(),
            "parent": parent,
            "t0": t0 - self._epoch,
            "dur": t1 - t0,
        }
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(event) for event in self._events]

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
        self._epoch = time.perf_counter()

    # -- exports ---------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome ``trace_event`` JSON object."""
        events = self.events()
        trace_events: List[Dict[str, Any]] = []
        ranks: Set[int] = set()
        for event in events:
            pid = event["rank"] if event["rank"] is not None else 0
            ranks.add(pid)
            args: Dict[str, Any] = {}
            if event["phase"] is not None:
                args["phase"] = event["phase"]
            if event["parent"] is not None:
                args["parent"] = event["parent"]
            trace_events.append(
                {
                    "name": event["name"],
                    "ph": "X",
                    "ts": event["t0"] * 1e6,
                    "dur": event["dur"] * 1e6,
                    "pid": pid,
                    "tid": event["tid"],
                    "cat": event["phase"] or "span",
                    "args": args,
                }
            )
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": rank,
                "args": {"name": f"rank {rank}"},
            }
            for rank in sorted(ranks)
        ]
        return {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: Any) -> None:
        payload = json.dumps(self.chrome_trace(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")

    def phase_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase rollup: ``{phase: {count, total_s, mean_s, max_s}}``."""
        summary: Dict[str, Dict[str, float]] = {}
        for event in self.events():
            phase = event["phase"]
            if phase is None:
                continue
            entry = summary.setdefault(
                phase, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            entry["total_s"] += event["dur"]
            entry["max_s"] = max(entry["max_s"], event["dur"])
        for entry in summary.values():
            entry["mean_s"] = (
                entry["total_s"] / entry["count"] if entry["count"] else 0.0
            )
        return summary

    def summary_lines(self) -> List[str]:
        """Plain-text per-phase table, widest phase first."""
        summary = self.phase_summary()
        if not summary:
            return []
        lines = [
            f"{'phase':<12} {'count':>7} {'total_s':>10} "
            f"{'mean_s':>10} {'max_s':>10}"
        ]
        ordered = sorted(
            summary.items(), key=lambda item: -item[1]["total_s"]
        )
        for phase, entry in ordered:
            lines.append(
                f"{phase:<12} {int(entry['count']):>7} "
                f"{entry['total_s']:>10.4f} {entry['mean_s']:>10.6f} "
                f"{entry['max_s']:>10.6f}"
            )
        return lines


def phases_per_rank(payload: Dict[str, Any]) -> Dict[Any, Set[str]]:
    """Distinct phase tags per pid (rank) in a Chrome-trace payload."""
    phases: Dict[Any, Set[str]] = {}
    for event in payload.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        phase = event.get("args", {}).get("phase")
        if phase is None:
            continue
        phases.setdefault(event.get("pid"), set()).add(phase)
    return phases


def validate_chrome_trace(payload: Any) -> None:
    """Validate a Chrome ``trace_event`` payload; raise ``ValueError``.

    Checks the structural invariants the exports rely on: a
    ``traceEvents`` list, every event carrying ``name``/``ph``/``pid``,
    and every ``"X"`` complete event carrying non-negative numeric
    ``ts``/``dur`` plus a ``tid``.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload must carry a 'traceEvents' list")
    complete = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing {key!r}")
        if event["ph"] == "X":
            complete += 1
            if "tid" not in event:
                raise ValueError(f"traceEvents[{index}] missing 'tid'")
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    raise ValueError(
                        f"traceEvents[{index}][{key!r}] must be a "
                        f"non-negative number, got {value!r}"
                    )
    if complete == 0:
        raise ValueError("trace payload has no complete ('X') span events")
