"""Communicator observation: per-op call/byte/latency metrics.

:class:`ObservedCommunicator` is the factory-level observer the
:mod:`repro.smpi` backends report through when observability is active —
a transparent proxy (like :class:`~repro.smpi.tracer.CommTracer`, but
recording aggregate metrics instead of per-payload records, so it is
cheap enough to leave on).  Every communication op is timed and
byte-counted into three metrics::

    repro.smpi.<op>.calls     counter
    repro.smpi.<op>.bytes     counter  (contribution bytes this rank handed over)
    repro.smpi.<op>.seconds   histogram

Nonblocking ops return a request proxy that additionally times the
``wait`` that completes them (``repro.smpi.wait.calls`` /
``repro.smpi.wait.seconds``) — on the overlap engine this is exactly the
non-overlapped communication time.

The proxy only exists while observability is installed
(:func:`repro.obs.runtime.observe_communicator`); disabled runs keep the
raw backend communicator and pay nothing.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from ..smpi.message import payload_nbytes
from ..smpi.request import Request, _wait_child
from .metrics import Counter, Histogram, MetricsRegistry

__all__ = ["ObservedCommunicator"]

#: Every op the proxy times.  Anything else (``iprobe``, internals) is
#: delegated untouched.
_TIMED_OPS = frozenset(
    {
        "send",
        "recv",
        "sendrecv",
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "gatherv_rows",
        "scatterv_rows",
        "reduce",
        "allreduce",
        "alltoall",
        "scan",
        "exscan",
        "reduce_scatter",
        "barrier",
        "Send",
        "Recv",
        "Bcast",
        "Gather",
        "Scatter",
        "Allgather",
        "Allreduce",
        "isend",
        "irecv",
        "ibcast",
        "igatherv_rows",
        "iallreduce",
        "ialltoall",
    }
)

#: Ops returning a request instead of a payload.
_NONBLOCKING_OPS = frozenset(
    {"isend", "irecv", "ibcast", "igatherv_rows", "iallreduce", "ialltoall"}
)


class _ObservedRequest(Request):
    """Request proxy timing the completing ``wait``/``test`` call."""

    __slots__ = ("_inner", "_wait_calls", "_wait_seconds")

    def __init__(
        self, inner: Any, wait_calls: Counter, wait_seconds: Histogram
    ) -> None:
        self._inner = inner
        self._wait_calls = wait_calls
        self._wait_seconds = wait_seconds

    def wait(self, timeout: Optional[float] = None) -> Any:
        t0 = time.perf_counter()
        result = _wait_child(self._inner, timeout)
        self._wait_seconds.observe(time.perf_counter() - t0)
        self._wait_calls.inc()
        return result

    def test(self) -> Tuple[bool, Any]:
        return self._inner.test()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def _op_nbytes(op: str, args: Tuple[Any, ...], result: Any) -> int:
    """Contribution bytes for one call: the payload this rank handed in,
    falling back to the received result for receiver-side blocking ops
    (``bcast(None, root)``, ``recv``, non-root ``scatter``)."""
    if args and args[0] is not None:
        return payload_nbytes(args[0])
    if op in _NONBLOCKING_OPS or op == "barrier":
        return 0
    return payload_nbytes(result)


class ObservedCommunicator:
    """Transparent metrics-recording proxy over any backend communicator.

    Timed-op wrappers are built lazily on first use and cached on the
    instance, so steady-state dispatch is one instance-dict hit; all
    other attributes delegate to the wrapped communicator.
    """

    def __init__(self, comm: Any, registry: MetricsRegistry) -> None:
        self._comm = comm
        self._registry = registry
        self._wait_calls = registry.counter("repro.smpi.wait.calls")
        self._wait_seconds = registry.histogram("repro.smpi.wait.seconds")

    @property
    def inner(self) -> Any:
        return self._comm

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def Get_rank(self) -> int:
        return self._comm.rank

    def Get_size(self) -> int:
        return self._comm.size

    def split(self, color: Optional[int], key: int = 0) -> Any:
        sub = self._comm.split(color, key)
        if sub is None:
            return None
        return ObservedCommunicator(sub, self._registry)

    def dup(self) -> "ObservedCommunicator":
        return ObservedCommunicator(self._comm.dup(), self._registry)

    def _make_timed(self, op: str) -> Any:
        target = getattr(self._comm, op)
        calls = self._registry.counter(f"repro.smpi.{op}.calls")
        nbytes = self._registry.counter(f"repro.smpi.{op}.bytes")
        seconds = self._registry.histogram(f"repro.smpi.{op}.seconds")
        nonblocking = op in _NONBLOCKING_OPS
        wait_calls = self._wait_calls
        wait_seconds = self._wait_seconds

        def timed(*args: Any, **kwargs: Any) -> Any:
            t0 = time.perf_counter()
            result = target(*args, **kwargs)
            seconds.observe(time.perf_counter() - t0)
            calls.inc()
            size = _op_nbytes(op, args, result)
            if size:
                nbytes.inc(size)
            if nonblocking:
                return _ObservedRequest(result, wait_calls, wait_seconds)
            return result

        timed.__name__ = op
        return timed

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        if name in _TIMED_OPS:
            wrapper = self._make_timed(name)
            # Cache on the instance: subsequent calls bypass __getattr__.
            self.__dict__[name] = wrapper
            return wrapper
        return getattr(self._comm, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ObservedCommunicator({self._comm!r})"
