"""Thread-safe metrics primitives: counters, gauges, log-bucket histograms.

A :class:`MetricsRegistry` is a named collection of metrics designed to be
left on in production code paths:

* metric objects are created once (``registry.counter(name)`` is
  get-or-create) and then updated lock-striped — the registry keeps a
  small fixed pool of locks and assigns each metric one by name hash, so
  unrelated hot counters do not contend on a single global lock;
* :class:`Histogram` uses fixed power-of-two buckets selected with
  :func:`math.frexp` — no ``log`` calls, no dynamic bucket allocation on
  the observe path;
* :class:`Counter` additionally keeps a small rolling window of
  per-second deltas so ``rate()`` reports a recent events/sec figure
  without unbounded memory.

Snapshots (:meth:`MetricsRegistry.snapshot` / ``to_json``) are plain
dicts safe to serialize; :meth:`MetricsRegistry.merge` folds another
registry in (counters and histograms add, gauges keep the max — the
convention for per-rank registries merged into a run-level view).

Naming convention: ``repro.<subsystem>.<name>`` — e.g.
``repro.smpi.allreduce.bytes``, ``repro.core.overlap_efficiency``,
``repro.serving.flush_seconds``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Histogram bucket exponents: bucket ``i`` holds values ``v`` with
#: ``2**(i-1+_MIN_EXP) < v <= 2**(i+_MIN_EXP)``.  The range covers
#: sub-microsecond timings (2**-40 ≈ 1e-12) through multi-gigabyte byte
#: counts (2**60 ≈ 1e18); out-of-range values clamp to the edge buckets.
_MIN_EXP = -40
_MAX_EXP = 60
_N_BUCKETS = _MAX_EXP - _MIN_EXP + 1


def _bucket_index(value: float) -> int:
    """Fixed log2 bucket for ``value`` (clamped; ``<= 0`` maps to 0)."""
    if value <= 0.0:
        return 0
    exp = math.frexp(value)[1]  # value = m * 2**exp, 0.5 <= m < 1
    if exp < _MIN_EXP:
        return 0
    if exp > _MAX_EXP:
        return _N_BUCKETS - 1
    return exp - _MIN_EXP


class Counter:
    """Monotonically increasing counter with a rolling-window rate."""

    def __init__(
        self, name: str, lock: threading.Lock, window_s: float = 60.0
    ) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0
        self._window_s = float(window_s)
        # Rolling rate: per-second buckets of (whole_second, delta_sum),
        # pruned on every inc — bounded by window_s entries.
        self._buckets: Deque[List[float]] = deque()

    def inc(self, amount: float = 1.0) -> None:
        now = time.monotonic()
        second = float(int(now))
        with self._lock:
            self._value += amount
            if self._buckets and self._buckets[-1][0] == second:
                self._buckets[-1][1] += amount
            else:
                self._buckets.append([second, amount])
            horizon = now - self._window_s
            while self._buckets and self._buckets[0][0] < horizon:
                self._buckets.popleft()

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def rate(self) -> float:
        """Recent events/sec over (at most) the rolling window."""
        now = time.monotonic()
        horizon = now - self._window_s
        with self._lock:
            while self._buckets and self._buckets[0][0] < horizon:
                self._buckets.popleft()
            if not self._buckets:
                return 0.0
            total = sum(bucket[1] for bucket in self._buckets)
            span = max(now - self._buckets[0][0], 1.0)
        return total / span

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value, "rate_per_s": self.rate()}


class Gauge:
    """Last-value metric (``set``), with ``inc``/``dec`` convenience."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed log2-bucket histogram (no allocation on ``observe``)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._counts = [0] * _N_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        index = _bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            buckets = {
                # Key = inclusive upper bound of the bucket, as a string
                # (JSON object keys): 2**(i + _MIN_EXP).
                repr(2.0 ** (index + _MIN_EXP)): count
                for index, count in enumerate(self._counts)
                if count
            }
            count = self._count
            total = self._sum
            lo = self._min
            hi = self._max
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": lo if count else None,
            "max": hi if count else None,
            "buckets": buckets,
        }

    def _merge_from(self, other: "Histogram") -> None:
        with other._lock:
            counts = list(other._counts)
            count = other._count
            total = other._sum
            lo = other._min
            hi = other._max
        with self._lock:
            for index, n in enumerate(counts):
                self._counts[index] += n
            self._count += count
            self._sum += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)


class MetricsRegistry:
    """Named, thread-safe collection of counters, gauges and histograms.

    Metric creation is serialized by one registry lock; updates go
    through a fixed stripe of ``n_stripes`` locks keyed by metric name,
    so hot metrics on different stripes never contend.
    """

    def __init__(self, *, window_s: float = 60.0, n_stripes: int = 16) -> None:
        self._window_s = float(window_s)
        self._create_lock = threading.Lock()
        self._stripes: Tuple[threading.Lock, ...] = tuple(
            threading.Lock() for _ in range(max(1, int(n_stripes)))
        )
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _stripe(self, name: str) -> threading.Lock:
        return self._stripes[hash(name) % len(self._stripes)]

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            with self._create_lock:
                metric = self._counters.get(name)
                if metric is None:
                    metric = Counter(
                        name, self._stripe(name), window_s=self._window_s
                    )
                    self._counters[name] = metric
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            with self._create_lock:
                metric = self._gauges.get(name)
                if metric is None:
                    metric = Gauge(name, self._stripe(name))
                    self._gauges[name] = metric
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            with self._create_lock:
                metric = self._histograms.get(name)
                if metric is None:
                    metric = Histogram(name, self._stripe(name))
                    self._histograms[name] = metric
        return metric

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict snapshot of every metric (JSON-serializable)."""
        with self._create_lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.snapshot() for c in counters},
            "gauges": {g.name: g.snapshot() for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s metrics into this registry.

        Counters and histogram buckets/count/sum add; gauges keep the
        maximum of the two values (per-rank gauges like queue depth or
        overlap efficiency merge to the worst/highest observed).  Rolling
        rate windows are not merged — ``rate()`` on the merged registry
        reflects only increments made through it.
        """
        with other._create_lock:
            counters = list(other._counters.values())
            gauges = list(other._gauges.values())
            histograms = list(other._histograms.values())
        for counter in counters:
            delta = counter.value
            if delta:
                self.counter(counter.name).inc(delta)
            else:
                self.counter(counter.name)
        for gauge in gauges:
            mine = self.gauge(gauge.name)
            mine.set(max(mine.value, gauge.value))
        for histogram in histograms:
            self.histogram(histogram.name)._merge_from(histogram)

    def reset(self) -> None:
        with self._create_lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
