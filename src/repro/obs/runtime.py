"""Process-global observability state: install/uninstall, null-cost guards.

The instrumentation threaded through the stack must cost ~nothing when
observability is off.  The contract every instrumented call site follows:

* ``state()`` is one module-global read; it returns ``None`` when
  observability is not installed — guard with ``if st is not None`` and
  allocate nothing on the disabled path;
* ``span(...)`` returns a shared null context manager when no tracer is
  active, so ``with _obs.span(...):`` is allocation-free when disabled;
* communicators are only *wrapped* (:func:`observe_communicator`) while
  state is active, so the disabled comm path is the raw backend object —
  zero overhead by construction.

``install`` is reference-counted: the per-rank :class:`repro.api.Session`
objects of one threads run each install/uninstall, and the state stays
active until the last one closes.  The default registry and tracer are
process-global singletons that *survive* uninstall, so drivers (the CLI,
``repro profile``) can export metrics and traces after the run has torn
its sessions down; ``reset()`` clears them between runs.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from .metrics import MetricsRegistry
from .tracing import SpanTracer, _Span

__all__ = [
    "ObsState",
    "default_registry",
    "default_tracer",
    "current_registry",
    "current_tracer",
    "install",
    "uninstall",
    "installed",
    "state",
    "span",
    "reset",
    "observe_communicator",
]


class ObsState:
    """Active observability configuration: a registry and/or a tracer."""

    __slots__ = ("registry", "tracer")

    def __init__(
        self,
        registry: Optional[MetricsRegistry],
        tracer: Optional[SpanTracer],
    ) -> None:
        self.registry = registry
        self.tracer = tracer


class _NullSpan:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None

    def __call__(self, fn: Any) -> Any:
        return fn


_NULL_SPAN = _NullSpan()

_LOCK = threading.Lock()
_STATE: Optional[ObsState] = None
_DEPTH = 0

_DEFAULT_REGISTRY = MetricsRegistry()
_DEFAULT_TRACER = SpanTracer()


def default_registry() -> MetricsRegistry:
    """The process-global registry (survives install/uninstall cycles)."""
    return _DEFAULT_REGISTRY


def default_tracer() -> SpanTracer:
    """The process-global tracer (survives install/uninstall cycles)."""
    return _DEFAULT_TRACER


def state() -> Optional[ObsState]:
    """The active state, or ``None`` when observability is off."""
    return _STATE


def installed() -> bool:
    return _STATE is not None


def current_registry() -> MetricsRegistry:
    """Active registry if installed with metrics, else the default one."""
    st = _STATE
    if st is not None and st.registry is not None:
        return st.registry
    return _DEFAULT_REGISTRY


def current_tracer() -> SpanTracer:
    """Active tracer if installed with tracing, else the default one."""
    st = _STATE
    if st is not None and st.tracer is not None:
        return st.tracer
    return _DEFAULT_TRACER


def install(
    *,
    metrics: bool = True,
    trace: bool = False,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[SpanTracer] = None,
) -> ObsState:
    """Activate observability; reference-counted.

    The first install decides the registry/tracer objects (defaulting to
    the process-global singletons); nested installs increment the
    reference count and may *upgrade* the state (request metrics or
    tracing that the outer install did not), never downgrade it — the
    per-rank sessions of one run all observe the same state.
    """
    global _STATE, _DEPTH
    with _LOCK:
        if _STATE is None:
            _STATE = ObsState(
                (registry or _DEFAULT_REGISTRY) if metrics else None,
                (tracer or _DEFAULT_TRACER) if trace else None,
            )
        else:
            if metrics and _STATE.registry is None:
                _STATE.registry = registry or _DEFAULT_REGISTRY
            if trace and _STATE.tracer is None:
                _STATE.tracer = tracer or _DEFAULT_TRACER
        _DEPTH += 1
        return _STATE


def uninstall() -> None:
    """Drop one install reference; deactivates at zero."""
    global _STATE, _DEPTH
    with _LOCK:
        if _DEPTH <= 0:
            return
        _DEPTH -= 1
        if _DEPTH == 0:
            _STATE = None


def span(
    name: str, *, phase: Optional[str] = None, rank: Optional[int] = None
) -> Any:
    """A tracer span when tracing is active, else a shared no-op context.

    Usable as a context manager or a decorator; the disabled path is a
    single global read plus a singleton return — no allocations.
    """
    st = _STATE
    if st is None or st.tracer is None:
        return _NULL_SPAN
    return _Span(st.tracer, name, phase, rank)


def reset() -> None:
    """Clear the process-global default registry and tracer."""
    _DEFAULT_REGISTRY.reset()
    _DEFAULT_TRACER.reset()


def observe_communicator(comm: Any) -> Any:
    """Wrap ``comm`` for metrics when active; pass through otherwise.

    Idempotent (already-observed communicators are returned as-is) and a
    no-op when observability is off or installed without metrics — the
    disabled hot path keeps the raw backend communicator.
    """
    st = _STATE
    if st is None or st.registry is None:
        return comm
    from .comm import ObservedCommunicator

    if isinstance(comm, ObservedCommunicator):
        return comm
    return ObservedCommunicator(comm, st.registry)
