"""Synthetic matrices with prescribed singular spectra.

Randomized-SVD accuracy depends on the *decay* of the singular spectrum, so
the test suite and the A3 ablation bench need matrices whose spectrum is
exactly known and shaped on demand: exponential decay (easy), polynomial
decay (harder), and a step spectrum (rank detection).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..utils.linalg import qr_positive
from ..utils.rng import RngLike, resolve_rng

__all__ = [
    "spectrum_exponential",
    "spectrum_polynomial",
    "spectrum_step",
    "matrix_with_spectrum",
    "low_rank_plus_noise",
]


def spectrum_exponential(n: int, decay: float = 0.5) -> np.ndarray:
    """``sigma_j = decay**j`` — rapidly decaying spectrum, ``j = 0..n-1``."""
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if not (0.0 < decay < 1.0):
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay}")
    return decay ** np.arange(n)


def spectrum_polynomial(n: int, power: float = 1.0) -> np.ndarray:
    """``sigma_j = (j + 1)**(-power)`` — slowly decaying spectrum."""
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if power <= 0:
        raise ConfigurationError(f"power must be positive, got {power}")
    return (np.arange(n) + 1.0) ** (-power)


def spectrum_step(n: int, rank: int, gap: float = 1e-6) -> np.ndarray:
    """Flat spectrum of 1s up to ``rank``, then a drop to ``gap``."""
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if not (0 < rank <= n):
        raise ConfigurationError(f"rank must lie in (0, {n}], got {rank}")
    if not (0.0 <= gap < 1.0):
        raise ConfigurationError(f"gap must lie in [0, 1), got {gap}")
    out = np.full(n, gap)
    out[:rank] = 1.0
    return out


def matrix_with_spectrum(
    m: int,
    n: int,
    spectrum: np.ndarray,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build ``A = U diag(sigma) V^T`` with random orthonormal factors.

    Returns ``(A, U, sigma, Vt)`` so tests can compare recovered factors to
    the exact ones.  ``len(spectrum)`` must not exceed ``min(m, n)``.
    """
    spectrum = np.asarray(spectrum, dtype=float)
    if spectrum.ndim != 1:
        raise ShapeError("spectrum must be 1-D")
    k = spectrum.shape[0]
    if k > min(m, n):
        raise ShapeError(
            f"spectrum length {k} exceeds min(m, n) = {min(m, n)}"
        )
    if np.any(np.diff(spectrum) > 0):
        raise ShapeError("spectrum must be non-increasing")
    gen = resolve_rng(rng)
    u, _ = qr_positive(gen.standard_normal((m, k)))
    v, _ = qr_positive(gen.standard_normal((n, k)))
    a = (u * spectrum[np.newaxis, :]) @ v.T
    return a, u, spectrum, v.T


def low_rank_plus_noise(
    m: int,
    n: int,
    rank: int,
    noise: float = 1e-8,
    rng: RngLike = None,
) -> np.ndarray:
    """Random rank-``rank`` matrix plus dense Gaussian noise of scale
    ``noise`` — the generic "coherent structure + measurement noise" model."""
    if rank <= 0 or rank > min(m, n):
        raise ConfigurationError(
            f"rank must lie in (0, {min(m, n)}], got {rank}"
        )
    if noise < 0:
        raise ConfigurationError(f"noise must be nonnegative, got {noise}")
    gen = resolve_rng(rng)
    left = gen.standard_normal((m, rank))
    right = gen.standard_normal((rank, n))
    a = left @ right / np.sqrt(rank)
    if noise > 0:
        a = a + noise * gen.standard_normal((m, n))
    return a
