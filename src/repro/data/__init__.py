"""Workload generators and snapshot IO (the paper's data substrates)."""

from .burgers import BurgersProblem, burgers_snapshots
from .era5_like import Era5LikeField, era5_like_snapshots
from .io import SnapshotDataset, read_local_block, write_snapshot_dataset
from .streams import (
    PrefetchStream,
    SnapshotStream,
    array_stream,
    dataset_stream,
    function_stream,
)
from .synthetic import (
    low_rank_plus_noise,
    matrix_with_spectrum,
    spectrum_exponential,
    spectrum_polynomial,
    spectrum_step,
)

__all__ = [
    "BurgersProblem",
    "burgers_snapshots",
    "Era5LikeField",
    "era5_like_snapshots",
    "SnapshotDataset",
    "write_snapshot_dataset",
    "read_local_block",
    "PrefetchStream",
    "SnapshotStream",
    "array_stream",
    "dataset_stream",
    "function_stream",
    "matrix_with_spectrum",
    "low_rank_plus_noise",
    "spectrum_exponential",
    "spectrum_polynomial",
    "spectrum_step",
]
