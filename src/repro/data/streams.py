"""Streaming batch abstraction.

The streaming SVD consumes snapshot *batches*.  A :class:`SnapshotStream`
normalises the three ways batches arise in practice — an in-memory matrix,
a snapshot container on disk, or an on-the-fly generator (the in-situ case
the paper targets, where snapshots come from a running simulation) — behind
one re-iterable interface with validated, uniform batch shapes.

:class:`PrefetchStream` wraps any snapshot stream with a bounded
background double buffer, so batch production (disk reads of an
out-of-core :func:`dataset_stream`, an expensive generator) overlaps the
consumer's compute — the ingestion half of the pipelined streaming
engine (:class:`~repro.core.parallel.ParSVDParallel` ``overlap=True`` is
the communication half).
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from ..exceptions import ShapeError
from ..obs import runtime as _obs
from .io import SnapshotDataset

__all__ = [
    "PrefetchStream",
    "SnapshotStream",
    "array_stream",
    "dataset_stream",
    "function_stream",
]


class SnapshotStream:
    """Re-iterable source of ``(n_dof, batch)`` snapshot batches.

    Parameters
    ----------
    factory:
        Zero-argument callable returning a fresh iterator of batches.
        Wrapping a *factory* (not an iterator) makes the stream re-iterable,
        so one stream object can drive several SVD runs (e.g. a serial
        reference and a parallel candidate).
    n_dof:
        Expected row count; every yielded batch is validated against it.
    n_snapshots:
        Total column count if known (informational).
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[np.ndarray]],
        n_dof: Optional[int] = None,
        n_snapshots: Optional[int] = None,
    ) -> None:
        self._factory = factory
        self.n_dof = n_dof
        self.n_snapshots = n_snapshots

    def __iter__(self) -> Iterator[np.ndarray]:
        expected_rows = self.n_dof
        for batch in self._factory():
            batch = np.asarray(batch, dtype=float)
            if batch.ndim != 2:
                raise ShapeError(
                    f"stream yielded a {batch.ndim}-D batch; expected 2-D"
                )
            if expected_rows is None:
                expected_rows = batch.shape[0]
            elif batch.shape[0] != expected_rows:
                raise ShapeError(
                    f"stream yielded a batch with {batch.shape[0]} rows; "
                    f"expected {expected_rows}"
                )
            yield batch

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "SnapshotStream":
        """Derived stream with ``fn`` applied to every batch (e.g. mean
        removal, rank-local row slicing)."""

        def factory() -> Iterator[np.ndarray]:
            return (fn(batch) for batch in self)

        return SnapshotStream(factory, n_dof=None, n_snapshots=self.n_snapshots)

    def restrict_rows(self, row_slice: slice) -> "SnapshotStream":
        """Derived stream carrying only ``row_slice`` of every batch — how a
        rank adapts a global stream to its domain-decomposed block.

        ``n_dof`` propagates through ``slice.indices``, so stepped and
        negative slices (e.g. ``slice(None, None, 2)``, ``slice(-5, None)``)
        report the true restricted row count and the derived stream
        validates every batch against it.  When the parent's ``n_dof`` is
        unknown the derived stream infers its row count from the first
        restricted batch.
        """
        stream = self.map(lambda batch: batch[row_slice, :])
        if self.n_dof is not None:
            stream.n_dof = len(range(*row_slice.indices(self.n_dof)))
        return stream


class _EndOfStream:
    """Producer sentinel: the wrapped stream is exhausted."""


class _StreamFailure:
    """Producer sentinel carrying the wrapped stream's exception."""

    def __init__(self, exception: BaseException) -> None:
        self.exception = exception


class PrefetchStream(SnapshotStream):
    """Bounded background double-buffer over any :class:`SnapshotStream`.

    A daemon producer thread iterates the wrapped stream into a queue of
    ``depth`` slots (default 2 — classic double buffering): while the
    consumer processes batch *k*, the producer is already reading batch
    *k+1* (and with an overlapped :class:`~repro.core.parallel.
    ParSVDParallel`, batch *k−1*'s collectives are still in flight — a
    three-stage software pipeline).  Exactly the wrapped stream's batches
    are yielded, in order; a producer-side exception is re-raised at the
    consumer's next batch.  Each iteration spawns a fresh producer, so the
    stream stays re-iterable; abandoning an iteration mid-stream (e.g. a
    consumer error) stops the producer promptly — a bounded queue never
    strands it blocked forever.

    Parameters
    ----------
    stream:
        The source stream — including an out-of-core
        :func:`dataset_stream`, whose disk reads then overlap compute.
    depth:
        Queue capacity (prefetched batches held at once), ``>= 1``.
    """

    def __init__(self, stream: SnapshotStream, depth: int = 2) -> None:
        if depth < 1:
            raise ShapeError(f"prefetch depth must be >= 1, got {depth}")
        self._stream = stream
        self._depth = int(depth)
        # Live producers of in-progress iterations: (stop event, thread).
        # An interrupted consumer (crash mid-fit, Session.close with
        # drop_pending) calls abort() to stop them promptly instead of
        # relying on generator finalisation.
        self._active: list = []
        self._active_lock = threading.Lock()
        super().__init__(
            self._prefetched,
            n_dof=stream.n_dof,
            n_snapshots=stream.n_snapshots,
        )

    def abort(self, join_timeout: float = 2.0) -> None:
        """Stop every live producer thread and wait for it to exit.

        Idempotent and safe concurrently with a consumer: producers check
        their stop event on every bounded put, so they exit within one
        poll interval.  After an abort the stream remains usable — the
        next iteration spawns a fresh producer.
        """
        with self._active_lock:
            active = list(self._active)
        for stop, producer in active:
            stop.set()
        for stop, producer in active:
            producer.join(timeout=join_timeout)
        with self._active_lock:
            self._active = [
                entry for entry in self._active if entry[1].is_alive()
            ]

    def _prefetched(self) -> Iterator[np.ndarray]:
        slots: "queue.Queue" = queue.Queue(maxsize=self._depth)
        stop = threading.Event()

        def produce() -> None:
            try:
                for batch in self._stream:
                    # Snapshot before queueing: an in-situ source may
                    # legally reuse one buffer per batch, and it keeps
                    # producing while the consumer still holds this one.
                    batch = np.array(batch, copy=True)
                    while not stop.is_set():
                        try:
                            slots.put(batch, timeout=0.05)
                            break
                        except queue.Full:
                            continue
                    else:
                        return
                item = _EndOfStream()
            except BaseException as exc:  # noqa: BLE001 - re-raised consumer-side
                item = _StreamFailure(exc)
            while not stop.is_set():
                try:
                    slots.put(item, timeout=0.05)
                    return
                except queue.Full:
                    continue

        producer = threading.Thread(
            target=produce, name="snapshot-prefetch", daemon=True
        )
        entry = (stop, producer)
        with self._active_lock:
            self._active.append(entry)
        producer.start()
        try:
            while True:
                # Observability: queue depth / starvation seen by the
                # consumer.  One module-global read when disabled — no
                # allocation on the hot path.
                st = _obs.state()
                if st is not None and st.registry is not None:
                    depth = slots.qsize()
                    st.registry.gauge(
                        "repro.data.prefetch.queue_depth"
                    ).set(float(depth))
                    if depth == 0:
                        st.registry.counter(
                            "repro.data.prefetch.starvation"
                        ).inc()
                item = slots.get()
                if isinstance(item, _EndOfStream):
                    return
                if isinstance(item, _StreamFailure):
                    raise item.exception
                if st is not None and st.registry is not None:
                    st.registry.counter("repro.data.prefetch.batches").inc()
                yield item
        finally:
            stop.set()
            with self._active_lock:
                if entry in self._active:
                    self._active.remove(entry)


def array_stream(matrix: np.ndarray, batch_size: int) -> SnapshotStream:
    """Stream an in-memory ``(M, N)`` matrix in column batches."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ShapeError(f"matrix must be 2-D, got ndim={matrix.ndim}")
    if batch_size <= 0:
        raise ShapeError(f"batch_size must be positive, got {batch_size}")

    def factory() -> Iterator[np.ndarray]:
        for start in range(0, matrix.shape[1], batch_size):
            yield matrix[:, start : start + batch_size]

    return SnapshotStream(
        factory, n_dof=matrix.shape[0], n_snapshots=matrix.shape[1]
    )


def dataset_stream(dataset: SnapshotDataset, batch_size: int) -> SnapshotStream:
    """Stream a disk container in column batches (out-of-core ingestion)."""
    if batch_size <= 0:
        raise ShapeError(f"batch_size must be positive, got {batch_size}")

    def factory() -> Iterator[np.ndarray]:
        return dataset.column_batches(batch_size)

    return SnapshotStream(
        factory, n_dof=dataset.n_dof, n_snapshots=dataset.n_snapshots
    )


def function_stream(
    fn: Callable[[int], Optional[np.ndarray]],
    n_batches: Optional[int] = None,
    n_dof: Optional[int] = None,
) -> SnapshotStream:
    """Stream batches produced by ``fn(batch_index)``.

    ``fn`` returns the next batch or ``None`` to end the stream — the
    in-situ pattern where a simulation produces data until it finishes.
    When ``n_batches`` is given the stream ends after that many batches
    regardless.  Passing ``n_dof`` declares the expected row count up
    front, so shape validation rejects a wrong-sized batch from the very
    first one (otherwise the first batch silently defines the row count).
    """
    if n_dof is not None and n_dof <= 0:
        raise ShapeError(f"n_dof must be positive, got {n_dof}")

    def factory() -> Iterator[np.ndarray]:
        index = 0
        while n_batches is None or index < n_batches:
            batch = fn(index)
            if batch is None:
                return
            yield batch
            index += 1

    return SnapshotStream(factory, n_dof=n_dof)
