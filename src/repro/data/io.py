"""Snapshot container with parallel (per-rank memmap) reads.

The paper's science run reads ERA5 through "parallel-IO using NetCDF4":
every rank reads only its own row block of each snapshot.  NetCDF4 is not
available offline, so this module implements a minimal self-describing
binary container with the same *access pattern*:

* a magic + JSON header (shape, dtype, user metadata),
* the snapshot matrix as one C-ordered ``(M, N)`` block,
* zero-copy windowed reads through :func:`numpy.memmap` — rank ``i`` maps
  the file and touches only its rows, which is exactly what a
  NetCDF4/HDF5 hyperslab read does underneath.

Format (little-endian)::

    bytes 0:8    magic  b"RSNAP001"
    bytes 8:16   header length H (uint64)
    bytes 16:16+H  JSON header {"shape", "dtype", "meta"}
    padding to a 64-byte boundary
    data         M*N items, C order
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Tuple, Union

import numpy as np

from ..exceptions import DataFormatError, ShapeError
from ..utils.partition import block_partition

__all__ = ["SnapshotDataset", "write_snapshot_dataset", "read_local_block"]

_MAGIC = b"RSNAP001"
_ALIGN = 64

PathLike = Union[str, pathlib.Path]


def _data_offset(header_bytes: bytes) -> int:
    raw = len(_MAGIC) + 8 + len(header_bytes)
    return ((raw + _ALIGN - 1) // _ALIGN) * _ALIGN


def write_snapshot_dataset(
    path: PathLike,
    array: np.ndarray,
    meta: Optional[dict] = None,
) -> pathlib.Path:
    """Write a full ``(M, N)`` snapshot matrix to a container file."""
    array = np.asarray(array)
    if array.ndim != 2:
        raise ShapeError(f"snapshot matrix must be 2-D, got ndim={array.ndim}")
    path = pathlib.Path(path)
    dataset = SnapshotDataset.create(
        path, array.shape, dtype=array.dtype, meta=meta
    )
    dataset.write_columns(0, array)
    return path


def read_local_block(
    path: PathLike, rank: int, nranks: int
) -> Tuple[np.ndarray, "SnapshotDataset"]:
    """Read the row block of ``rank`` out of ``nranks`` (the parallel-IO
    pattern: every rank calls this with its own id)."""
    dataset = SnapshotDataset.open(path)
    return dataset.read_rows_for_rank(rank, nranks), dataset


class SnapshotDataset:
    """Handle to one container file; supports windowed reads and writes.

    Use :meth:`create` to allocate a new file (then stream columns into it
    with :meth:`write_columns`) or :meth:`open` for an existing one.
    """

    def __init__(
        self,
        path: pathlib.Path,
        shape: Tuple[int, int],
        dtype: np.dtype,
        meta: dict,
        offset: int,
    ) -> None:
        self.path = path
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.meta = meta
        self._offset = offset

    # -- construction -------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        shape: Tuple[int, int],
        dtype: Union[str, np.dtype] = np.float64,
        meta: Optional[dict] = None,
    ) -> "SnapshotDataset":
        """Allocate a container of the given shape, filled lazily.

        The file is pre-sized (sparse where the filesystem allows) so
        streaming writers can deposit column batches in any order.
        """
        path = pathlib.Path(path)
        m, n = int(shape[0]), int(shape[1])
        if m <= 0 or n <= 0:
            raise ShapeError(f"shape must be positive, got {(m, n)}")
        dtype = np.dtype(dtype)
        meta = dict(meta or {})
        header = json.dumps(
            {"shape": [m, n], "dtype": dtype.str, "meta": meta}
        ).encode("utf-8")
        offset = _data_offset(header)
        with open(path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(np.uint64(len(header)).tobytes())
            fh.write(header)
            fh.write(b"\x00" * (offset - len(_MAGIC) - 8 - len(header)))
            fh.seek(offset + m * n * dtype.itemsize - 1)
            fh.write(b"\x00")
        return cls(path, (m, n), dtype, meta, offset)

    @classmethod
    def open(cls, path: PathLike) -> "SnapshotDataset":
        """Open an existing container, validating magic and header."""
        path = pathlib.Path(path)
        with open(path, "rb") as fh:
            magic = fh.read(len(_MAGIC))
            if magic != _MAGIC:
                raise DataFormatError(
                    f"{path}: bad magic {magic!r} (not a snapshot container)"
                )
            (header_len,) = np.frombuffer(fh.read(8), dtype=np.uint64)
            header_bytes = fh.read(int(header_len))
            if len(header_bytes) != int(header_len):
                raise DataFormatError(f"{path}: truncated header")
            try:
                header = json.loads(header_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise DataFormatError(f"{path}: corrupt header: {exc}") from exc
        for key in ("shape", "dtype"):
            if key not in header:
                raise DataFormatError(f"{path}: header missing {key!r}")
        shape = tuple(int(x) for x in header["shape"])
        if len(shape) != 2:
            raise DataFormatError(f"{path}: shape must be 2-D, got {shape}")
        dtype = np.dtype(header["dtype"])
        offset = _data_offset(header_bytes)
        expected = offset + shape[0] * shape[1] * dtype.itemsize
        actual = path.stat().st_size
        if actual < expected:
            raise DataFormatError(
                f"{path}: file has {actual} bytes, header promises {expected}"
            )
        return cls(path, shape, dtype, header.get("meta", {}), offset)

    # -- geometry helpers -----------------------------------------------------
    @property
    def n_dof(self) -> int:
        """Rows (grid degrees of freedom)."""
        return self.shape[0]

    @property
    def n_snapshots(self) -> int:
        """Columns (time snapshots)."""
        return self.shape[1]

    def _memmap(self, mode: str) -> np.memmap:
        return np.memmap(
            self.path,
            dtype=self.dtype,
            mode=mode,
            offset=self._offset,
            shape=self.shape,
            order="C",
        )

    # -- writes ---------------------------------------------------------------
    def write_columns(self, start: int, block: np.ndarray) -> None:
        """Deposit a ``(M, b)`` column batch at column ``start``."""
        block = np.asarray(block, dtype=self.dtype)
        if block.ndim != 2 or block.shape[0] != self.n_dof:
            raise ShapeError(
                f"column batch must be ({self.n_dof}, b), got {block.shape}"
            )
        stop = start + block.shape[1]
        if start < 0 or stop > self.n_snapshots:
            raise ShapeError(
                f"column window [{start}, {stop}) outside "
                f"[0, {self.n_snapshots})"
            )
        mm = self._memmap("r+")
        try:
            mm[:, start:stop] = block
            mm.flush()
        finally:
            del mm

    # -- reads -------------------------------------------------------------
    def read(self) -> np.ndarray:
        """Materialise the full matrix (small datasets / tests only)."""
        return np.array(self._memmap("r"))

    def read_window(
        self,
        row_start: int,
        row_stop: int,
        col_start: int = 0,
        col_stop: Optional[int] = None,
    ) -> np.ndarray:
        """Copy out an arbitrary ``[rows) x [cols)`` window."""
        if col_stop is None:
            col_stop = self.n_snapshots
        if not (0 <= row_start <= row_stop <= self.n_dof):
            raise ShapeError(
                f"row window [{row_start}, {row_stop}) outside "
                f"[0, {self.n_dof}]"
            )
        if not (0 <= col_start <= col_stop <= self.n_snapshots):
            raise ShapeError(
                f"column window [{col_start}, {col_stop}) outside "
                f"[0, {self.n_snapshots}]"
            )
        mm = self._memmap("r")
        try:
            return np.array(mm[row_start:row_stop, col_start:col_stop])
        finally:
            del mm

    def read_rows_for_rank(self, rank: int, nranks: int) -> np.ndarray:
        """This rank's row block under the canonical partition — the
        "every rank reads its own hyperslab" parallel-IO pattern."""
        part = block_partition(self.n_dof, nranks)
        start, stop = part.range_of(rank)
        return self.read_window(start, stop)

    def column_batches(self, batch_size: int):
        """Iterate column batches (streaming ingestion from disk)."""
        if batch_size <= 0:
            raise ShapeError(f"batch_size must be positive, got {batch_size}")
        for start in range(0, self.n_snapshots, batch_size):
            stop = min(start + batch_size, self.n_snapshots)
            yield self.read_window(0, self.n_dof, start, stop)
