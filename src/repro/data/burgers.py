"""Viscous Burgers equation snapshots (paper section 4.3, first experiment).

The paper's validation case is the 1-D viscous Burgers equation

.. math::  u_t + u u_x = \\nu u_{xx}

on ``x in [0, L]``, ``t in [0, t_f]`` with ``L = 1``, ``t_f = 2``,
``Re = 1/nu = 1000``, homogeneous Dirichlet boundaries, and the classical
Cole--Hopf analytical solution (paper Eq. 13)

.. math::
   u(x, t) = \\frac{x / (t + 1)}
                  {1 + \\sqrt{(t+1)/t_0}\\, \\exp\\!\\big(Re\\, x^2 / (4t + 4)\\big)}

with ``t_0 = exp(Re / 8)``.  The paper samples this solution directly —
"and is directly used to generate snapshots for constructing our data
matrix" — on 16384 grid points for 800 snapshots; we do the same, with the
resolution and snapshot count configurable so tests can run smaller.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.partition import BlockPartition, block_partition

__all__ = ["BurgersProblem", "burgers_snapshots"]

#: Paper values (section 4.3).
PAPER_GRID_POINTS = 16384
PAPER_SNAPSHOTS = 800
PAPER_REYNOLDS = 1000.0
PAPER_LENGTH = 1.0
PAPER_FINAL_TIME = 2.0


@dataclasses.dataclass(frozen=True)
class BurgersProblem:
    """Analytic viscous-Burgers snapshot factory.

    Parameters default to the paper's setup; shrink ``nx``/``nt`` for tests.

    Attributes
    ----------
    nx:
        Number of grid points.
    nt:
        Number of snapshots.
    reynolds:
        Reynolds number ``Re = 1 / nu``.
    length:
        Domain length ``L``.
    t_final:
        Final time ``t_f``; snapshots sample ``[0, t_f]`` uniformly.
    """

    nx: int = PAPER_GRID_POINTS
    nt: int = PAPER_SNAPSHOTS
    reynolds: float = PAPER_REYNOLDS
    length: float = PAPER_LENGTH
    t_final: float = PAPER_FINAL_TIME

    def __post_init__(self) -> None:
        if self.nx < 2:
            raise ConfigurationError(f"nx must be >= 2, got {self.nx}")
        if self.nt < 1:
            raise ConfigurationError(f"nt must be >= 1, got {self.nt}")
        if self.reynolds <= 0:
            raise ConfigurationError(
                f"Reynolds number must be positive, got {self.reynolds}"
            )
        if self.length <= 0 or self.t_final <= 0:
            raise ConfigurationError("length and t_final must be positive")

    # -- grids ---------------------------------------------------------------
    @property
    def x(self) -> np.ndarray:
        """Grid coordinates, including both boundaries."""
        return np.linspace(0.0, self.length, self.nx)

    @property
    def times(self) -> np.ndarray:
        """Snapshot times, uniform on ``[0, t_final]``."""
        return np.linspace(0.0, self.t_final, self.nt)

    @property
    def t0(self) -> float:
        """The constant ``t_0 = exp(Re / 8)`` of the analytical solution.

        Computed in log space: for ``Re = 1000``, ``exp(125)`` overflows
        nothing, but larger Re would; the solution only ever needs
        ``sqrt((t+1)/t0) * exp(...)`` which we assemble stably in
        :meth:`solution`.
        """
        return float(np.exp(self.reynolds / 8.0))

    # -- evaluation -----------------------------------------------------------
    def solution(
        self, t: float, x: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Analytical solution ``u(x, t)`` (paper Eq. 13), vectorised in x.

        Assembled in log space: the factor
        ``sqrt((t+1)/t0) * exp(Re x^2 / (4t+4))`` is evaluated as
        ``exp(0.5*log((t+1)) - Re/16 + Re x^2/(4t+4))`` so that large
        Reynolds numbers cannot overflow prematurely.
        """
        if t < 0:
            raise ConfigurationError(f"t must be nonnegative, got {t}")
        xg = self.x if x is None else np.asarray(x, dtype=float)
        re = self.reynolds
        log_factor = (
            0.5 * np.log(t + 1.0)
            - re / 16.0
            + re * xg**2 / (4.0 * t + 4.0)
        )
        # exp can overflow to inf for large x*Re; the limit of the solution
        # is 0 there, which 1/(1+inf) delivers; silence the warning.
        with np.errstate(over="ignore"):
            denom = 1.0 + np.exp(log_factor)
        return (xg / (t + 1.0)) / denom

    def snapshot_matrix(self) -> np.ndarray:
        """Full ``(nx, nt)`` snapshot matrix (columns = time instants)."""
        times = self.times
        out = np.empty((self.nx, self.nt))
        xg = self.x
        for j, t in enumerate(times):
            out[:, j] = self.solution(float(t), xg)
        return out

    def local_snapshot_matrix(
        self, rank: int, nranks: int
    ) -> Tuple[np.ndarray, BlockPartition]:
        """Row block of the snapshot matrix owned by ``rank`` of ``nranks``.

        Generates only the local rows — each SPMD rank can build its block
        without ever materialising the global matrix (the paper's
        domain-decomposed deployment).
        """
        part = block_partition(self.nx, nranks)
        xg = self.x[part.slice_of(rank)]
        out = np.empty((xg.shape[0], self.nt))
        for j, t in enumerate(self.times):
            out[:, j] = self.solution(float(t), xg)
        return out, part

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Yield the snapshot matrix in streaming column batches."""
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        times = self.times
        xg = self.x
        for start in range(0, self.nt, batch_size):
            chunk = times[start : start + batch_size]
            block = np.empty((self.nx, chunk.shape[0]))
            for j, t in enumerate(chunk):
                block[:, j] = self.solution(float(t), xg)
            yield block


def burgers_snapshots(
    nx: int = PAPER_GRID_POINTS,
    nt: int = PAPER_SNAPSHOTS,
    reynolds: float = PAPER_REYNOLDS,
) -> np.ndarray:
    """Convenience one-call snapshot matrix with the paper's defaults."""
    return BurgersProblem(nx=nx, nt=nt, reynolds=reynolds).snapshot_matrix()
