"""Synthetic ERA5-like global pressure field (paper section 4.3, Figure 2).

The paper's science application extracts coherent structures from the ERA5
global surface-pressure reanalysis (Jan 1 2013 - Dec 31 2020, 6-hourly).
That proprietary-access dataset is unavailable offline, so this module
generates a *synthetic geophysical field with known coherent structures* on
a regular latitude/longitude grid:

* a time-mean base state with a realistic pole-to-equator gradient;
* a **seasonal standing oscillation** (annual-period hemispheric see-saw) —
  the dominant coherent mode of surface pressure;
* one or more **travelling planetary waves** (eastward-propagating
  longitudinal wavenumbers, appearing in an SVD as a quadrature mode pair);
* spatially smooth **red noise** for realism.

Because the generating modes are known analytically, the reproduction of
Figure 2 can *assert* that the leading SVD modes recover the planted
structures (the original figure could only be eyeballed).

Snapshots at the paper's cadence (6-hourly over 8 years = 11 688) are
supported but the defaults are decimated so tests stay fast.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.partition import BlockPartition, block_partition
from ..utils.rng import resolve_rng

__all__ = ["Era5LikeField", "era5_like_snapshots", "PAPER_SNAPSHOT_COUNT"]

#: 6-hourly snapshots from 2013-01-01 to 2020-12-31 (2922 days, incl. leap).
PAPER_SNAPSHOT_COUNT = 2922 * 4

#: Hours per synthetic "year" when mapping snapshot index to season phase.
_HOURS_PER_YEAR = 365.25 * 24.0


@dataclasses.dataclass(frozen=True)
class Era5LikeField:
    """Synthetic global surface-pressure snapshot factory.

    Parameters
    ----------
    nlat, nlon:
        Grid resolution (ERA5 native is 721 x 1440; defaults are coarser).
    nt:
        Number of snapshots.
    dt_hours:
        Snapshot cadence in hours (paper: 6).
    seasonal_amp:
        Amplitude (hPa) of the annual standing oscillation.
    wave_amps:
        Amplitudes (hPa) of the travelling waves, one per wavenumber in
        ``wave_numbers``.
    wave_numbers:
        Longitudinal wavenumbers of the travelling waves.
    wave_period_days:
        Period of the travelling waves.
    noise_amp:
        Standard deviation (hPa) of the additive smooth noise.
    seed:
        Noise RNG seed.
    """

    nlat: int = 36
    nlon: int = 72
    nt: int = 480
    dt_hours: float = 6.0
    base_pressure: float = 1013.0
    seasonal_amp: float = 12.0
    wave_amps: Tuple[float, ...] = (6.0,)
    wave_numbers: Tuple[int, ...] = (4,)
    wave_period_days: float = 30.0
    noise_amp: float = 0.5
    seed: Optional[int] = 7

    def __post_init__(self) -> None:
        if self.nlat < 2 or self.nlon < 2:
            raise ConfigurationError("nlat and nlon must be >= 2")
        if self.nt < 1:
            raise ConfigurationError(f"nt must be >= 1, got {self.nt}")
        if self.dt_hours <= 0:
            raise ConfigurationError("dt_hours must be positive")
        if len(self.wave_amps) != len(self.wave_numbers):
            raise ConfigurationError(
                "wave_amps and wave_numbers must have equal length"
            )
        if self.noise_amp < 0:
            raise ConfigurationError("noise_amp must be nonnegative")

    # -- grids ------------------------------------------------------------
    @property
    def lat(self) -> np.ndarray:
        """Latitudes (degrees), pole to pole."""
        return np.linspace(-90.0, 90.0, self.nlat)

    @property
    def lon(self) -> np.ndarray:
        """Longitudes (degrees), periodic grid without the duplicate 360."""
        return np.linspace(0.0, 360.0, self.nlon, endpoint=False)

    @property
    def n_dof(self) -> int:
        """Degrees of freedom per snapshot (flattened grid size)."""
        return self.nlat * self.nlon

    @property
    def times_hours(self) -> np.ndarray:
        """Snapshot times in hours since the start of the record."""
        return np.arange(self.nt, dtype=float) * self.dt_hours

    # -- generating structures (ground truth) ---------------------------------
    def base_state(self) -> np.ndarray:
        """Time-mean field: pole-to-equator gradient, ``(nlat, nlon)``."""
        lat = np.radians(self.lat)
        profile = self.base_pressure + 8.0 * np.cos(2.0 * lat)
        return np.repeat(profile[:, np.newaxis], self.nlon, axis=1)

    def seasonal_pattern(self) -> np.ndarray:
        """Spatial pattern of the annual see-saw mode, ``(nlat, nlon)``."""
        lat = np.radians(self.lat)
        pattern = np.sin(lat)  # antisymmetric between hemispheres
        return np.repeat(pattern[:, np.newaxis], self.nlon, axis=1)

    def wave_patterns(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-wave ``(cos, sin)`` spatial quadrature pair, each
        ``(nlat, nlon)``, midlatitude-confined."""
        lat = np.radians(self.lat)
        lon = np.radians(self.lon)
        envelope = np.cos(lat) ** 2  # confine to mid/low latitudes
        out = []
        for wavenumber in self.wave_numbers:
            cos_part = envelope[:, np.newaxis] * np.cos(wavenumber * lon)[np.newaxis, :]
            sin_part = envelope[:, np.newaxis] * np.sin(wavenumber * lon)[np.newaxis, :]
            out.append((cos_part, sin_part))
        return out

    # -- snapshot synthesis ----------------------------------------------------
    def _temporal_coefficients(self, t_hours: np.ndarray) -> dict:
        seasonal = np.sin(2.0 * np.pi * t_hours / _HOURS_PER_YEAR)
        wave_phase = 2.0 * np.pi * t_hours / (self.wave_period_days * 24.0)
        return {"seasonal": seasonal, "wave_phase": wave_phase}

    def _noise(self, rng: np.random.Generator, nt: int) -> np.ndarray:
        """Spatially smooth noise: white in a coarse basis, interpolated up.

        Returns ``(n_dof, nt)``.
        """
        if self.noise_amp == 0.0:
            return np.zeros((self.n_dof, nt))
        coarse = rng.standard_normal((6, 12, nt))
        # Bilinear-ish upsampling by separable repetition + smoothing.
        up = np.repeat(coarse, max(self.nlat // 6, 1), axis=0)[: self.nlat]
        up = np.repeat(up, max(self.nlon // 12, 1), axis=1)[:, : self.nlon]
        if up.shape[0] < self.nlat:
            pad = np.repeat(up[-1:, :, :], self.nlat - up.shape[0], axis=0)
            up = np.concatenate([up, pad], axis=0)
        if up.shape[1] < self.nlon:
            pad = np.repeat(up[:, -1:, :], self.nlon - up.shape[1], axis=1)
            up = np.concatenate([up, pad], axis=1)
        return self.noise_amp * up.reshape(self.n_dof, nt)

    def snapshots(
        self, start: int = 0, count: Optional[int] = None
    ) -> np.ndarray:
        """Snapshot block ``(n_dof, count)`` for indices ``[start, start+count)``.

        Columns are flattened ``(nlat * nlon)`` fields.  Noise is seeded per
        snapshot index so any block of the record is reproducible
        independently of how it is chunked.
        """
        if count is None:
            count = self.nt - start
        if start < 0 or count < 0 or start + count > self.nt:
            raise ConfigurationError(
                f"snapshot window [{start}, {start + count}) outside "
                f"[0, {self.nt})"
            )
        t_hours = self.times_hours[start : start + count]
        coeffs = self._temporal_coefficients(t_hours)

        base = self.base_state().reshape(self.n_dof, 1)
        seasonal_map = self.seasonal_pattern().reshape(self.n_dof, 1)
        out = base + self.seasonal_amp * seasonal_map * coeffs["seasonal"][np.newaxis, :]
        for amp, (cos_map, sin_map) in zip(self.wave_amps, self.wave_patterns()):
            cos_flat = cos_map.reshape(self.n_dof, 1)
            sin_flat = sin_map.reshape(self.n_dof, 1)
            phase = coeffs["wave_phase"]
            out = out + amp * (
                cos_flat * np.cos(phase)[np.newaxis, :]
                + sin_flat * np.sin(phase)[np.newaxis, :]
            )
        # Chunk-independent noise: one child stream per snapshot index.
        if self.noise_amp > 0.0:
            base_seq = np.random.SeedSequence(self.seed)
            children = base_seq.spawn(self.nt)
            for j in range(count):
                rng = np.random.default_rng(children[start + j])
                out[:, j] += self._noise(rng, 1)[:, 0]
        return out

    def local_snapshots(
        self, rank: int, nranks: int, start: int = 0, count: Optional[int] = None
    ) -> Tuple[np.ndarray, BlockPartition]:
        """Row block of :meth:`snapshots` owned by ``rank`` of ``nranks``."""
        part = block_partition(self.n_dof, nranks)
        block = self.snapshots(start=start, count=count)
        return block[part.slice_of(rank), :], part

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        """Yield the record in streaming column batches."""
        if batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {batch_size}"
            )
        for start in range(0, self.nt, batch_size):
            yield self.snapshots(start, min(batch_size, self.nt - start))

    def anomaly_snapshots(
        self, start: int = 0, count: Optional[int] = None
    ) -> np.ndarray:
        """Snapshots with the analytic time-mean removed.

        Coherent-structure analysis conventionally works on anomalies;
        removing the (known) base state rather than the sample mean keeps
        blocks chunk-independent.
        """
        block = self.snapshots(start, count)
        return block - self.base_state().reshape(self.n_dof, 1)


def era5_like_snapshots(
    nlat: int = 36, nlon: int = 72, nt: int = 480, seed: Optional[int] = 7
) -> np.ndarray:
    """Convenience one-call synthetic pressure snapshot matrix."""
    return Era5LikeField(nlat=nlat, nlon=nlon, nt=nt, seed=seed).snapshots()
