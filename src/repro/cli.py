"""Command-line interface: run the paper's experiments from the shell.

Usage::

    python -m repro burgers     [--nx 2048 --nt 400 --ranks 4 --modes 10]
    python -m repro era5        [--nlat 24 --nlon 48 --nt 360 --ranks 4]
    python -m repro scaling     [--mode weak|strong --max-nodes 256]
    python -m repro serve-query [--nx 512 --queries 24 --ranks 2]
    python -m repro serve       --store DIR [--port 8080 --deadline-ms 25]
    python -m repro profile     [--ranks 4 --steps 6 --trace out.json]
    python -m repro chaos       [--ranks 4 --seed 1234 --max-restarts 2]
    python -m repro verify      [paths ...] [--schedule]
    python -m repro config      dump [run flags] | validate FILE
    python -m repro info

Every experiment subcommand resolves its flags into one typed
:class:`~repro.config.RunConfig` and drives the solver exclusively
through :class:`repro.api.Session` — the same entry point the examples
and benchmarks use.  ``repro config dump`` prints that fully-resolved
config as JSON (pipe it to a file, edit, and ``validate`` it);
``repro config validate FILE`` exits nonzero with the specific
:class:`~repro.exceptions.ConfigurationError` on any bad section, key or
value.

Every run subcommand (``burgers``, ``era5``, ``serve-query``, ``serve``,
``profile``, ``chaos``) accepts ``--config FILE`` to load a saved
:class:`~repro.config.RunConfig` JSON as the base configuration; flags
passed explicitly on the command line override the file's values (flags
left at their defaults do not).  ``scaling`` is the one exception: it
drives the analytic performance model, not a run, and takes no
RunConfig.

``repro serve`` starts the :mod:`repro.net` HTTP serving frontend over a
:class:`~repro.serving.ModeBaseStore`: ``POST /v1/query`` /
``GET /v1/jobs/{id}`` job submission with deadline-driven flushing
(``--deadline-ms``), a keyed result cache, per-tenant API keys
(``--tenant NAME:KEY``), ``/metrics`` and ``/healthz``.

Observability: the experiment subcommands accept ``--metrics-json PATH``
(dump the :mod:`repro.obs` metrics registry after the run) and
``--trace PATH`` (write the span timeline as Chrome-trace JSON, loadable
in Perfetto / ``chrome://tracing``).  ``repro profile`` runs a small
synthetic stream with both enabled and prints the per-phase breakdown.

``repro verify`` runs the SPMD collective-correctness analyzer
(:mod:`repro.verify`): a static lint of driver code against the
communicator protocol's SPMD rules, plus (``--schedule``) a dynamic
cross-rank trace conformance check with leak detection.

Each experiment prints the same tables/plots as the corresponding bench
and exits nonzero if the experiment's shape checks fail, so the CLI can be
used as a smoke test of an installation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main", "build_parser"]


def _add_backend_option(parser: argparse.ArgumentParser) -> None:
    from repro.smpi import BACKENDS, DEFAULT_BACKEND

    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=DEFAULT_BACKEND,
        help="communicator backend: 'threads' (in-process SPMD, default), "
        "'self' (single rank, zero overhead; forces --ranks 1), or "
        "'mpi4py' (real MPI; launch via mpiexec)",
    )


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prefetch",
        type=int,
        default=0,
        metavar="DEPTH",
        help="prefetch snapshot batches through a background double buffer "
        "of this depth (0 = off); batch production then overlaps compute",
    )
    parser.add_argument(
        "--overlap",
        action="store_true",
        help="pipeline the streaming update: each step's TSQR collectives "
        "stay in flight while the next batch is ingested (same numbers, "
        "asserted by the test suite)",
    )


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="after the run, dump the repro.obs metrics registry "
        "(counters/gauges/histograms) as JSON to this file",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="after the run, write the span timeline as Chrome-trace JSON "
        "to this file (open in Perfetto or chrome://tracing)",
    )


def _apply_obs_flags(cfg, args: argparse.Namespace):
    """Enable the run config's obs section for any requested output."""
    import dataclasses

    want_metrics = getattr(args, "metrics_json", None) is not None
    want_trace = getattr(args, "trace", None) is not None
    if not (want_metrics or want_trace):
        return cfg
    from repro.obs import runtime as obs_runtime

    # Each CLI invocation profiles one run: start from a clean slate.
    obs_runtime.reset()
    return dataclasses.replace(
        cfg,
        obs=dataclasses.replace(
            cfg.obs,
            metrics=cfg.obs.metrics or want_metrics,
            trace=cfg.obs.trace or want_trace,
        ),
    )


def _write_obs_outputs(args: argparse.Namespace) -> None:
    """Dump the requested metrics/trace files after a run."""
    from repro.obs import runtime as obs_runtime

    metrics_path = getattr(args, "metrics_json", None)
    if metrics_path:
        with open(metrics_path, "w", encoding="utf-8") as handle:
            handle.write(
                obs_runtime.default_registry().to_json(indent=2) + "\n"
            )
        print(f"metrics written to {metrics_path}")
    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs_runtime.default_tracer().write_chrome_trace(trace_path)
        print(
            f"trace written to {trace_path} "
            f"(open in Perfetto or chrome://tracing)"
        )


def _add_config_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--config",
        default=None,
        metavar="FILE",
        help="load a RunConfig JSON file ('repro config dump' format) as "
        "the base configuration; flags passed explicitly override its "
        "values",
    )


def _resolve_ranks(args: argparse.Namespace) -> int:
    """The 'self' backend is single-rank by construction."""
    return 1 if args.backend == "self" else args.ranks


def _backend_config(args: argparse.Namespace):
    from repro.api import BackendConfig

    return BackendConfig(name=args.backend, size=_resolve_ranks(args))


#: Per-subcommand map of CLI flag dest -> (RunConfig section, field) for
#: merging explicit flags over a --config file.
_CONFIG_OVERRIDES = {
    "burgers": {
        "modes": ("solver", "K"),
        "ff": ("solver", "ff"),
        "overlap": ("solver", "overlap"),
        "backend": ("backend", "name"),
        "ranks": ("backend", "size"),
        "batch": ("stream", "batch"),
        "prefetch": ("stream", "prefetch"),
    },
    "era5": {
        "modes": ("solver", "K"),
        "overlap": ("solver", "overlap"),
        "backend": ("backend", "name"),
        "ranks": ("backend", "size"),
        "prefetch": ("stream", "prefetch"),
    },
    "serve-query": {
        "modes": ("solver", "K"),
        "backend": ("backend", "name"),
        "ranks": ("backend", "size"),
        "batch": ("stream", "batch"),
    },
    "chaos": {
        "modes": ("solver", "K"),
        "qr_variant": ("solver", "qr_variant"),
        "backend": ("backend", "name"),
        "ranks": ("backend", "size"),
        "batch": ("stream", "batch"),
        "prefetch": ("stream", "prefetch"),
    },
    "profile": {
        "modes": ("solver", "K"),
        "backend": ("backend", "name"),
        "ranks": ("backend", "size"),
        "batch": ("stream", "batch"),
        "prefetch": ("stream", "prefetch"),
    },
    "serve": {
        "host": ("serving", "host"),
        "port": ("serving", "port"),
        "deadline_ms": ("serving", "flush_deadline_ms"),
        "max_batch": ("serving", "max_batch"),
        "cache_entries": ("serving", "result_cache_entries"),
    },
}


def _explicit_dests(
    parser: argparse.ArgumentParser, command: str, argv: List[str]
) -> set:
    """Flag dests the user actually passed for ``command``.

    Detected by matching the subparser's option strings against the raw
    argv — argparse itself does not distinguish "given" from
    "defaulted", and the --config merge must override only the former.
    """
    sub = getattr(parser, "_repro_subparsers", {}).get(command)
    if sub is None:
        return set()
    explicit = set()
    for action in sub._actions:
        for option in action.option_strings:
            if any(
                token == option or token.startswith(option + "=")
                for token in argv
            ):
                explicit.add(action.dest)
                break
    return explicit


def _config_from_file(args: argparse.Namespace, command: str):
    """A RunConfig from ``--config FILE`` with explicit flags merged in."""
    import dataclasses

    from repro.api import load_run_config

    cfg = load_run_config(args.config)
    overrides = _CONFIG_OVERRIDES[command]
    explicit = getattr(args, "_explicit", set())
    changes = {"solver": {}, "backend": {}, "stream": {}, "serving": {}}
    for dest, (section, field) in overrides.items():
        if dest in explicit:
            changes[section][field] = getattr(args, dest)
    # Mirror _resolve_ranks: the 'self' backend is single-rank.
    if changes["backend"].get("name", cfg.backend.name) == "self":
        changes["backend"]["size"] = 1
    return dataclasses.replace(
        cfg,
        **{
            section: dataclasses.replace(getattr(cfg, section), **fields)
            for section, fields in changes.items()
            if fields
        },
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PyParSVD reproduction — streaming/distributed/randomized SVD",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_burgers = sub.add_parser(
        "burgers", help="serial-vs-parallel validation on viscous Burgers"
    )
    p_burgers.add_argument("--nx", type=int, default=2048)
    p_burgers.add_argument("--nt", type=int, default=400)
    p_burgers.add_argument("--ranks", type=int, default=4)
    p_burgers.add_argument("--modes", type=int, default=10)
    p_burgers.add_argument("--batch", type=int, default=100)
    p_burgers.add_argument("--ff", type=float, default=0.95)
    _add_backend_option(p_burgers)
    _add_pipeline_options(p_burgers)
    _add_config_option(p_burgers)
    _add_obs_options(p_burgers)

    p_era5 = sub.add_parser(
        "era5", help="coherent structures of the synthetic pressure record"
    )
    p_era5.add_argument("--nlat", type=int, default=24)
    p_era5.add_argument("--nlon", type=int, default=48)
    p_era5.add_argument("--nt", type=int, default=360)
    p_era5.add_argument("--ranks", type=int, default=4)
    p_era5.add_argument("--modes", type=int, default=6)
    _add_backend_option(p_era5)
    _add_pipeline_options(p_era5)
    _add_config_option(p_era5)
    _add_obs_options(p_era5)

    p_scaling = sub.add_parser("scaling", help="scaling studies (model)")
    p_scaling.add_argument(
        "--mode", choices=("weak", "strong"), default="weak"
    )
    p_scaling.add_argument("--max-nodes", type=int, default=256)
    p_scaling.add_argument(
        "--no-calibrate",
        action="store_true",
        help="use nominal machine rates instead of measuring this machine",
    )
    p_scaling.add_argument(
        "--group-size",
        type=int,
        default=None,
        help="model the two-level hierarchical APMOS with this group size "
        "(weak scaling only)",
    )

    p_serve = sub.add_parser(
        "serve-query",
        help="sharded mode-base serving: build a basis, publish it to a "
        "store, answer micro-batched queries, verify against the serial "
        "reference",
    )
    p_serve.add_argument("--nx", type=int, default=512)
    p_serve.add_argument("--nt", type=int, default=120)
    p_serve.add_argument("--modes", type=int, default=8)
    p_serve.add_argument("--batch", type=int, default=30)
    p_serve.add_argument("--ranks", type=int, default=2)
    p_serve.add_argument("--queries", type=int, default=24)
    p_serve.add_argument(
        "--window",
        type=int,
        default=8,
        help="micro-batch window: queries coalesced per flush",
    )
    p_serve.add_argument(
        "--store",
        default=None,
        help="store directory to publish into (default: a temporary one)",
    )
    _add_backend_option(p_serve)
    _add_config_option(p_serve)
    _add_obs_options(p_serve)

    p_net = sub.add_parser(
        "serve",
        help="HTTP serving frontend (repro.net): job-based query "
        "submission over a mode-base store with deadline-driven "
        "flushing, a keyed result cache, per-tenant API keys, "
        "/metrics and /healthz",
    )
    p_net.add_argument(
        "--store",
        required=True,
        help="ModeBaseStore directory to serve (see --seed-demo)",
    )
    p_net.add_argument("--host", default="127.0.0.1")
    p_net.add_argument(
        "--port",
        type=int,
        default=8080,
        help="listen port (0 = pick an ephemeral port and print it)",
    )
    p_net.add_argument(
        "--deadline-ms",
        type=float,
        default=25.0,
        help="flush-latency SLO: a pending query is flushed once it is "
        "this old, even below the batch watermark",
    )
    p_net.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="size watermark: auto-flush once this many queries queue",
    )
    p_net.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="keyed result cache capacity (0 = off)",
    )
    p_net.add_argument(
        "--tenant",
        action="append",
        default=None,
        metavar="NAME:KEY",
        help="register a tenant API key (repeatable); with no --tenant "
        "the server is open (single-user mode)",
    )
    p_net.add_argument(
        "--seed-demo",
        action="store_true",
        help="before serving, publish a small Burgers basis as 'burgers' "
        "into the store (creates it if needed) — a self-contained demo "
        "/ smoke-test target",
    )
    _add_config_option(p_net)
    _add_obs_options(p_net)

    p_profile = sub.add_parser(
        "profile",
        help="stream a small synthetic low-rank matrix with observability "
        "on and print the per-phase timing breakdown (repro.obs); "
        "--trace/--metrics-json export the raw timeline and registry",
    )
    p_profile.add_argument("--ranks", type=int, default=4)
    p_profile.add_argument("--modes", type=int, default=8)
    p_profile.add_argument(
        "--ndof", type=int, default=1024, help="rows of the synthetic stream"
    )
    p_profile.add_argument("--batch", type=int, default=24)
    p_profile.add_argument(
        "--steps", type=int, default=6, help="number of streamed batches"
    )
    p_profile.add_argument(
        "--no-overlap",
        action="store_true",
        help="disable the pipelined streaming update (profile the "
        "blocking engine instead)",
    )
    p_profile.add_argument(
        "--prefetch",
        type=int,
        default=2,
        metavar="DEPTH",
        help="background prefetch depth for the synthetic stream (0 = off)",
    )
    _add_backend_option(p_profile)
    _add_config_option(p_profile)
    _add_obs_options(p_profile)

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection drill: stream a synthetic matrix under a "
        "seeded fault schedule (rank crash + delays) with a restart "
        "policy, then print a recovery report comparing the recovered "
        "run against the fault-free one",
    )
    p_chaos.add_argument("--ranks", type=int, default=4)
    p_chaos.add_argument("--modes", type=int, default=8)
    p_chaos.add_argument(
        "--ndof", type=int, default=256, help="rows of the synthetic stream"
    )
    p_chaos.add_argument("--batch", type=int, default=16)
    p_chaos.add_argument(
        "--steps", type=int, default=8, help="number of streamed batches"
    )
    p_chaos.add_argument(
        "--seed",
        type=int,
        default=1234,
        help="fault-schedule seed: picks the crashing rank, the crash "
        "step, and the injection RNG (same seed = same faults)",
    )
    p_chaos.add_argument(
        "--max-restarts",
        type=int,
        default=2,
        help="RestartPolicy.max_restarts for the recovery run",
    )
    p_chaos.add_argument(
        "--qr-variant", choices=("gather", "tree"), default="gather"
    )
    p_chaos.add_argument(
        "--no-overlap",
        action="store_true",
        help="disable the pipelined streaming update",
    )
    p_chaos.add_argument(
        "--prefetch",
        type=int,
        default=2,
        metavar="DEPTH",
        help="background prefetch depth for the synthetic stream (0 = off)",
    )
    p_chaos.add_argument(
        "--tol",
        type=float,
        default=1e-12,
        help="max allowed |recovered - fault-free| deviation in singular "
        "values and modes",
    )
    p_chaos.add_argument(
        "--live",
        action="store_true",
        help="recover with RestartPolicy(mode='live'): the crash triggers "
        "an in-place elastic shrink (in-memory snapshot, no stream "
        "replay) instead of restart-and-replay",
    )
    _add_backend_option(p_chaos)
    _add_obs_options(p_chaos)
    _add_config_option(p_chaos)

    p_verify = sub.add_parser(
        "verify",
        help="SPMD collective-correctness analyzer: static lint over "
        "driver code, plus --schedule for a dynamic cross-rank trace "
        "conformance and leak check",
    )
    from repro.verify.cli import add_verify_arguments

    add_verify_arguments(p_verify)

    p_config = sub.add_parser(
        "config",
        help="inspect / validate typed run configs (repro.api.RunConfig)",
    )
    config_sub = p_config.add_subparsers(dest="config_command", required=True)
    p_dump = config_sub.add_parser(
        "dump",
        help="print the fully-resolved RunConfig for the given flags as JSON",
    )
    p_dump.add_argument("--ranks", type=int, default=1)
    p_dump.add_argument("--modes", type=int, default=10)
    p_dump.add_argument("--ff", type=float, default=0.95)
    p_dump.add_argument("--batch", type=int, default=None)
    p_dump.add_argument("--source", default=None, help="snapshot container path")
    p_dump.add_argument(
        "--qr-variant", choices=("gather", "tree"), default="gather"
    )
    p_dump.add_argument(
        "--gather", choices=("bcast", "root", "none"), default="bcast"
    )
    p_dump.add_argument("--low-rank", action="store_true")
    p_dump.add_argument("--seed", type=int, default=None)
    _add_backend_option(p_dump)
    _add_pipeline_options(p_dump)
    p_validate = config_sub.add_parser(
        "validate",
        help="load a RunConfig JSON file; exit nonzero with the specific "
        "ConfigurationError if it does not validate",
    )
    p_validate.add_argument("file", help="path to a RunConfig JSON file")

    sub.add_parser("info", help="version and configuration summary")
    parser._repro_subparsers = {
        "burgers": p_burgers,
        "era5": p_era5,
        "serve-query": p_serve,
        "serve": p_net,
        "profile": p_profile,
        "chaos": p_chaos,
    }
    return parser


def _cmd_info() -> int:
    import repro
    from repro.api import RunConfig

    cfg = RunConfig()
    print(f"repro {repro.__version__} — PyParSVD reproduction (SC 2021)")
    print(
        f"defaults: K={cfg.solver.K} ff={cfg.solver.ff} r1={cfg.solver.r1} "
        f"r2={cfg.solver.r2} low_rank={cfg.solver.low_rank} "
        f"backend={cfg.backend.name}"
    )
    print("entry point: repro.api.Session / RunConfig ('repro config dump')")
    print("subpackages: api, core, smpi, data, serving, analysis, postprocessing, perf")
    return 0


def _cmd_burgers(args: argparse.Namespace) -> int:
    from repro import ParSVDSerial, compare_modes
    from repro.api import RunConfig, Session, SolverConfig, StreamConfig
    from repro.data.burgers import BurgersProblem

    if args.config:
        cfg = _config_from_file(args, "burgers")
    else:
        cfg = RunConfig(
            solver=SolverConfig(
                K=args.modes, ff=args.ff, r1=50,
                low_rank=True, oversampling=10, power_iters=2, seed=0,
                overlap=args.overlap,
            ),
            backend=_backend_config(args),
            stream=StreamConfig(batch=args.batch, prefetch=args.prefetch),
        )
    cfg = _apply_obs_flags(cfg, args)
    print(
        f"Burgers validation: {args.nx} points, {args.nt} snapshots, "
        f"K={cfg.solver.K}, {cfg.backend.size} ranks, backend={cfg.backend.name}"
    )
    data = BurgersProblem(nx=args.nx, nt=args.nt).snapshot_matrix()

    batch = cfg.stream.batch or args.batch
    serial = ParSVDSerial(K=cfg.solver.K, ff=cfg.solver.ff)
    serial.initialize(data[:, :batch])
    for start in range(batch, args.nt, batch):
        serial.incorporate_data(data[:, start : start + batch])

    def job(session: Session):
        res = session.fit_stream(data).result()
        return res.modes, res.singular_values

    modes, values = Session.run(cfg, job)[0]
    comparison = compare_modes(
        serial.modes, serial.singular_values, modes, values, n_modes=2
    )
    print(f"mode errors (leading 2): {comparison.mode_rel_errors}")
    print(f"spectrum errors        : {comparison.spectrum_rel_errors}")
    _write_obs_outputs(args)
    ok = comparison.worst_mode_error < 1e-2
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_era5(args: argparse.Namespace) -> int:
    from repro.analysis.coherent import extract_coherent_structures
    from repro.api import RunConfig, Session, SolverConfig, StreamConfig
    from repro.data.era5_like import Era5LikeField

    field = Era5LikeField(
        nlat=args.nlat, nlon=args.nlon, nt=args.nt, noise_amp=0.4, seed=11
    )
    data = field.anomaly_snapshots()
    if args.config:
        cfg = _config_from_file(args, "era5")
    else:
        cfg = RunConfig(
            solver=SolverConfig(K=args.modes, ff=1.0, r1=50, overlap=args.overlap),
            backend=_backend_config(args),
            stream=StreamConfig(
                batch=max(args.nt // 6, 1), prefetch=args.prefetch
            ),
        )
    cfg = _apply_obs_flags(cfg, args)

    def job(session: Session):
        res = session.fit_stream(data).result()
        return res.modes, res.singular_values

    modes, values = Session.run(cfg, job)[0]
    cos_map, sin_map = field.wave_patterns()[0]
    report = extract_coherent_structures(
        modes,
        values,
        ground_truth={
            "seasonal": field.seasonal_pattern().ravel(),
            "wave": np.column_stack([cos_map.ravel(), sin_map.ravel()]),
        },
        n_modes=min(3, cfg.solver.K),
    )
    for line in report.summary_lines():
        print(line)
    _write_obs_outputs(args)
    ok = (
        report.dominant_structure(0) is not None
        and report.dominant_structure(0)[1] > 0.9
    )
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_serve_query(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile

    from repro.data.burgers import BurgersProblem
    from repro.serving import ModeBaseStore

    ranks = _resolve_ranks(args)
    with contextlib.ExitStack() as stack:
        if args.store is None:
            # Ephemeral demo store, removed on exit; pass --store to keep.
            store_root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-store-")
            )
        else:
            store_root = args.store
        print(
            f"Serving demo: Burgers {args.nx}x{args.nt}, K={args.modes}, "
            f"{ranks} shards, backend={args.backend}, "
            f"{args.queries} queries, window={args.window}"
        )
        print(
            f"store: {store_root}"
            + (" (temporary, removed on exit)" if args.store is None else "")
        )
        data = BurgersProblem(nx=args.nx, nt=args.nt).snapshot_matrix()
        store = ModeBaseStore(store_root)
        return _run_serve_query(args, data, store)


def _run_serve_query(args, data, store) -> int:
    import time

    from repro.analysis.reconstruction import (
        project_coefficients,
        reconstruction_error_curve,
    )
    from repro.api import RunConfig, Session, SolverConfig, StreamConfig
    from repro.postprocessing.report import format_table

    if args.config:
        cfg = _config_from_file(args, "serve-query")
    else:
        cfg = RunConfig(
            solver=SolverConfig(K=args.modes, ff=1.0, r1=50),
            backend=_backend_config(args),
            stream=StreamConfig(batch=args.batch),
        )
    cfg = _apply_obs_flags(cfg, args)

    def build(session: Session):
        session.fit_stream(data)
        return session.export_to_store(store, "burgers")

    version = Session.run(cfg, build)[0]
    base = store.get("burgers", version)
    print(f"published 'burgers' v{version} ({base.n_dof} dof, {base.n_modes} modes)")

    rng = np.random.default_rng(0)
    queries = [
        data[:, rng.integers(0, args.nt, size=3)] for _ in range(args.queries)
    ]

    def serve(session: Session):
        engine = session.query_engine(
            store, flush_threshold=max(args.window, 1)
        )
        t0 = time.perf_counter()
        tickets = [
            (
                engine.submit_project("burgers", q),
                engine.submit_error("burgers", q),
            )
            for q in queries
        ]
        engine.flush()
        elapsed = time.perf_counter() - t0
        answers = [(tp.result(), te.result()) for tp, te in tickets]
        return answers, engine.stats(), elapsed

    answers, stats, elapsed = Session.run(cfg, serve)[0]

    worst = 0.0
    for q, (coeffs, err) in zip(queries, answers):
        ref_c = project_coefficients(base.modes, q)
        ref_e = reconstruction_error_curve(q, base.modes)[-1]
        worst = max(
            worst,
            float(np.max(np.abs(coeffs - ref_c))),
            abs(err - ref_e),
        )
    n_queries = stats["queries"]
    print(
        format_table(
            ["queries", "flushes", "gemms", "collectives", "queries_per_s"],
            [[
                n_queries,
                stats["flushes"],
                stats["gemms"],
                stats["collectives"],
                f"{n_queries / max(elapsed, 1e-9):.0f}",
            ]],
        )
    )
    print(f"worst deviation vs serial reference: {worst:.3e}")
    _write_obs_outputs(args)
    ok = worst < 1e-8
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def _parse_tenants(specs):
    from repro.config import TenantSpec
    from repro.exceptions import ConfigurationError

    tenants = []
    for spec in specs:
        name, sep, key = spec.partition(":")
        if not sep or not name or not key:
            raise ConfigurationError(
                f"--tenant expects NAME:KEY, got {spec!r}"
            )
        tenants.append(TenantSpec(name=name, key=key))
    return tuple(tenants)


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.api import (
        BackendConfig,
        ObservabilityConfig,
        RunConfig,
        Session,
        SolverConfig,
        StreamConfig,
    )
    from repro.config import ServingConfig
    from repro.net import serve_forever
    from repro.serving import ModeBaseStore

    if args.config:
        cfg = _config_from_file(args, "serve")
        if cfg.backend.size > 1:
            # The frontend owns a single-rank session; queries batch into
            # GEMMs, they do not fan out across ranks.
            cfg = cfg.replace(
                backend=dataclasses.replace(cfg.backend, size=1)
            )
    else:
        cfg = RunConfig(
            backend=BackendConfig(name="self"),
            serving=ServingConfig(
                host=args.host,
                port=args.port,
                flush_deadline_ms=args.deadline_ms,
                max_batch=args.max_batch,
                result_cache_entries=args.cache_entries,
            ),
            # /metrics serves the repro.obs registry: metering on by
            # default (override through --config).
            obs=ObservabilityConfig(metrics=True),
        )
    if args.tenant:
        cfg = cfg.replace(
            serving=dataclasses.replace(
                cfg.serving, tenants=_parse_tenants(args.tenant)
            )
        )
    cfg = _apply_obs_flags(cfg, args)

    store = ModeBaseStore(args.store)
    if args.seed_demo:
        from repro.data.burgers import BurgersProblem

        data = BurgersProblem(nx=512, nt=120).snapshot_matrix()
        seed_cfg = RunConfig(
            solver=SolverConfig(K=8, ff=1.0, r1=50),
            stream=StreamConfig(batch=30),
        )
        with Session(seed_cfg) as session:
            version = session.fit_stream(data).export_to_store(
                store, "burgers"
            )
        print(f"seeded demo basis 'burgers' v{version} into {args.store}")

    scfg = cfg.serving
    print(
        f"serving {args.store} on {scfg.host}:{scfg.port} "
        f"(deadline={scfg.flush_deadline_ms:g}ms, max_batch={scfg.max_batch}, "
        f"cache={scfg.result_cache_entries}, "
        f"tenants={len(scfg.tenants) or 'open'})"
    )
    serve_forever(store, cfg)
    _write_obs_outputs(args)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.api import (
        ObservabilityConfig,
        RunConfig,
        Session,
        SolverConfig,
        StreamConfig,
    )
    from repro.obs import runtime as obs_runtime

    if args.config:
        cfg = _config_from_file(args, "profile")
        # Profiling is the whole point of the subcommand: metrics and
        # trace are always on, whatever the file says.
        cfg = cfg.replace(
            solver=dataclasses.replace(
                cfg.solver, overlap=cfg.solver.overlap and not args.no_overlap
            ),
            stream=dataclasses.replace(
                cfg.stream,
                batch=cfg.stream.batch or args.batch,
                source=None,
            ),
            obs=ObservabilityConfig(metrics=True, trace=True),
        )
    else:
        cfg = RunConfig(
            solver=SolverConfig(
                K=args.modes, ff=0.95, overlap=not args.no_overlap
            ),
            backend=_backend_config(args),
            stream=StreamConfig(batch=args.batch, prefetch=args.prefetch),
            obs=ObservabilityConfig(metrics=True, trace=True),
        )
    ranks = cfg.backend.size
    nt = cfg.stream.batch * args.steps
    # Synthetic low-rank stream: a few smooth spatial modes modulated in
    # time, plus noise — enough structure for the solver to do real work
    # in every phase without needing a PDE solve.
    rng = np.random.default_rng(7)
    x = np.linspace(0.0, 1.0, args.ndof)
    t = np.linspace(0.0, 1.0, nt)
    rank = min(5, cfg.solver.K)
    basis = np.column_stack(
        [np.sin((i + 1) * np.pi * x) for i in range(rank)]
    )
    weights = np.column_stack(
        [np.cos((i + 1) * 2.0 * np.pi * t) / (i + 1.0) for i in range(rank)]
    )
    data = basis @ weights.T
    data += 0.01 * rng.standard_normal(data.shape)
    obs_runtime.reset()
    print(
        f"profile: {args.ndof}x{nt} synthetic stream, K={cfg.solver.K}, "
        f"{ranks} ranks, backend={cfg.backend.name}, "
        f"overlap={cfg.solver.overlap}, prefetch={cfg.stream.prefetch}"
    )

    def job(session: Session):
        return session.fit_stream(data).result().singular_values

    Session.run(cfg, job)

    tracer = obs_runtime.default_tracer()
    lines = tracer.summary_lines()
    if not lines:
        print("error: no spans recorded", file=sys.stderr)
        return 1
    print()
    for line in lines:
        print(line)
    snapshot = obs_runtime.default_registry().snapshot()
    overlap = snapshot["gauges"].get("repro.core.overlap_efficiency")
    if overlap is not None:
        print(f"\noverlap_efficiency (wait/step): {overlap:.3f}")
    comm_counters = {
        name: meter["value"]
        for name, meter in snapshot["counters"].items()
        if name.startswith("repro.smpi.") and name.endswith(".calls")
    }
    if comm_counters:
        total_calls = int(sum(comm_counters.values()))
        print(f"communicator ops metered: {total_calls}")
    _write_obs_outputs(args)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.api import (
        FaultConfig,
        FaultSpec,
        ObservabilityConfig,
        RestartPolicy,
        RunConfig,
        Session,
        SolverConfig,
        StreamConfig,
    )
    from repro.obs import runtime as obs_runtime
    from repro.smpi import provenance

    if args.config:
        base = _config_from_file(args, "chaos")
        if not base.obs.metrics:
            # The recovery report reads repro.recovery.* counters.
            base = base.replace(
                obs=dataclasses.replace(base.obs, metrics=True)
            )
        if args.no_overlap:
            base = base.replace(
                solver=dataclasses.replace(base.solver, overlap=False)
            )
        if base.stream.batch is None:
            base = base.replace(
                stream=dataclasses.replace(base.stream, batch=args.batch)
            )
    else:
        base = RunConfig(
            solver=SolverConfig(
                K=args.modes,
                ff=0.95,
                qr_variant=args.qr_variant,
                overlap=not args.no_overlap,
            ),
            backend=_backend_config(args),
            stream=StreamConfig(batch=args.batch, prefetch=args.prefetch),
            obs=ObservabilityConfig(metrics=True),
        )
    ranks = base.backend.size
    batch = base.stream.batch
    nt = batch * args.steps
    # Same synthetic low-rank stream as `repro profile`: smooth spatial
    # modes modulated in time plus noise.
    rng = np.random.default_rng(7)
    x = np.linspace(0.0, 1.0, args.ndof)
    t = np.linspace(0.0, 1.0, nt)
    rank = min(5, base.solver.K)
    basis = np.column_stack(
        [np.sin((i + 1) * np.pi * x) for i in range(rank)]
    )
    weights = np.column_stack(
        [np.cos((i + 1) * 2.0 * np.pi * t) / (i + 1.0) for i in range(rank)]
    )
    data = basis @ weights.T
    data += 0.01 * rng.standard_normal(data.shape)

    def job(session: Session):
        result = session.fit_stream(data).result()
        return result.singular_values, result.modes

    print(
        f"chaos: {args.ndof}x{nt} synthetic stream, K={base.solver.K}, "
        f"{ranks} ranks, backend={base.backend.name}, "
        f"qr_variant={base.solver.qr_variant}, seed={args.seed}"
    )
    print("fault-free reference run ...")
    clean = Session.run(base, job)

    # Seeded schedule: one rank dies at a random (but reproducible) op,
    # another gets a few injected delays so slow-and-dead coexist.
    frng = np.random.default_rng(args.seed)
    crash_rank = int(frng.integers(0, ranks))
    # The live path gathers its snapshots in memory (no per-batch
    # checkpoint collectives), so each rank executes fewer communicator
    # ops per stream — keep the crash ordinal inside the live op window.
    crash_high = max(7, 2 * args.steps - 2) if args.live else 30
    crash_at = int(frng.integers(5, crash_high))
    delay_rank = int(frng.integers(0, ranks))
    schedule = (
        FaultSpec(kind="crash", rank=crash_rank, op="*", at=crash_at),
        FaultSpec(
            kind="delay",
            rank=delay_rank,
            op="bcast",
            at=0,
            count=3,
            delay_s=0.002,
        ),
    )
    for spec in schedule:
        print(
            f"injecting: {spec.kind}(rank={spec.rank}, op={spec.op!r}, "
            f"at={spec.at}, count={spec.count})"
        )
    cfg = base.replace(
        faults=FaultConfig(enabled=True, seed=args.seed, schedule=schedule)
    )
    if args.live:
        # Live elasticity needs a heartbeat-monitored world.
        from repro.config import HealthConfig

        cfg = cfg.replace(
            health=HealthConfig(
                enabled=True, heartbeat_interval=0.01, suspect_after=0.1
            )
        )
        policy = RestartPolicy(
            mode="live", max_restarts=args.max_restarts, checkpoint_every=1
        )
        print(
            f"chaos run with live elasticity "
            f"(max_restarts={policy.max_restarts}) ..."
        )
    else:
        policy = RestartPolicy(
            max_restarts=args.max_restarts, backoff_s=0.05, checkpoint_every=1
        )
        print(
            f"chaos run with restart policy "
            f"(max_restarts={policy.max_restarts}) ..."
        )
    obs_runtime.reset()
    with provenance.track() as scope:
        recovered = Session.run(cfg, job, restart_policy=policy)
    leaked = scope.pending_requests()

    counters = obs_runtime.default_registry().snapshot()["counters"]

    def count(name: str) -> int:
        meter = counters.get(name)
        return int(meter["value"]) if meter else 0

    restarts = count("repro.recovery.restarts")
    replayed = count("repro.recovery.replayed_batches")
    live_rescales = count("repro.recovery.live_rescales")
    injected = {
        kind: count(f"repro.faults.injected.{kind}")
        for kind in ("crash", "delay", "jitter", "drop")
    }
    dsv = max(
        float(np.abs(c[0] - r[0]).max()) for c, r in zip(clean, recovered)
    )
    dmodes = max(
        float(np.abs(np.abs(c[1]) - np.abs(r[1])).max())
        for c, r in zip(clean, recovered)
        if c[1] is not None and r[1] is not None
    )

    print()
    print("recovery report")
    print(f"  restarts:         {restarts}")
    print(f"  replayed batches: {replayed}")
    print(f"  live rescales:    {live_rescales}")
    print(
        "  injected:         "
        + " ".join(f"{kind}={n}" for kind, n in injected.items())
    )
    print(f"  leaked requests:  {len(leaked)}")
    for leak in leaked[:8]:
        print(f"    - {leak.describe()}")
    print(f"  max |dsigma| vs fault-free: {dsv:.3e}")
    print(f"  max |dmodes| vs fault-free: {dmodes:.3e}")

    failed = []
    if args.live:
        if injected["crash"] > 0 and live_rescales < 1:
            failed.append(
                "a crash was injected but no live rescale happened"
            )
        if replayed > 0:
            failed.append(
                f"live recovery must not replay the stream "
                f"({replayed} batch(es) replayed)"
            )
    elif injected["crash"] > 0 and restarts < 1:
        failed.append("a crash was injected but no restart happened")
    if dsv > args.tol or dmodes > args.tol:
        failed.append(
            f"recovered run deviates from the fault-free run (tol {args.tol})"
        )
    if leaked:
        failed.append(f"{len(leaked)} request(s) leaked across recovery")
    _write_obs_outputs(args)
    if failed:
        for reason in failed:
            print(f"error: {reason}", file=sys.stderr)
        return 1
    print("recovery OK: recovered run matches the fault-free run")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.perf.machine import THETA_KNL
    from repro.perf.scaling import StrongScalingStudy, WeakScalingStudy
    from repro.postprocessing.report import scaling_report

    calibrate = not args.no_calibrate
    if args.mode == "weak":
        study = WeakScalingStudy(machine=THETA_KNL, calibrate=calibrate)
        counts = study.paper_rank_counts(max_nodes=args.max_nodes)
        result = study.run(counts, group_size=args.group_size)
        label = "weak scaling"
        if args.group_size:
            label += f" (two-level, groups of {args.group_size})"
        print(scaling_report(list(result.ranks), list(result.times), label=label))
        return 0
    study = StrongScalingStudy(machine=THETA_KNL, calibrate=calibrate)
    counts = [1 << i for i in range(15) if (1 << i) <= args.max_nodes * 64]
    result = study.run(counts)
    print(scaling_report(list(result.ranks), list(result.times), label="strong scaling"))
    print(f"speedups: {np.round(study.speedups(result), 2)}")
    print(f"turnover at ~{study.turnover_ranks()} ranks")
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    from repro.api import RunConfig, SolverConfig, StreamConfig, load_run_config

    if args.config_command == "validate":
        cfg = load_run_config(args.file)
        print(f"{args.file}: valid RunConfig")
        print(cfg.to_json(indent=2))
        return 0
    cfg = RunConfig(
        solver=SolverConfig(
            K=args.modes,
            ff=args.ff,
            low_rank=args.low_rank,
            seed=args.seed,
            qr_variant=args.qr_variant,
            gather=args.gather,
            overlap=args.overlap,
        ),
        backend=_backend_config(args),
        stream=StreamConfig(
            source=args.source, batch=args.batch, prefetch=args.prefetch
        ),
    )
    print(cfg.to_json(indent=2))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.exceptions import ConfigurationError
    from repro.smpi import ParallelFailure, SmpiError

    parser = build_parser()
    args = parser.parse_args(argv)
    raw = list(sys.argv[1:] if argv is None else argv)
    args._explicit = _explicit_dests(parser, args.command, raw)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "burgers":
            return _cmd_burgers(args)
        if args.command == "era5":
            return _cmd_era5(args)
        if args.command == "scaling":
            return _cmd_scaling(args)
        if args.command == "serve-query":
            return _cmd_serve_query(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "verify":
            from repro.verify.cli import run_verify

            return run_verify(args)
        if args.command == "config":
            return _cmd_config(args)
    except ParallelFailure:
        # A rank crashed inside the job: that is a bug, not a user error —
        # let the wrapped per-rank traceback propagate.
        raise
    except (ConfigurationError, SmpiError) as exc:
        # Misconfiguration (e.g. an unusable backend or an invalid run
        # config file) is a user error, not a crash: print the message,
        # not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
