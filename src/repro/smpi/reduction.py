"""Reduction operations for ``reduce``/``allreduce``.

Each :class:`ReduceOp` is a named, associative binary operation.  Operations
work elementwise on NumPy arrays and on plain Python scalars.  ``MAXLOC`` and
``MINLOC`` operate on ``(value, location)`` pairs, as in MPI.

Reductions are applied in rank order (``((v0 op v1) op v2) ...``) so that
floating-point results are deterministic for a fixed rank count — the same
guarantee most MPI implementations give in practice for a fixed topology.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "MAXLOC",
    "MINLOC",
]


class ReduceOp:
    """A named associative binary reduction operation.

    Parameters
    ----------
    name:
        Display name (e.g. ``"SUM"``).
    fn:
        Binary callable combining two operands.
    ufunc:
        Optional NumPy ufunc computing the same elementwise operation with
        ``out=`` support.  When present, :meth:`fold_into` accumulates a
        whole reduction into a caller-provided buffer without allocating
        any intermediate — the allocation-free ``allreduce(..., out=)``
        lane uses it.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Any], Any],
        ufunc: Optional[Callable[..., Any]] = None,
    ) -> None:
        self.name = name
        self._fn = fn
        self.ufunc = ufunc

    def __call__(self, a: Any, b: Any) -> Any:
        return self._fn(a, b)

    def reduce_sequence(self, values: Sequence[Any]) -> Any:
        """Left-fold ``values`` in order; requires at least one value."""
        if len(values) == 0:
            raise ValueError(f"cannot {self.name}-reduce an empty sequence")
        acc = values[0]
        for value in values[1:]:
            acc = self._fn(acc, value)
        return acc

    def fold_into(self, out: np.ndarray, values: Sequence[Any]) -> np.ndarray:
        """Left-fold array ``values`` into preallocated ``out``.

        Identical numbers to :meth:`reduce_sequence` (same rank-ascending
        fold, same elementwise operation), but every partial lands in
        ``out`` via the op's ufunc — zero intermediates.  Ops without a
        ufunc (``MAXLOC``/``MINLOC`` operate on pairs, not arrays) fall
        back to the allocating fold and copy the result in.
        """
        if len(values) == 0:
            raise ValueError(f"cannot {self.name}-reduce an empty sequence")
        if self.ufunc is None:
            out[...] = self.reduce_sequence(values)
            return out
        np.copyto(out, values[0])
        for value in values[1:]:
            self.ufunc(out, value, out=out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


def _maxloc(a: Tuple[Any, Any], b: Tuple[Any, Any]) -> Tuple[Any, Any]:
    # Ties resolve to the lower location, matching MPI_MAXLOC.
    if b[0] > a[0] or (b[0] == a[0] and b[1] < a[1]):
        return b
    return a


def _minloc(a: Tuple[Any, Any], b: Tuple[Any, Any]) -> Tuple[Any, Any]:
    if b[0] < a[0] or (b[0] == a[0] and b[1] < a[1]):
        return b
    return a


SUM = ReduceOp("SUM", lambda a, b: a + b, ufunc=np.add)
PROD = ReduceOp("PROD", lambda a, b: a * b, ufunc=np.multiply)
MAX = ReduceOp("MAX", lambda a, b: np.maximum(a, b), ufunc=np.maximum)
MIN = ReduceOp("MIN", lambda a, b: np.minimum(a, b), ufunc=np.minimum)
LAND = ReduceOp("LAND", lambda a, b: np.logical_and(a, b), ufunc=np.logical_and)
LOR = ReduceOp("LOR", lambda a, b: np.logical_or(a, b), ufunc=np.logical_or)
MAXLOC = ReduceOp("MAXLOC", _maxloc)
MINLOC = ReduceOp("MINLOC", _minloc)
