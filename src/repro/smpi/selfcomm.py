"""``SelfCommunicator`` — a zero-overhead single-rank communicator.

:class:`~repro.smpi.communicator.SelfComm` satisfies the communicator
protocol by spinning up a one-rank :class:`~repro.smpi.world.World` with its
mailboxes and locks; every collective still walks the full point-to-point
delivery path.  That fidelity is wasted when the caller just wants the
parallel algorithms to run on one rank (serial validation, notebooks, the
``"self"`` backend of :func:`repro.smpi.factory.create_communicator`).

``SelfCommunicator`` instead short-circuits every collective to the
identity: no mailboxes, no locks, no threads, no copies for collectives
(mirroring MPI, where a root's ``bcast``/``gather`` contribution is its own
buffer, not wire traffic).  Point-to-point *self*-sends still snapshot the
payload (value semantics) through a plain FIFO, so code that posts to itself
behaves exactly as under the threaded backend.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .buffered import BufferedOpsMixin
from .derived import fold_output_usable, rows_output_usable
from .exceptions import DeadlockError, RankError, SmpiError, TagError
from .message import Envelope, copy_payload, take_payload
from .reduction import ReduceOp
from .request import CollectiveRequest, Request, SendRequest

__all__ = ["SelfCommunicator"]

_ANY = -1


class _SelfRecvRequest(Request):
    """Pending receive against the communicator's own FIFO."""

    def __init__(self, comm: "SelfCommunicator", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._done:
            self._payload = self._comm._take(self._source, self._tag)
            self._done = True
        return self._payload

    def test(self) -> Tuple[bool, Optional[Any]]:
        if self._done:
            return True, self._payload
        envelope = self._comm._poll(self._source, self._tag)
        if envelope is None:
            return False, None
        self._payload = take_payload(envelope)
        self._done = True
        return True, self._payload


class SelfCommunicator(BufferedOpsMixin):
    """Single-rank communicator with all collectives short-circuited.

    Implements the full communicator protocol documented in
    :mod:`repro.smpi.factory`; ``rank == 0`` and ``size == 1`` always.
    """

    rank = 0
    size = 1

    def __init__(self) -> None:
        self._queue: List[Envelope] = []

    # -- mpi4py-style accessors ------------------------------------------
    def Get_rank(self) -> int:
        return 0

    def Get_size(self) -> int:
        return 1

    # -- helpers -----------------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> None:
        if peer != 0:
            raise RankError(
                f"{what} rank {peer} outside [0, 1) on a single-rank "
                f"communicator"
            )

    def _check_tag(self, tag: int) -> None:
        if tag < 0:
            raise TagError(
                f"user tags must be nonnegative (negative tags are reserved "
                f"for collectives), got {tag}"
            )

    def _take(self, source: int, tag: int) -> Any:
        envelope = self._poll(source, tag)
        if envelope is None:
            # With one rank no other sender can ever satisfy the receive;
            # surface the inevitable hang immediately instead of timing out.
            raise DeadlockError(
                f"recv(source={source}, tag={tag}) on a single-rank "
                f"communicator with no matching queued self-send"
            )
        return take_payload(envelope)

    def _poll(self, source: int, tag: int) -> Optional[Envelope]:
        for index, envelope in enumerate(self._queue):
            if envelope.matches(source, tag):
                return self._queue.pop(index)
        return None

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_peer(dest, "dest")
        self._check_tag(tag)
        self._queue.append(Envelope.make(source=0, tag=tag, payload=obj))

    def recv(self, source: int = _ANY, tag: int = _ANY) -> Any:
        if source != _ANY:
            self._check_peer(source, "source")
        if tag != _ANY:
            self._check_tag(tag)
        return self._take(source, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> SendRequest:
        self.send(obj, dest, tag)
        return SendRequest()

    def irecv(self, source: int = _ANY, tag: int = _ANY) -> _SelfRecvRequest:
        if source != _ANY:
            self._check_peer(source, "source")
        if tag != _ANY:
            self._check_tag(tag)
        return _SelfRecvRequest(self, source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int) -> Any:
        self._check_peer(dest, "dest")
        self._check_peer(source, "source")
        return copy_payload(obj)

    def iprobe(self, source: int = _ANY, tag: int = _ANY) -> bool:
        if source != _ANY:
            self._check_peer(source, "source")
        if tag != _ANY:
            self._check_tag(tag)
        return any(e.matches(source, tag) for e in self._queue)

    # -- collectives (identity short-circuits) ------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root, "root")
        return obj

    def gather(self, obj: Any, root: int = 0) -> List[Any]:
        self._check_peer(root, "root")
        return [obj]

    def allgather(self, obj: Any) -> List[Any]:
        return [obj]

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        self._check_peer(root, "root")
        if objs is None or len(objs) != 1:
            got = "None" if objs is None else str(len(objs))
            raise SmpiError(f"scatter root needs exactly 1 item, got {got}")
        return objs[0]

    def gatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        self._check_peer(root, "root")
        arr = np.asarray(sendbuf)
        # Shared usability predicate; an unusable ``out`` degrades to the
        # zero-copy identity (returning the send buffer), not allocation.
        if arr.ndim == 2 and rows_output_usable(
            arr.shape[0], arr.shape[1], arr.dtype, out
        ):
            out[...] = arr
            return out
        return arr

    def scatterv_rows(
        self, sendbuf: Optional[np.ndarray], counts: Sequence[int], root: int = 0
    ) -> np.ndarray:
        if len(counts) != 1:
            raise SmpiError(
                f"counts must have one entry per rank, got {len(counts)} "
                f"for size 1"
            )
        if sendbuf is None:
            raise SmpiError("scatterv_rows root requires a send buffer")
        sendbuf = np.asarray(sendbuf)
        if sendbuf.shape[0] != int(counts[0]):
            raise SmpiError(
                f"send buffer has {sendbuf.shape[0]} rows, counts sum to "
                f"{int(counts[0])}"
            )
        return sendbuf

    def reduce(self, obj: Any, op: ReduceOp, root: int = 0) -> Any:
        self._check_peer(root, "root")
        return op.reduce_sequence([obj])

    def allreduce(
        self, obj: Any, op: ReduceOp, out: Optional[np.ndarray] = None
    ) -> Any:
        if fold_output_usable(out, [obj]):
            return op.fold_into(out, [obj])
        return op.reduce_sequence([obj])

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        if len(objs) != 1:
            raise SmpiError(f"alltoall needs exactly 1 item, got {len(objs)}")
        return [objs[0]]

    def scan(self, obj: Any, op: ReduceOp) -> Any:
        return op.reduce_sequence([obj])

    def exscan(self, obj: Any, op: ReduceOp) -> Any:
        # MPI leaves the rank-0 exscan buffer undefined; mirror the threaded
        # backend, which returns None there.
        return None

    def reduce_scatter(self, objs: Sequence[Any], op: ReduceOp) -> Any:
        if len(objs) != 1:
            raise SmpiError(
                f"reduce_scatter needs exactly 1 block, got {len(objs)}"
            )
        return op.reduce_sequence([objs[0]])

    def barrier(self) -> None:
        return None

    # -- nonblocking collectives (immediately complete) ----------------------
    def ibcast(self, obj: Any, root: int = 0) -> CollectiveRequest:
        self._check_peer(root, "root")
        return CollectiveRequest.completed(obj)

    def igatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ) -> CollectiveRequest:
        return CollectiveRequest.completed(
            self.gatherv_rows(sendbuf, root, out=out)
        )

    def iallreduce(
        self, obj: Any, op: ReduceOp, out: Optional[np.ndarray] = None
    ) -> CollectiveRequest:
        return CollectiveRequest.completed(self.allreduce(obj, op, out=out))

    def ialltoall(self, objs: Sequence[Any]) -> CollectiveRequest:
        return CollectiveRequest.completed(self.alltoall(objs))

    # -- communicator management -------------------------------------------
    def split(
        self, color: Optional[int], key: int = 0
    ) -> Optional["SelfCommunicator"]:
        if color is None:
            return None
        return SelfCommunicator()

    def dup(self) -> "SelfCommunicator":
        return SelfCommunicator()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SelfCommunicator(rank=0, size=1)"
