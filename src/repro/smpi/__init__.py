"""``repro.smpi`` — an in-process, thread-based MPI substitute.

The paper's parallel algorithms are written against ``mpi4py``.  That package
(and an MPI launcher) is unavailable in this environment, so this subpackage
provides the subset of MPI semantics the algorithms need, executed by one
thread per rank inside a single Python process:

* SPMD execution: :func:`run_spmd` runs ``fn(comm, ...)`` on ``n`` ranks and
  returns the per-rank results (exceptions propagate with rank context).
* Point-to-point: ``send/recv/isend/irecv`` with tags, ``ANY_SOURCE`` and
  ``ANY_TAG`` matching, and MPI-like value (copy) semantics.
* Collectives: ``bcast, gather, gatherv, allgather, scatter, scatterv,
  reduce, allreduce, alltoall, barrier`` — implemented on top of
  point-to-point so their traffic is faithfully accounted by the tracer.
* Communicator management: ``split`` and ``dup``.
* Traffic accounting: :class:`CommTracer` wraps any communicator and records
  per-operation byte counts, which feed the analytic scaling model used to
  reproduce the paper's weak-scaling figure.

The API intentionally mirrors mpi4py's lowercase ("pickle") methods, which is
what the paper's listings use (``comm.gather``, ``comm.bcast``,
``comm.send``/``comm.recv``), so the core algorithms read like the paper.
"""

from .communicator import ANY_SOURCE, ANY_TAG, Communicator, SelfComm
from .exceptions import SmpiError, RankError, TagError
from .executor import ParallelFailure, run_spmd
from .reduction import LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, ReduceOp
from .tracer import CommRecord, CommTracer, TrafficSummary

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "SelfComm",
    "SmpiError",
    "RankError",
    "TagError",
    "ParallelFailure",
    "run_spmd",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "MAXLOC",
    "MINLOC",
    "CommTracer",
    "CommRecord",
    "TrafficSummary",
]
