"""``repro.smpi`` — pluggable communicator backends for the SVD drivers.

The paper's parallel algorithms are written against ``mpi4py``.  This
subpackage defines the small **communicator protocol** those algorithms
actually need and provides three interchangeable backends behind one
factory (:func:`create_communicator` / :func:`run_backend`):

* ``"threads"`` — the in-process, thread-based MPI substitute (default):
  SPMD execution via :func:`run_spmd` (one thread per rank), point-to-point
  ``send/recv/isend/irecv`` with tags and wildcards, collectives built on
  point-to-point so their traffic is faithfully accounted, ``split``/``dup``
  context management, and deadlock detection with per-rank tracebacks.
* ``"self"`` — :class:`SelfCommunicator`, a zero-overhead single-rank
  communicator that short-circuits every collective (no mailboxes, no
  threads); the parallel drivers then run at serial speed.
* ``"mpi4py"`` — a thin adapter over real MPI for cluster runs; optional,
  used only when the ``mpi4py`` package is importable (see
  :data:`repro.smpi.mpi.HAVE_MPI4PY`).

Communicator protocol (full table in :mod:`repro.smpi.factory`): ``rank`` /
``size``, ``send`` / ``recv`` (plus nonblocking variants), ``bcast``,
``gather`` / ``gatherv_rows``, ``allreduce`` (deterministic rank-ordered
fold), and ``split`` / ``dup``.  Anything implementing it — including a
:class:`CommTracer` wrapping any backend — can drive
:class:`~repro.core.parallel.ParSVDParallel` and the APMOS/TSQR kernels.

The API intentionally mirrors mpi4py's lowercase ("pickle") methods, which
is what the paper's listings use (``comm.gather``, ``comm.bcast``,
``comm.send``/``comm.recv``), so the core algorithms read like the paper.
Traffic accounting: wrap any communicator in a :class:`CommTracer` to
record per-operation byte counts, which feed the analytic scaling model
used to reproduce the paper's weak-scaling figure.
"""

from .communicator import ANY_SOURCE, ANY_TAG, Communicator, SelfComm
from .exceptions import (
    DeadlockError,
    FailedRankError,
    SmpiError,
    RankError,
    TagError,
)
from .executor import ParallelFailure, run_spmd
from .factory import BACKENDS, DEFAULT_BACKEND, create_communicator, run_backend
from .mailbox import DEFAULT_TIMEOUT
from .mpi import HAVE_MPI4PY
from .nonblocking import NB_TAG_BASE
from .provenance import Leak, RequestTracker, TRACKER, pending_summary, track
from .reduction import LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM, ReduceOp
from .request import CollectiveRequest, RecvRequest, Request, SendRequest, waitall
from .selfcomm import SelfCommunicator
from .tracer import COLLECTIVE_OPS, CommRecord, CommTracer, TrafficSummary

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "Communicator",
    "SelfComm",
    "SelfCommunicator",
    "HAVE_MPI4PY",
    "NB_TAG_BASE",
    "SmpiError",
    "RankError",
    "TagError",
    "DeadlockError",
    "FailedRankError",
    "DEFAULT_TIMEOUT",
    "ParallelFailure",
    "Request",
    "SendRequest",
    "RecvRequest",
    "CollectiveRequest",
    "waitall",
    "run_spmd",
    "run_backend",
    "create_communicator",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "MAXLOC",
    "MINLOC",
    "CommTracer",
    "CommRecord",
    "COLLECTIVE_OPS",
    "TrafficSummary",
    "Leak",
    "RequestTracker",
    "TRACKER",
    "track",
    "pending_summary",
]
