"""Communicator backend registry: one name selects the whole substrate.

The parallel algorithms in :mod:`repro.core` are written against a small
**communicator protocol** rather than a concrete class, so the same driver
code runs on an in-process simulator, a zero-overhead serial communicator,
or real MPI.  This module is the single place that protocol and its
implementations are registered (the shape follows ChainerMN's
``create_communicator`` factory).

Communicator protocol
---------------------
Any object with this surface works with every driver in the library
(:class:`~repro.core.parallel.ParSVDParallel`, the APMOS and TSQR kernels,
the tracer):

=================== =====================================================
``rank``, ``size``   This rank's id and the number of ranks (also
                     ``Get_rank()`` / ``Get_size()``).
``send/recv``        Blocking pickle-mode point-to-point with tags and
                     ``ANY_SOURCE``/``ANY_TAG`` wildcards; value
                     semantics (payloads snapshotted at send time).
``isend/irecv``      Nonblocking variants returning request objects with
                     ``wait()``/``test()``.
``bcast``            Root's object on every rank.
``gather``           Rank-ordered list at the root, ``None`` elsewhere.
``gatherv_rows``     Per-rank row blocks vertically stacked at the root
                     (row counts may differ) — the modes-assembly op.
                     ``out=`` (root) reuses a preallocated result buffer.
``allreduce``        Deterministic rank-ordered reduction, result on all
                     ranks (``reduce`` for root-only).  ``out=`` folds
                     into a caller-provided buffer on every rank
                     (allocation-free repeated reductions).
``ibcast`` /         Nonblocking collectives returning composable
``igatherv_rows`` /  :class:`~repro.smpi.request.CollectiveRequest`
``iallreduce`` /     objects (``test()`` / ``wait(timeout=)`` /
``ialltoall``        :func:`~repro.smpi.request.waitall`).  All ranks
                     must issue them in the same program order; a rank's
                     deferred share (e.g. the root's fold) runs inside
                     its own completion call.  Results mirror the
                     blocking ops (including ``out=`` reuse).
``split/dup``        Context-isolated sub/duplicate communicators.
=================== =====================================================

(Backends also provide ``allgather``, ``scatter``, ``scatterv_rows``,
``alltoall``, ``scan``/``exscan``, ``reduce_scatter``, ``barrier``,
``iprobe``, ``sendrecv`` and the uppercase buffer ops — see
:class:`~repro.smpi.communicator.Communicator` for the reference
semantics.)

SPMD correctness rules
----------------------
The protocol is *single program, multiple data*: the same driver function
runs on every rank, and the collectives only work if the ranks keep to a
shared schedule.  ``repro verify`` (:mod:`repro.verify`) checks these
rules statically (rule codes below) and at runtime; the contract itself
is:

* **Collective ordering** — every rank must issue the same collectives
  (blocking and nonblocking alike) in the same program order, with
  matching roots.  A collective issued under a rank-dependent branch
  (``if comm.rank == 0: comm.bcast(...)``) deadlocks the other ranks —
  unless every arm of the branch issues the *matched* call, as the
  root/receiver split requires.  Statically flagged as ``SPMD001``;
  divergence between recorded per-rank schedules is what
  ``repro verify --schedule`` reports.
* **Nonblocking completion** — every request (``isend``/``irecv``/
  ``ibcast``/…) must reach ``wait()``/``test()``/``waitall``.  A rank's
  deferred share of a collective (e.g. the ``iallreduce`` root's fold)
  runs inside its completion call, so a dropped request can deadlock
  *other* ranks, not just leak locally.  Statically flagged as
  ``SPMD002``; at runtime, un-awaited requests emit a
  :class:`ResourceWarning` on garbage collection and are reported by the
  leak detector (:mod:`repro.smpi.provenance`).
* **Tag band** — user point-to-point tags must stay below
  :data:`~repro.smpi.nonblocking.NB_TAG_BASE` (``1 << 24``); the band at
  and above it is reserved for the derived nonblocking collectives'
  internal traffic on backends without a private tag space (the threads
  backend uses its negative internal tags and a zero-copy snapshot
  fan-out instead).  A hardcoded tag inside the reserved band is
  ``SPMD003``.
* **Buffer aliasing** — an ``out=`` buffer passed to a collective must
  not alias that collective's input (``allreduce(x, SUM, out=x)``): the
  deterministic rank-ordered fold reads contributions while writing the
  output.  Statically flagged as ``SPMD004``.
* **Snapshot immutability** — arrays received from the zero-copy
  fast lanes (``bcast`` payloads, snapshot-shared nonblocking fan-outs)
  may be *shared* read-only views; receivers must copy before mutating.
  Writes to received payloads are flagged as ``SPMD005``.

The threads transport recycles delivered envelope shells through a
bounded arena (:class:`~repro.smpi.message.EnvelopePool`), so
steady-state request churn allocates no envelope objects;
:meth:`~repro.smpi.request.RecvRequest.wait` accepts ``timeout=`` and
raises a descriptive :class:`~repro.smpi.exceptions.DeadlockError` on
deadlocked waits instead of hanging.

Liveness and elasticity (threads backend)
-----------------------------------------
Each rank's mailbox doubles as a heartbeat publisher:
:meth:`World.heartbeat(rank) <repro.smpi.world.World.heartbeat>` bumps a
monotonic beat that :class:`~repro.health.HealthMonitor` reads to
classify peers as *alive*/*straggler*/*suspect*/*dead*
(:class:`~repro.config.HealthConfig` sets the thresholds).  A rank the
monitor declares dead is failed **proactively** through
:meth:`World.fail_rank <repro.smpi.world.World.fail_rank>` — blocked
peers wake with :class:`~repro.smpi.exceptions.FailedRankError`
immediately instead of waiting out the ``DeadlockError`` timeout — and a
rank that exits cleanly calls :meth:`World.retire_rank
<repro.smpi.world.World.retire_rank>` so its silence is never
misread as death.  :class:`~repro.health.ProgressDaemon` services the
beat in the background and ``test()``-polls in-flight
:class:`~repro.smpi.request.CollectiveRequest` pipelines;
:class:`~repro.health.ElasticSession` builds on both to rescale a
running world mid-stream (``Session.rescale`` /
``RestartPolicy(mode="live")``).

Backends
--------
============ ========================================================
``threads``  The default :mod:`repro.smpi` substrate: one thread per
             rank, mailbox delivery, faithful traffic accounting.
``self``     :class:`~repro.smpi.selfcomm.SelfCommunicator` — a
             single rank with every collective short-circuited; zero
             overhead, no threads.  ``size`` must be 1.
``mpi4py``   Thin adapter over real MPI (requires the optional
             ``mpi4py`` package and an MPI launcher).
============ ========================================================

Use :func:`create_communicator` when you need communicator objects, or
:func:`run_backend` to run an SPMD function on a named backend::

    from repro.smpi import create_communicator, run_backend

    svd = ParSVDParallel(create_communicator("self"), solver=SolverConfig(K=10))

    results = run_backend("threads", 4, job)   # == run_spmd(4, job)

(:class:`repro.api.Session` wraps both calls behind one typed entry
point — ``Session.run(RunConfig(...), fn)`` — and is what the CLI,
examples and benchmarks use.)
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from .communicator import Communicator
from .exceptions import SmpiError
from .executor import run_spmd
from .mailbox import DEFAULT_TIMEOUT
from .selfcomm import SelfCommunicator
from .tracer import CommTracer
from .world import World

__all__ = ["BACKENDS", "DEFAULT_BACKEND", "create_communicator", "run_backend"]

#: Registered backend names, in preference order.
BACKENDS = ("threads", "self", "mpi4py")

#: Backend used when none is named.
DEFAULT_BACKEND = "threads"


def _check_name(name: str) -> None:
    if name not in BACKENDS:
        raise SmpiError(
            f"unknown communicator backend {name!r}; "
            f"available: {', '.join(BACKENDS)}"
        )


def create_communicator(
    name: str = DEFAULT_BACKEND,
    size: int = 1,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    mpi_comm: Any = None,
    irecv_buffer_bytes: Optional[int] = None,
) -> Union[Any, Tuple[Any, ...]]:
    """Create communicator(s) for the named backend.

    Parameters
    ----------
    name:
        One of :data:`BACKENDS`.
    size:
        Number of ranks.  ``"self"`` requires ``size == 1``; for
        ``"mpi4py"`` the size is dictated by the MPI launcher and ``size``
        (when > 1) is validated against it.
    timeout:
        Mailbox deadlock timeout for the ``"threads"`` backend.
    mpi_comm:
        Existing ``mpi4py`` communicator to wrap (``"mpi4py"`` only);
        defaults to ``COMM_WORLD``.
    irecv_buffer_bytes:
        Receive-buffer size preallocated per preposted ``irecv`` on the
        ``"mpi4py"`` adapter (its pickle-mode ``irecv`` truncates
        messages larger than the buffer); ``None`` keeps the adapter's
        default.  The in-process backends probe message sizes exactly and
        ignore it.  Set through :class:`repro.config.BackendConfig.
        irecv_buffer_bytes` when building sessions.

    Returns
    -------
    A single communicator — except ``"threads"`` with ``size > 1``, which
    returns a tuple of per-rank communicators sharing one
    :class:`~repro.smpi.world.World`; dispatch those to threads yourself or
    use :func:`run_backend` / :func:`repro.smpi.run_spmd`, which do it for
    you.
    """
    _check_name(name)
    if size < 1:
        raise SmpiError(f"communicator size must be positive, got {size}")
    # Factory-level observer: while repro.obs is installed with metrics,
    # every communicator this factory hands out reports per-op call/byte/
    # latency metrics — regardless of backend, without the CommTracer
    # proxy.  A no-op returning the raw communicator otherwise.
    from ..faults.runtime import inject_communicator
    from ..obs.runtime import observe_communicator

    if name == "self":
        if size != 1:
            raise SmpiError(
                f"the 'self' backend is single-rank; got size {size} "
                f"(use 'threads' or 'mpi4py' for multi-rank runs)"
            )
        return inject_communicator(observe_communicator(SelfCommunicator()))
    if name == "mpi4py":
        from .mpi import Mpi4pyCommunicator

        mpi_kwargs = {}
        if irecv_buffer_bytes is not None:
            mpi_kwargs["irecv_buffer_bytes"] = irecv_buffer_bytes
        comm = Mpi4pyCommunicator(mpi_comm, **mpi_kwargs)
        if size > 1 and comm.size != size:
            raise SmpiError(
                f"requested {size} ranks but the MPI communicator has "
                f"{comm.size}; launch with 'mpiexec -n {size}'"
            )
        return inject_communicator(observe_communicator(comm))
    world = World(size, timeout=timeout)
    group = tuple(range(size))
    # Fault injection wraps *outside* the observer so injected delays are
    # metered like genuine slowness; both are no-ops unless installed.
    comms = tuple(
        inject_communicator(
            observe_communicator(
                Communicator(world, World.WORLD_CONTEXT, group, rank)
            )
        )
        for rank in range(size)
    )
    return comms[0] if size == 1 else comms


def run_backend(
    backend: str,
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    trace: bool = False,
    irecv_buffer_bytes: Optional[int] = None,
    **kwargs: Any,
) -> Any:
    """Run ``fn(comm, *args, **kwargs)`` SPMD-style on a named backend.

    A backend-polymorphic :func:`repro.smpi.run_spmd`: drivers (CLI,
    examples, benchmarks) select the substrate with a string and keep a
    single code path.  ``irecv_buffer_bytes`` configures the mpi4py
    adapter's preposted receive buffers (see :func:`create_communicator`);
    the in-process backends ignore it.

    Returns the rank-ordered list of per-rank results (``[fn(...)]`` for
    single-rank backends), or ``(results, tracers)`` when ``trace=True``.
    For ``"mpi4py"`` every participating process returns the full
    rank-ordered result list (via ``allgather``); run under an MPI
    launcher.
    """
    _check_name(backend)
    if backend == "threads":
        return run_spmd(size, fn, *args, timeout=timeout, trace=trace, **kwargs)
    if backend == "self":
        comm = create_communicator("self", size)
        tracers: Optional[List[CommTracer]] = None
        if trace:
            tracers = [CommTracer(comm)]
            comm = tracers[0]
        results = [fn(comm, *args, **kwargs)]
        return (results, tracers) if trace else results
    comm = create_communicator(
        "mpi4py", size, irecv_buffer_bytes=irecv_buffer_bytes
    )
    if comm.size != size:
        # run_backend's size is an explicit request (unlike
        # create_communicator's default); a launcher mismatch must not
        # silently run at a different rank count.
        raise SmpiError(
            f"requested {size} ranks but the MPI launcher provides "
            f"{comm.size}; launch with 'mpiexec -n {size}'"
        )
    if trace:
        tracer = CommTracer(comm)
        result = fn(tracer, *args, **kwargs)
        return comm.allgather(result), [tracer]
    return comm.allgather(fn(comm, *args, **kwargs))
