"""Thread-safe per-rank mailboxes with MPI matching semantics.

Each rank owns one :class:`Mailbox`.  Senders append envelopes; receivers
block until an envelope matching their ``(source, tag)`` pattern arrives.
Matching respects MPI's non-overtaking rule: among messages from the same
source with the same tag, the earliest posted one is delivered first (we
deliver the earliest *matching* envelope in arrival order, which implies
non-overtaking for any fixed (source, tag) pair).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, Optional

from . import provenance
from .exceptions import DeadlockError, FailedRankError
from .message import Envelope

__all__ = ["Mailbox", "DEFAULT_TIMEOUT"]

#: The one blocking-wait default for the whole substrate.  Matches
#: ``repro.config.BackendConfig.timeout`` so a configured value and an
#: unconfigured path agree; every constructor defaulting a timeout
#: (``World``, ``create_communicator``, ``run_spmd``, ``SelfComm``)
#: references this constant instead of a private literal.
DEFAULT_TIMEOUT: float = 120.0


class Mailbox:
    """Blocking mailbox for one receiving rank.

    Parameters
    ----------
    owner:
        Rank that owns (receives from) this mailbox; used in diagnostics.
    timeout:
        Seconds a blocking receive waits before declaring a deadlock.
    """

    def __init__(self, owner: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.owner = owner
        self.timeout = timeout
        self._queue: Deque[Envelope] = deque()
        self._cond = threading.Condition()
        self._failure_probe: Optional[
            Callable[[], Dict[int, BaseException]]
        ] = None
        # Liveness heartbeat: the owning rank (its progress daemon, or
        # any communicator op it performs) stamps a monotonic beat here;
        # health monitors on peer ranks classify this rank from the beat
        # age.  A bare float store/load is atomic under the GIL, so no
        # lock is taken on the beat path.
        self._last_beat: float = time.monotonic()
        self._beats: int = 0

    def beat(self) -> None:
        """Publish a liveness beat (monotonic timestamp) for the owner."""
        self._last_beat = time.monotonic()
        self._beats += 1

    @property
    def last_beat(self) -> float:
        """Monotonic timestamp of the owner's most recent beat (the
        mailbox's creation time before the first explicit beat)."""
        return self._last_beat

    @property
    def beats(self) -> int:
        """Number of explicit beats published so far."""
        return self._beats

    def attach_failure_probe(
        self, probe: Callable[[], Dict[int, BaseException]]
    ) -> None:
        """Install the world's failed-rank snapshot callable.

        With a probe attached, a blocked :meth:`get` raises
        :class:`FailedRankError` as soon as any world rank is declared
        dead (see ``World.fail_rank``) instead of waiting out the full
        deadlock timeout.
        """
        self._failure_probe = probe

    def notify_failure(self) -> None:
        """Wake any blocked receiver so it can observe a rank failure."""
        with self._cond:
            self._cond.notify_all()

    def _check_failed(self) -> None:
        if self._failure_probe is None:
            return
        failed = self._failure_probe()
        if failed:
            ranks = sorted(failed)
            causes = "; ".join(
                f"rank {r}: {type(failed[r]).__name__}: {failed[r]}"
                for r in ranks
            )
            raise FailedRankError(
                f"rank {self.owner}: peer rank(s) {ranks} failed while "
                f"this rank was blocked in recv ({causes})",
                failed_ranks=ranks,
            )

    def put(self, envelope: Envelope) -> None:
        """Deposit an envelope and wake any waiting receiver."""
        with self._cond:
            self._queue.append(envelope)
            self._cond.notify_all()

    def _find(self, source: int, tag: int) -> Optional[Envelope]:
        for i, envelope in enumerate(self._queue):
            if envelope.matches(source, tag):
                del self._queue[i]
                return envelope
        return None

    def get(
        self, source: int, tag: int, timeout: Optional[float] = None
    ) -> Envelope:
        """Block until an envelope matching ``(source, tag)`` arrives.

        ``-1`` in either position is a wildcard.  ``timeout`` overrides the
        mailbox's default for this call only.  Raises
        :class:`DeadlockError` after the timeout without a match — real
        MPI would hang forever; the simulator fails loudly instead.  The
        deadline is absolute: spurious wakeups (other envelopes arriving)
        do not reset it.
        """
        effective = self.timeout if timeout is None else timeout
        deadline = time.monotonic() + effective
        with self._cond:
            envelope = self._find(source, tag)
            while envelope is None:
                self._check_failed()
                remaining = deadline - time.monotonic()
                if remaining <= 0.0 or not self._cond.wait(timeout=remaining):
                    self._check_failed()
                    message = (
                        f"rank {self.owner}: recv(source={source}, tag={tag}) "
                        f"timed out after {effective}s "
                        f"({len(self._queue)} unmatched messages queued)"
                    )
                    dump = provenance.pending_summary()
                    if dump:
                        message += "\n" + dump
                    raise DeadlockError(message)
                envelope = self._find(source, tag)
            return envelope

    def poll(self, source: int, tag: int) -> Optional[Envelope]:
        """Non-blocking probe-and-take; returns ``None`` when no match."""
        with self._cond:
            return self._find(source, tag)

    def peek(self, source: int, tag: int) -> Optional[Envelope]:
        """Non-destructive probe: the matching envelope stays queued, so
        delivery order (non-overtaking) is unaffected."""
        with self._cond:
            for envelope in self._queue:
                if envelope.matches(source, tag):
                    return envelope
            return None

    def pending(self) -> int:
        """Number of queued (undelivered) envelopes."""
        with self._cond:
            return len(self._queue)
