"""Creation-site provenance for requests and envelopes (leak detection).

The SPMD contract leaves two resource classes that nothing structurally
forces a program to retire:

* **nonblocking requests** — a :class:`~repro.smpi.request.RecvRequest`
  or :class:`~repro.smpi.request.CollectiveRequest` whose ``wait()`` /
  ``test()`` is never called.  For a collective whose deferred share runs
  inside the completion call (an ``iallreduce`` root's fold), the peers
  then deadlock; for a plain receive, the message is silently dropped.
* **envelopes** — shells drawn from the
  :class:`~repro.smpi.message.EnvelopePool` arena that are never recycled
  through :func:`~repro.smpi.message.take_payload`, i.e. messages that
  were sent but never consumed.

This module is the runtime half of the ``repro.verify`` correctness
tooling: a process-wide :class:`RequestTracker` that — **only while
enabled** — records every request/envelope creation (optionally with the
creating stack), drops entries as they complete or recycle, and can
report what is still outstanding.  Disabled (the default), the hooks are
a single attribute check on the hot path and record nothing.

Use the :func:`track` context manager::

    from repro.smpi import provenance

    with provenance.track() as scope:
        run_spmd(4, job)
        leaks = scope.pending_requests() + scope.unreleased_envelopes()

``repro verify --schedule`` and the ``spmd_leak_guard`` pytest fixture
(:mod:`repro.verify.pytest_plugin`) are built on exactly this.
"""

from __future__ import annotations

import contextlib
import threading
import traceback
import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Leak",
    "RequestTracker",
    "TRACKER",
    "track",
    "pending_summary",
]


@dataclass(frozen=True)
class Leak:
    """One outstanding resource: what it is, and where it was created."""

    kind: str
    detail: str
    origin: Optional[str] = None

    def describe(self) -> str:
        """Multi-line human-readable form (used by reports/assertions)."""
        lines = [f"{self.kind}: {self.detail}"]
        if self.origin:
            lines.append("created at:")
            lines.extend("  " + line for line in self.origin.splitlines())
        return "\n".join(lines)


class _Entry:
    """Bookkeeping for one tracked object (weakly referenced)."""

    __slots__ = ("ref", "kind", "detail", "origin", "seq")

    def __init__(
        self,
        ref: Any,
        kind: str,
        detail: str,
        origin: Optional[str],
        seq: int,
    ) -> None:
        self.ref = ref
        self.kind = kind
        self.detail = detail
        self.origin = origin
        self.seq = seq


def _capture_origin(skip: int = 3) -> str:
    """Formatted creating stack, trimmed of the tracker's own frames."""
    stack = traceback.extract_stack()
    if skip:
        stack = stack[:-skip]
    return "".join(traceback.format_list(stack[-8:])).rstrip()


class RequestTracker:
    """Process-wide registry of live requests and envelopes.

    Enablement is *reference-counted* so nested :func:`track` scopes (a
    leak-guarded test calling a leak-guarded helper) compose; traceback
    capture is counted separately and is the expensive part.  All hooks
    are thread-safe — SPMD ranks create requests concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._enabled = 0
        self._capture = 0
        self._seq = 0
        self._requests: Dict[int, _Entry] = {}
        self._envelopes: Dict[int, _Entry] = {}

    @property
    def enabled(self) -> bool:
        """Are the creation hooks currently recording?"""
        return self._enabled > 0

    @property
    def capturing(self) -> bool:
        """Are creation tracebacks being captured?"""
        return self._capture > 0

    def enable(self, capture_tracebacks: bool = False) -> None:
        """Turn the hooks on (refcounted; pair with :meth:`disable`)."""
        with self._lock:
            self._enabled += 1
            if capture_tracebacks:
                self._capture += 1

    def disable(self, capture_tracebacks: bool = False) -> None:
        """Undo one :meth:`enable`; registries clear when the last scope
        exits (so a later scope never reports an earlier scope's
        traffic)."""
        with self._lock:
            self._enabled = max(self._enabled - 1, 0)
            if capture_tracebacks:
                self._capture = max(self._capture - 1, 0)
            if self._enabled == 0:
                self._requests.clear()
                self._envelopes.clear()

    def mark(self) -> int:
        """Sequence mark delimiting 'created after this point'."""
        with self._lock:
            return self._seq

    # -- creation hooks (called by request.py / message.py) ----------------
    def _note(self, registry: Dict[int, _Entry], obj: Any, kind: str, detail: str) -> None:
        origin = _capture_origin() if self._capture > 0 else None
        key = id(obj)

        def _forget(_ref: Any, *, _registry: Dict[int, _Entry] = registry, _key: int = key) -> None:
            with self._lock:
                _registry.pop(_key, None)

        try:
            ref = weakref.ref(obj, _forget)
        except TypeError:  # pragma: no cover - non-weakrefable object
            return
        with self._lock:
            self._seq += 1
            registry[key] = _Entry(ref, kind, detail, origin, self._seq)

    def note_request(self, request: Any, kind: str, detail: str) -> Optional[str]:
        """Record a freshly created request; returns the captured origin
        (for the request's own finalizer warning) or ``None``."""
        self._note(self._requests, request, kind, detail)
        entry = self._requests.get(id(request))
        return entry.origin if entry is not None else None

    def note_envelope(self, envelope: Any) -> None:
        """Record an envelope leaving the arena."""
        detail = (
            f"source={getattr(envelope, 'source', '?')}, "
            f"tag={getattr(envelope, 'tag', '?')}"
        )
        self._note(self._envelopes, envelope, "Envelope", detail)

    def forget_envelope(self, envelope: Any) -> None:
        """An envelope was recycled (its payload consumed) — not a leak."""
        if self._enabled > 0:
            with self._lock:
                self._envelopes.pop(id(envelope), None)

    # -- reporting ---------------------------------------------------------
    def _collect(
        self,
        registry: Dict[int, _Entry],
        since: int,
        still_leaked: Any,
    ) -> List[Leak]:
        with self._lock:
            entries = list(registry.values())
        leaks = []
        for entry in entries:
            if entry.seq <= since:
                continue
            obj = entry.ref()
            if obj is None or not still_leaked(obj):
                continue
            leaks.append(Leak(entry.kind, entry.detail, entry.origin))
        leaks.sort(key=lambda leak: (leak.kind, leak.detail))
        return leaks

    def pending_requests(self, since: int = 0) -> List[Leak]:
        """Requests created after ``since`` that are alive and have never
        observed completion (``wait()``/``test()`` never finished)."""
        return self._collect(
            self._requests,
            since,
            lambda req: not getattr(req, "_done", True),
        )

    def unreleased_envelopes(self, since: int = 0) -> List[Leak]:
        """Envelopes created after ``since`` still holding their payload
        (sent but never consumed/recycled)."""
        return self._collect(
            self._envelopes,
            since,
            lambda env: getattr(env, "payload", None) is not None,
        )


#: The process-wide tracker the smpi hooks report into.
TRACKER = RequestTracker()


def _origin_site(origin: Optional[str]) -> Optional[str]:
    """The innermost ``File "...", line N, in fn`` line of a captured
    creating stack — the one-line creation site for compact dumps."""
    if not origin:
        return None
    site = None
    for line in origin.splitlines():
        stripped = line.strip()
        if stripped.startswith("File "):
            site = stripped
    return site


def pending_summary(limit: int = 8) -> str:
    """One-line-per-request dump of every currently pending request.

    Used to enrich :class:`~repro.smpi.exceptions.DeadlockError` messages:
    when a blocking receive times out, the requests still in flight (op,
    peer, tag and — with traceback capture on — their creation site) are
    usually the whole diagnosis.  Returns ``""`` when the tracker is
    disabled or nothing is pending, so callers can append unconditionally.
    """
    if not TRACKER.enabled:
        return ""
    leaks = TRACKER.pending_requests(0)
    if not leaks:
        return ""
    lines = [f"{len(leaks)} request(s) still pending:"]
    for leak in leaks[:limit]:
        line = f"  - {leak.kind}: {leak.detail}"
        site = _origin_site(leak.origin)
        if site:
            line += f" [{site}]"
        lines.append(line)
    if len(leaks) > limit:
        lines.append(f"  ... and {len(leaks) - limit} more")
    return "\n".join(lines)


class TrackScope:
    """Reporting view over :data:`TRACKER` scoped to one :func:`track`."""

    def __init__(self, tracker: RequestTracker, since: int) -> None:
        self._tracker = tracker
        self._since = since

    def pending_requests(self) -> List[Leak]:
        """Un-awaited requests created inside this scope, still alive."""
        return self._tracker.pending_requests(self._since)

    def unreleased_envelopes(self) -> List[Leak]:
        """Unrecycled envelopes created inside this scope, still alive."""
        return self._tracker.unreleased_envelopes(self._since)

    def leaks(self) -> List[Leak]:
        """Everything outstanding: pending requests + unrecycled
        envelopes."""
        return self.pending_requests() + self.unreleased_envelopes()


@contextlib.contextmanager
def track(capture_tracebacks: bool = True) -> Iterator[TrackScope]:
    """Enable provenance for a block and report what it leaked.

    Query the yielded :class:`TrackScope` *inside* the block (typically
    at its very end, after the workload finished): its registries are
    cleared when the last enclosing scope exits.
    """
    TRACKER.enable(capture_tracebacks)
    scope = TrackScope(TRACKER, TRACKER.mark())
    try:
        yield scope
    finally:
        TRACKER.disable(capture_tracebacks)
