"""Collectives derived purely from the protocol primitives.

``gatherv_rows``/``scatterv_rows``, the deterministic reductions and the
prefix scans need nothing backend-specific: they are compositions of
``gather``/``scatter``/``bcast``/``alltoall``.  Keeping them in one mixin
shared by :class:`~repro.smpi.communicator.Communicator` and
:class:`~repro.smpi.mpi.Mpi4pyCommunicator` guarantees the backends cannot
drift (and that reductions stay a deterministic rank-ascending left fold
everywhere, instead of depending on an MPI library's reduction tree).

:class:`~repro.smpi.selfcomm.SelfCommunicator` intentionally does *not* use
this mixin: its collectives short-circuit to the identity without the
gather/scatter round trips.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .exceptions import SmpiError
from .reduction import ReduceOp

__all__ = [
    "DerivedCollectivesMixin",
    "assemble_row_blocks",
    "copy_result_into",
    "fold_output_usable",
    "rows_output_buffer",
    "rows_output_usable",
]


def rows_output_usable(
    total: int, width: int, dtype, out: Optional[np.ndarray]
) -> bool:
    """Is ``out`` a usable ``gatherv_rows`` destination?  (Matching
    shape/dtype, C-contiguous, writable.)  The single predicate every
    backend consults, so the accepted-``out`` contract cannot drift."""
    return (
        out is not None
        and out.shape == (total, width)
        and out.dtype == dtype
        and out.flags.c_contiguous
        and out.flags.writeable
    )


def rows_output_buffer(
    total: int, width: int, dtype, out: Optional[np.ndarray]
) -> np.ndarray:
    """Validate a caller-provided ``gatherv_rows`` output buffer.

    Returns ``out`` when :func:`rows_output_usable`; otherwise allocates a
    fresh ``(total, width)`` array — an unusable ``out`` degrades to
    allocation, never to an error mid-collective.
    """
    if rows_output_usable(total, width, dtype, out):
        return out
    return np.empty((total, width), dtype=dtype)


def assemble_row_blocks(
    blocks: Sequence[np.ndarray], out: Optional[np.ndarray]
) -> np.ndarray:
    """Stack per-rank row blocks into one array (the ``gatherv_rows``
    assembly step, shared by the blocking and nonblocking variants).

    Sizing, dtype promotion (matching ``np.concatenate``) and the
    stray-block shape guard are identical to the historical inline
    implementation; ``out`` reuse follows :func:`rows_output_buffer`.
    """
    arrays = [np.asarray(block) for block in blocks]
    total = sum(int(block.shape[0]) for block in arrays)
    width = int(arrays[0].shape[1]) if arrays[0].ndim == 2 else -1
    dtype = np.result_type(*[block.dtype for block in arrays])
    out = rows_output_buffer(total, width, dtype, out)
    offset = 0
    for peer, block in enumerate(arrays):
        if block.ndim != 2 or block.shape[1] != width:
            # Guard explicitly: a stray (r, 1) block would otherwise
            # numpy-broadcast across the full output width.
            raise SmpiError(
                f"gatherv_rows: rank {peer} sent a block of shape "
                f"{block.shape}, expected ({block.shape[0]}, {width})"
            )
        out[offset : offset + block.shape[0]] = block
        offset += block.shape[0]
    return out


def copy_result_into(result: Any, out: Optional[np.ndarray]) -> Any:
    """Land ``result`` in the caller's ``out`` buffer when it fits.

    The receive-side half of the ``out=``-aware reductions: a writable,
    exactly-matching ``out`` is filled and returned (the caller gets its
    own buffer back instead of a shared read-only broadcast snapshot);
    anything else returns ``result`` unchanged.
    """
    if (
        isinstance(out, np.ndarray)
        and isinstance(result, np.ndarray)
        and out.flags.writeable
        and out.shape == result.shape
        and out.dtype == result.dtype
    ):
        np.copyto(out, result)
        return out
    return result


def fold_output_usable(
    out: Optional[np.ndarray], values: Sequence[Any]
) -> bool:
    """Is ``out`` a usable destination for an elementwise reduction of
    ``values``?  (Every contribution an array of ``out``'s shape, their
    promoted dtype exactly ``out``'s, and ``out`` writable.)"""
    if not isinstance(out, np.ndarray) or not out.flags.writeable:
        return False
    for value in values:
        if not isinstance(value, np.ndarray) or value.shape != out.shape:
            return False
    return np.result_type(*[value.dtype for value in values]) == out.dtype


class DerivedCollectivesMixin:
    """Row-block convenience collectives, reductions and scans, built on
    the host class's ``gather``/``scatter``/``bcast``/``alltoall``."""

    # provided by the host class
    rank: int
    size: int

    def gatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Gather per-rank row blocks into one vertically stacked array.

        Convenience equivalent of MPI ``Gatherv`` for the common "assemble
        the distributed modes at rank 0" operation (paper's
        ``_gather_modes``).  Row counts may differ across ranks.

        ``out`` (root only) is an optional preallocated destination; when
        its shape/dtype match the result it is filled and returned instead
        of allocating a fresh stack, so repeated assemblies (streaming
        loops) reuse one buffer.  (The threaded backend overrides this with
        a fully zero-copy path; this generic version serves any backend
        that only provides the protocol primitives.)
        """
        blocks = self.gather(np.asarray(sendbuf), root=root)  # type: ignore[attr-defined]
        if blocks is None:
            return None
        return assemble_row_blocks(blocks, out)

    def scatterv_rows(
        self, sendbuf: Optional[np.ndarray], counts: Sequence[int], root: int = 0
    ) -> np.ndarray:
        """Scatter contiguous row blocks of ``sendbuf`` (``counts[i]`` rows
        to rank ``i``).  Inverse of :meth:`gatherv_rows`."""
        if len(counts) != self.size:
            raise SmpiError(
                f"counts must have one entry per rank, got {len(counts)} "
                f"for size {self.size}"
            )
        if self.rank == root:
            if sendbuf is None:
                raise SmpiError("scatterv_rows root requires a send buffer")
            sendbuf = np.asarray(sendbuf)
            if sendbuf.shape[0] != int(np.sum(counts)):
                raise SmpiError(
                    f"send buffer has {sendbuf.shape[0]} rows, counts sum to "
                    f"{int(np.sum(counts))}"
                )
            offsets = np.concatenate(([0], np.cumsum(counts)))
            blocks = [
                sendbuf[offsets[i] : offsets[i + 1]] for i in range(self.size)
            ]
        else:
            blocks = None
        return self.scatter(blocks, root=root)  # type: ignore[attr-defined]

    def reduce(self, obj: Any, op: ReduceOp, root: int = 0) -> Any:
        """Reduce rank contributions with ``op`` at ``root`` (rank-ordered
        left fold, hence deterministic).  Non-roots return ``None``."""
        gathered = self.gather(obj, root=root)  # type: ignore[attr-defined]
        if gathered is None:
            return None
        return op.reduce_sequence(gathered)

    def allreduce(
        self, obj: Any, op: ReduceOp, out: Optional[np.ndarray] = None
    ) -> Any:
        """Reduce then broadcast; every rank returns the reduced value.

        ``out`` (optional, per-rank) is a preallocated destination for
        elementwise array reductions: the root folds every contribution
        straight into its ``out`` (:meth:`ReduceOp.fold_into` — zero
        intermediates), receivers copy the broadcast result into theirs,
        and each rank gets back its own *writable* buffer — so a streaming
        loop's repeated reductions reuse one workspace buffer instead of
        allocating the result per call.  An unusable ``out`` (shape/dtype
        mismatch, pair-valued ops) degrades to the allocating fold, never
        to an error; the result is then the usual shared read-only
        broadcast snapshot on non-root ranks.
        """
        gathered = self.gather(obj, root=0)  # type: ignore[attr-defined]
        if self.rank == 0:
            assert gathered is not None
            if fold_output_usable(out, gathered):
                reduced = op.fold_into(out, gathered)
            else:
                reduced = op.reduce_sequence(gathered)
        else:
            reduced = None
        reduced = self.bcast(reduced, root=0)  # type: ignore[attr-defined]
        if self.rank != 0:
            return copy_result_into(reduced, out)
        return reduced

    def scan(self, obj: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction: rank ``i`` receives
        ``op(obj_0, ..., obj_i)`` (deterministic rank-ordered fold)."""
        gathered = self.gather(obj, root=0)  # type: ignore[attr-defined]
        if self.rank == 0:
            assert gathered is not None
            prefixes: List[Any] = []
            acc = None
            for item in gathered:
                acc = item if acc is None else op(acc, item)
                prefixes.append(acc)
        else:
            prefixes = None
        return self.scatter(prefixes, root=0)  # type: ignore[attr-defined]

    def exscan(self, obj: Any, op: ReduceOp) -> Any:
        """Exclusive prefix reduction: rank ``i`` receives
        ``op(obj_0, ..., obj_{i-1})``; rank 0 receives ``None`` (as MPI
        leaves the rank-0 exscan buffer undefined)."""
        gathered = self.gather(obj, root=0)  # type: ignore[attr-defined]
        if self.rank == 0:
            assert gathered is not None
            prefixes: List[Any] = [None]
            acc = None
            for item in gathered[:-1]:
                acc = item if acc is None else op(acc, item)
                prefixes.append(acc)
        else:
            prefixes = None
        return self.scatter(prefixes, root=0)  # type: ignore[attr-defined]

    def reduce_scatter(self, objs: Sequence[Any], op: ReduceOp) -> Any:
        """Reduce ``objs[j]`` across ranks, delivering block ``j`` to rank
        ``j``: rank ``j`` receives ``op(objs_0[j], ..., objs_{p-1}[j])``."""
        if len(objs) != self.size:
            raise SmpiError(
                f"reduce_scatter needs exactly {self.size} blocks, got "
                f"{len(objs)}"
            )
        received = self.alltoall(list(objs))  # type: ignore[attr-defined]
        return op.reduce_sequence(received)
