"""Nonblocking communication requests (``isend``/``irecv`` and the
composable collective handles).

In this in-process runtime a send never blocks (mailboxes are unbounded), so
an :class:`SendRequest` is complete at creation — matching MPI's *buffered*
send semantics, which is also what mpi4py's pickle-mode ``isend`` gives for
small messages.  An :class:`RecvRequest` completes when a matching envelope
is taken from the mailbox; ``wait`` blocks (optionally bounded by
``timeout=``), ``test`` polls.

Nonblocking *collectives* (:meth:`~repro.smpi.nonblocking.
NonblockingCollectivesMixin.ibcast` and friends) return a
:class:`CollectiveRequest`: a composition of child requests plus a
finalizer that assembles the collective's result exactly once when the
last child completes.  Collective requests compose — :func:`waitall`
completes any mixture of requests and is idempotent (every request caches
its result, so repeated ``wait``/``waitall`` calls are free).
"""

from __future__ import annotations

import inspect
import time
import warnings
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .exceptions import DeadlockError, SmpiError
from .mailbox import Mailbox
from .message import take_payload
from .provenance import TRACKER, pending_summary

__all__ = [
    "Request",
    "SendRequest",
    "RecvRequest",
    "CollectiveRequest",
    "waitall",
]


def _warn_unawaited(request: "Request", what: str) -> None:
    """Finalizer body shared by the leak-prone request classes.

    A request garbage-collected without ``wait()``/``test()`` ever
    observing completion is an SPMD hazard (dropped message, or a peer
    blocked on this rank's deferred collective share) — the runtime twin
    of the static never-awaited rule ``SPMD002``.  Emits a
    :class:`ResourceWarning`, with the creation traceback appended when
    provenance tracking captured one.
    """
    origin = getattr(request, "_origin", None)
    message = (
        f"{what} was garbage-collected without wait()/test() observing "
        f"completion — an un-awaited nonblocking operation (SPMD002)"
    )
    if origin:
        message += f"; created at:\n{origin}"
    warnings.warn(message, ResourceWarning, stacklevel=2, source=request)


class Request:
    """Abstract handle for an in-flight nonblocking operation."""

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until completion; return the received payload (or ``None``
        for sends).  ``timeout`` (seconds) bounds the wait — on expiry a
        :class:`~repro.smpi.exceptions.DeadlockError` is raised instead of
        hanging the calling thread forever."""
        raise NotImplementedError

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion check: ``(done, payload_or_None)``."""
        raise NotImplementedError


def _wait_child(child: Any, timeout: Optional[float]) -> Any:
    """Complete ``child``, passing ``timeout`` through when supported.

    Foreign request objects (e.g. mpi4py's, whose ``wait`` takes a status
    argument instead) are waited unbounded, matching their native
    semantics.  Support is decided by *signature inspection*, never by
    catching ``TypeError`` from the call — a ``TypeError`` raised inside
    the wait's execution (e.g. a finalizer folding mismatched payloads)
    must propagate, not silently retry and re-run side effects.
    """
    if timeout is None:
        return child.wait()
    if isinstance(child, Request):
        return child.wait(timeout=timeout)
    try:
        supports_timeout = "timeout" in inspect.signature(child.wait).parameters
    except (TypeError, ValueError):  # builtins/extensions without signatures
        supports_timeout = False
    if supports_timeout:
        return child.wait(timeout=timeout)
    return child.wait()


class SendRequest(Request):
    """A buffered send: complete immediately."""

    def wait(self, timeout: Optional[float] = None) -> None:
        return None

    def test(self) -> Tuple[bool, None]:
        return True, None


class RecvRequest(Request):
    """A pending receive bound to a mailbox and a ``(source, tag)`` pattern."""

    def __init__(self, mailbox: Mailbox, source: int, tag: int) -> None:
        self._mailbox = mailbox
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None
        self._origin: Optional[str] = None
        if TRACKER.enabled:
            self._origin = TRACKER.note_request(
                self,
                "RecvRequest",
                f"recv(source={source}, tag={tag}) on rank {mailbox.owner}",
            )

    def __del__(self) -> None:
        try:
            if not self._done:
                _warn_unawaited(
                    self,
                    f"RecvRequest(source={self._source}, tag={self._tag})",
                )
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the matching envelope arrives.

        ``timeout`` (seconds) overrides the mailbox's default deadlock
        timeout for this wait only.  A deadlocked wait — no matching send
        ever posted — raises a descriptive
        :class:`~repro.smpi.exceptions.DeadlockError` naming the pending
        ``(source, tag)`` pattern instead of hanging the threads backend
        forever.
        """
        if not self._done:
            try:
                envelope = self._mailbox.get(
                    self._source, self._tag, timeout=timeout
                )
            except DeadlockError as exc:
                effective = (
                    timeout if timeout is not None else self._mailbox.timeout
                )
                message = (
                    f"RecvRequest.wait(source={self._source}, "
                    f"tag={self._tag}) timed out after {effective}s on rank "
                    f"{self._mailbox.owner}: the matching send was never "
                    f"posted (deadlocked nonblocking receive)"
                )
                dump = pending_summary()
                if dump:
                    message += "\n" + dump
                raise DeadlockError(message) from exc
            self._payload = take_payload(envelope)
            self._done = True
        return self._payload

    def test(self) -> Tuple[bool, Optional[Any]]:
        if self._done:
            return True, self._payload
        envelope = self._mailbox.poll(self._source, self._tag)
        if envelope is None:
            return False, None
        self._payload = take_payload(envelope)
        self._done = True
        return True, self._payload

    def cancel(self) -> None:
        """Mark the request as abandoned; waiting afterwards is an error."""
        if self._done:
            raise SmpiError("cannot cancel a completed receive request")
        self._done = True
        self._payload = None


class CollectiveRequest(Request):
    """Completion handle for a nonblocking collective.

    Composes zero or more *child* requests (typically pending receives)
    with a ``finalize`` callback that turns the children's payloads into
    the collective's result.  ``finalize`` runs exactly once, on whichever
    ``wait``/``test`` call observes the last child completing — this is
    where a root rank performs its deferred share of the collective (e.g.
    folding gathered contributions and fanning the reduction back out).
    The result is cached, so repeated completion calls (and
    :func:`waitall` over already-completed requests) are free.
    """

    def __init__(
        self,
        children: Sequence[Any] = (),
        finalize: Optional[Callable[[List[Any]], Any]] = None,
        *,
        op: str = "collective",
        root: Optional[int] = None,
        tag: Optional[int] = None,
    ) -> None:
        self._children = list(children)
        self._finalize = finalize
        self._done = not self._children and finalize is None
        self._result: Any = None
        # Operation metadata: who/what this handle completes.  Purely
        # diagnostic — it names the op, root and tag in timeout errors,
        # finalizer warnings and leak reports.
        self.op = op
        self.root = root
        self.tag = tag
        # Child payloads are collected *incrementally*: foreign requests
        # (mpi4py) consume their message on the first successful test(),
        # so a partial poll must bank what it saw — re-testing would lose
        # already-delivered payloads.
        self._collected = [False] * len(self._children)
        self._payloads: List[Any] = [None] * len(self._children)
        self._origin: Optional[str] = None
        if not self._done and TRACKER.enabled:
            self._origin = TRACKER.note_request(
                self, "CollectiveRequest", self._describe()
            )

    def _describe(self) -> str:
        parts = [self.op]
        if self.root is not None:
            parts.append(f"root={self.root}")
        if self.tag is not None:
            parts.append(f"tag={self.tag}")
        return ", ".join(parts)

    def __del__(self) -> None:
        try:
            if not self._done:
                _warn_unawaited(
                    self, f"CollectiveRequest({self._describe()})"
                )
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    @classmethod
    def completed(cls, result: Any = None) -> "CollectiveRequest":
        """An already-complete request carrying ``result`` (the degenerate
        single-rank / root-side case)."""
        request = cls()
        request._result = result
        request._done = True
        return request

    def _complete(self, payloads: List[Any]) -> None:
        if self._finalize is not None:
            self._result = self._finalize(payloads)
        self._done = True

    def _timeout_error(self, timeout: Optional[float]) -> DeadlockError:
        spent = f" after {timeout}s" if timeout is not None else ""
        return DeadlockError(
            f"CollectiveRequest.wait({self._describe()}) timed out{spent} "
            f"with {self._collected.count(False)} child request(s) still "
            f"pending — a peer likely never issued (or never completed) "
            f"its matching collective"
        )

    def wait(self, timeout: Optional[float] = None) -> Any:
        if self._done:
            return self._result
        deadline = None if timeout is None else time.monotonic() + timeout
        for index, child in enumerate(self._children):
            if self._collected[index]:
                continue
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise self._timeout_error(timeout)
            try:
                payload = _wait_child(child, remaining)
            except DeadlockError as exc:
                # Name the collective (op, root, tag), not just the
                # child receive — that is what the user issued.
                raise self._timeout_error(timeout) from exc
            self._collected[index] = True
            self._payloads[index] = payload
        self._complete(self._payloads)
        return self._result

    def test(self) -> Tuple[bool, Any]:
        if self._done:
            return True, self._result
        for index, child in enumerate(self._children):
            if self._collected[index]:
                continue
            done, payload = child.test()
            if not done:
                return False, None
            self._collected[index] = True
            self._payloads[index] = payload
        self._complete(self._payloads)
        return True, self._result

    def cancel(self) -> None:
        """Abandon the collective: cancel still-pending child receives and
        mark this handle done (without running ``finalize``).

        The abort path for a crashed pipelined step — peers are unwinding
        too, so the children can never complete; cancelling keeps the
        abandoned requests out of leak reports and silences their
        unawaited-request warnings.  Waiting afterwards returns ``None``.
        """
        if self._done:
            raise SmpiError("cannot cancel a completed collective request")
        for index, child in enumerate(self._children):
            if self._collected[index]:
                continue
            cancel = getattr(child, "cancel", None)
            if cancel is None:
                continue
            try:
                cancel()
            except SmpiError:
                pass  # child completed concurrently — nothing to abandon
        self._done = True
        self._result = None

    @staticmethod
    def waitall(
        requests: Sequence["Request"], timeout: Optional[float] = None
    ) -> List[Any]:
        """Complete every request; returns their results in order.  See
        :func:`waitall`."""
        return waitall(requests, timeout=timeout)


def waitall(
    requests: Sequence[Request], timeout: Optional[float] = None
) -> List[Any]:
    """Complete ``requests`` in order and return their payloads/results.

    Idempotent: requests cache their result on first completion, so
    calling ``waitall`` again (or mixing it with individual ``wait``
    calls, in any order) returns the same values without re-communicating.
    ``timeout`` bounds the *total* wall time across all pending requests.
    """
    if timeout is None:
        return [_wait_child(request, None) for request in requests]
    deadline = time.monotonic() + timeout
    results = []
    for request in requests:
        remaining = deadline - time.monotonic()
        if remaining <= 0.0:
            raise DeadlockError(
                f"waitall timed out after {timeout}s with "
                f"{len(requests) - len(results)} request(s) still pending"
            )
        results.append(_wait_child(request, remaining))
    return results
