"""Nonblocking communication requests (``isend``/``irecv``).

In this in-process runtime a send never blocks (mailboxes are unbounded), so
an :class:`SendRequest` is complete at creation — matching MPI's *buffered*
send semantics, which is also what mpi4py's pickle-mode ``isend`` gives for
small messages.  An :class:`RecvRequest` completes when a matching envelope
is taken from the mailbox; ``wait`` blocks, ``test`` polls.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .exceptions import SmpiError
from .mailbox import Mailbox

__all__ = ["Request", "SendRequest", "RecvRequest"]


class Request:
    """Abstract handle for an in-flight nonblocking operation."""

    def wait(self) -> Any:
        """Block until completion; return the received payload (or ``None``
        for sends)."""
        raise NotImplementedError

    def test(self) -> Tuple[bool, Any]:
        """Non-blocking completion check: ``(done, payload_or_None)``."""
        raise NotImplementedError


class SendRequest(Request):
    """A buffered send: complete immediately."""

    def wait(self) -> None:
        return None

    def test(self) -> Tuple[bool, None]:
        return True, None


class RecvRequest(Request):
    """A pending receive bound to a mailbox and a ``(source, tag)`` pattern."""

    def __init__(self, mailbox: Mailbox, source: int, tag: int) -> None:
        self._mailbox = mailbox
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None

    def wait(self) -> Any:
        if not self._done:
            envelope = self._mailbox.get(self._source, self._tag)
            self._payload = envelope.payload
            self._done = True
        return self._payload

    def test(self) -> Tuple[bool, Optional[Any]]:
        if self._done:
            return True, self._payload
        envelope = self._mailbox.poll(self._source, self._tag)
        if envelope is None:
            return False, None
        self._payload = envelope.payload
        self._done = True
        return True, self._payload

    def cancel(self) -> None:
        """Mark the request as abandoned; waiting afterwards is an error."""
        if self._done:
            raise SmpiError("cannot cancel a completed receive request")
        self._done = True
        self._payload = None
