"""Shared state backing all communicators of one SPMD run.

A :class:`World` owns the mailboxes of every ``(context, rank)`` pair and
hands out fresh *context ids*.  Contexts are the standard MPI mechanism that
keeps traffic of different communicators (e.g. after a ``split``) from
cross-matching: a message sent on communicator A can never be received on
communicator B even if ranks and tags coincide, because their context ids
differ.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from .exceptions import SmpiError
from .mailbox import DEFAULT_TIMEOUT, Mailbox

__all__ = ["World"]


class World:
    """Mailbox registry and context-id allocator for one SPMD execution.

    Parameters
    ----------
    size:
        Number of world ranks (threads).
    timeout:
        Blocking-receive timeout propagated to every mailbox; apparent
        deadlocks surface as :class:`~repro.smpi.exceptions.DeadlockError`
        after this many seconds.
    """

    #: Context id of the initial world communicator.
    WORLD_CONTEXT = 0

    def __init__(self, size: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if size <= 0:
            raise SmpiError(f"world size must be positive, got {size}")
        self.size = size
        self.timeout = timeout
        self._mailboxes: Dict[Tuple[int, int], Mailbox] = {}
        self._lock = threading.Lock()
        self._next_context = World.WORLD_CONTEXT + 1
        self._failed: Dict[int, BaseException] = {}
        self._retired: set = set()
        #: The :class:`repro.health.HealthMonitor` attached to this world,
        #: if any — consumers (e.g. serving) may consult it for peer
        #: health before committing to a collective.
        self.health: Optional[object] = None

    def mailbox(self, context: int, world_rank: int) -> Mailbox:
        """Mailbox of ``world_rank`` within ``context`` (created lazily)."""
        if not (0 <= world_rank < self.size):
            raise SmpiError(
                f"world rank {world_rank} outside [0, {self.size})"
            )
        key = (context, world_rank)
        with self._lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = Mailbox(owner=world_rank, timeout=self.timeout)
                box.attach_failure_probe(self.failed_ranks)
                self._mailboxes[key] = box
            return box

    # -- rank failure (fail-fast peer wakeup) ------------------------------
    def fail_rank(self, world_rank: int, exc: Optional[BaseException] = None) -> None:
        """Declare ``world_rank`` dead and wake every blocked receiver.

        Peers waiting in ``Mailbox.get`` then raise
        :class:`~repro.smpi.exceptions.FailedRankError` naming the dead
        rank(s) immediately, instead of spinning out the full deadlock
        timeout.  Idempotent; the first recorded exception per rank wins.
        """
        with self._lock:
            if world_rank not in self._failed:
                self._failed[world_rank] = (
                    exc
                    if exc is not None
                    else RuntimeError(f"rank {world_rank} failed")
                )
            boxes = list(self._mailboxes.values())
        for box in boxes:
            box.notify_failure()

    def failed_ranks(self) -> Dict[int, BaseException]:
        """Snapshot of dead world ranks (rank -> causing exception)."""
        with self._lock:
            return dict(self._failed)

    # -- liveness heartbeat (repro.health) ---------------------------------
    def heartbeat(self, world_rank: int) -> None:
        """Publish a liveness beat for ``world_rank``.

        Beats land on the rank's world-context mailbox; peers read them
        through :meth:`last_beat` to classify this rank's health.
        """
        self.mailbox(World.WORLD_CONTEXT, world_rank).beat()

    def last_beat(self, world_rank: int) -> float:
        """Monotonic timestamp of ``world_rank``'s most recent beat."""
        return self.mailbox(World.WORLD_CONTEXT, world_rank).last_beat

    def retire_rank(self, world_rank: int) -> None:
        """Mark ``world_rank`` as *cleanly departed*.

        A rank that finishes its job and stops beating is not dead —
        health monitors skip retired ranks instead of escalating their
        growing beat age to a failure.  Idempotent.
        """
        with self._lock:
            self._retired.add(world_rank)

    def retired_ranks(self) -> set:
        """Snapshot of ranks that departed cleanly (see :meth:`retire_rank`)."""
        with self._lock:
            return set(self._retired)

    def allocate_contexts(self, count: int) -> List[int]:
        """Reserve ``count`` fresh context ids (used by ``split``/``dup``).

        Called by a single rank on behalf of the whole communicator, which
        then broadcasts the ids — mirroring how real MPI agrees on a context
        id collectively.
        """
        if count <= 0:
            raise SmpiError(f"context count must be positive, got {count}")
        with self._lock:
            start = self._next_context
            self._next_context += count
            return list(range(start, start + count))
