"""Nonblocking collectives layered on ``isend``/``irecv``.

Every operation returns a :class:`~repro.smpi.request.CollectiveRequest`
immediately; the collective's result materialises on ``wait()``/``test()``
(or :func:`~repro.smpi.request.waitall` over several requests).  The
implementations compose only the protocol primitives, so any backend that
provides ``isend``/``irecv`` — including the :class:`~repro.smpi.mpi.
Mpi4pyCommunicator` adapter — inherits them unchanged; the threads backend
overrides the fan-out ops (``ibcast``, ``iallreduce``) with its zero-copy
snapshot-sharing lane.

Progress semantics (mirroring MPI): all ranks must call the same
nonblocking collectives in the same order, and a rank's *deferred* share
of the work (e.g. the root folding an ``iallreduce``) runs inside its own
``wait``/``test`` — a root that never completes its request never releases
its peers.  Completion calls are cheap to repeat (results are cached).

Several collectives of the same kind may be in flight at once and may be
completed in any order: each operation draws a per-communicator sequence
number and encodes it in its tags, so round *k*'s traffic can never match
round *k+1*'s request — regardless of completion order.  (Ranks issue
collectives in the same program order, so their sequence counters agree.)

Tag reservation: these collectives exchange traffic on tags at and above
:data:`NB_TAG_BASE` (``1 << 24``), spanning ``NB_TAG_BASE`` to
``NB_TAG_BASE + _NB_STRIDE * _NB_SEQ_WINDOW``.  Application
point-to-point traffic should stay below that band.

Send-buffer lifetime: every ``isend`` a collective posts is retained by
the returned request (as completion children or awaited inside the
deferred share), so backends whose send requests own the wire buffer —
mpi4py's pickle mode — cannot have it garbage-collected mid-flight.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .derived import assemble_row_blocks, copy_result_into, fold_output_usable
from .exceptions import SmpiError
from .message import copy_payload
from .reduction import ReduceOp
from .request import CollectiveRequest

__all__ = ["NB_TAG_BASE", "NonblockingCollectivesMixin"]

#: First tag of the band reserved for nonblocking-collective plumbing.
NB_TAG_BASE = 1 << 24

# Per-operation tag offsets within one sequence slot.
_OFF_BCAST = 0
_OFF_GATHERV = 1
_OFF_REDUCE_UP = 2
_OFF_REDUCE_DOWN = 3
_OFF_ALLTOALL = 4
#: Tag-slot width per sequence number (> number of offsets above).
_NB_STRIDE = 8
#: Sequence numbers wrap here; correctness then degrades to FIFO matching,
#: which would need >65k *same-kind* collectives simultaneously in flight
#: to go wrong.
_NB_SEQ_WINDOW = 1 << 16


class NonblockingCollectivesMixin:
    """Derived nonblocking collectives for any ``isend``/``irecv`` backend.

    Backends customise only the three posting hooks (``_nb_post``,
    ``_nb_fanout_posted``, ``_nb_fanout_deferred``); the collective
    protocols themselves live here once.
    """

    # provided by the host class
    rank: int
    size: int

    def _nb_tag(self, op: str, offset: int) -> int:
        """Sequence-stamped tag for this communicator's next ``op`` round.

        Counters live per communicator instance and per operation kind;
        every rank advances them in the same (required) program order, so
        the stamped tags agree across ranks while distinguishing rounds.
        Call once per collective per op (the reduce down-tag derives from
        the up-tag's slot).
        """
        counters = self.__dict__.setdefault("_nb_seq", {})
        seq = counters.get(op, 0)
        counters[op] = seq + 1
        return NB_TAG_BASE + offset + _NB_STRIDE * (seq % _NB_SEQ_WINDOW)

    # -- posting hooks (overridable per backend) ---------------------------
    def _nb_post(self, obj: Any, dest: int, tag: int) -> Optional[Any]:
        """Post one payload at call time; return a request the collective
        must retain (buffer lifetime), or ``None`` when the backend's
        sends complete at post time."""
        return self.isend(obj, dest, tag)  # type: ignore[attr-defined]

    def _nb_fanout_posted(self, obj: Any, skip: int, tag: int) -> List[Any]:
        """Fan ``obj`` out to every rank but ``skip`` at call time; return
        the requests to retain (possibly empty)."""
        requests = []
        for peer in range(self.size):
            if peer != skip:
                request = self._nb_post(obj, peer, tag)
                if request is not None:
                    requests.append(request)
        return requests

    def _nb_fanout_deferred(self, obj: Any, skip: int, tag: int) -> None:
        """Fan ``obj`` out from inside a completion callback.

        Uses *blocking* sends: every receiver preposted its receive when
        it issued the collective, so the sends cannot stall, and a
        completed send needs no buffer-lifetime management.
        """
        for peer in range(self.size):
            if peer != skip:
                self.send(obj, peer, tag)  # type: ignore[attr-defined]

    # -- collectives --------------------------------------------------------
    def ibcast(self, obj: Any, root: int = 0) -> CollectiveRequest:
        """Nonblocking broadcast; every rank's ``wait()`` returns the value.

        The root's sends are posted immediately; its request completes
        when they do (instantly on the buffered in-process backends).
        """
        if self.size == 1:
            return CollectiveRequest.completed(obj)
        tag = self._nb_tag("bcast", _OFF_BCAST)
        if self.rank == root:
            sends = self._nb_fanout_posted(obj, root, tag)
            return CollectiveRequest(
                sends,
                finalize=lambda payloads: obj,
                op="ibcast",
                root=root,
                tag=tag,
            )
        child = self.irecv(root, tag)  # type: ignore[attr-defined]
        return CollectiveRequest(
            [child],
            finalize=lambda payloads: payloads[0],
            op="ibcast",
            root=root,
            tag=tag,
        )

    def igatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ) -> CollectiveRequest:
        """Nonblocking row-block gather; the root's ``wait()`` returns the
        stacked ``(sum_i M_i, n)`` array (into ``out`` when usable), other
        ranks' ``wait()`` returns ``None``.

        The root assembles on completion, with the same dtype promotion
        and shape guards as the blocking :meth:`~repro.smpi.derived.
        DerivedCollectivesMixin.gatherv_rows`.
        """
        arr = np.asarray(sendbuf)
        if arr.ndim != 2:
            raise SmpiError(
                f"igatherv_rows expects a 2-D row block, got ndim={arr.ndim}"
            )
        tag = self._nb_tag("gatherv", _OFF_GATHERV)
        if self.rank != root:
            send = self._nb_post(arr, root, tag)
            children = [send] if send is not None else []
            return CollectiveRequest(
                children,
                finalize=lambda payloads: None,
                op="igatherv_rows",
                root=root,
                tag=tag,
            )
        children = [
            self.irecv(peer, tag)  # type: ignore[attr-defined]
            for peer in range(self.size)
            if peer != root
        ]
        # Snapshot the root's own contribution now: peers' blocks were
        # snapshotted by their posts, and a caller may legally reuse the
        # send buffer before completing the request — the assembled
        # result must be all-post-time, never mixed-epoch.
        own = copy_payload(arr)

        def finalize(payloads: List[Any]) -> np.ndarray:
            blocks: List[Any] = list(payloads)
            blocks.insert(root, own)
            return assemble_row_blocks(blocks, out)

        return CollectiveRequest(
            children, finalize, op="igatherv_rows", root=root, tag=tag
        )

    def iallreduce(
        self, obj: Any, op: ReduceOp, out: Optional[np.ndarray] = None
    ) -> CollectiveRequest:
        """Nonblocking allreduce (deterministic rank-ascending fold).

        Rank 0 acts as the fold root: its deferred ``wait()`` collects
        every contribution, folds in rank order (into ``out`` when usable,
        as in the blocking ``allreduce``), and fans the result back out;
        peers complete when the result lands.
        """
        if self.size == 1:
            values = [obj]
            if fold_output_usable(out, values):
                return CollectiveRequest.completed(op.fold_into(out, values))
            return CollectiveRequest.completed(op.reduce_sequence(values))
        up_tag = self._nb_tag("reduce", _OFF_REDUCE_UP)
        down_tag = up_tag - _OFF_REDUCE_UP + _OFF_REDUCE_DOWN
        if self.rank != 0:
            send = self._nb_post(obj, 0, up_tag)
            child = self.irecv(0, down_tag)  # type: ignore[attr-defined]
            children = [send, child] if send is not None else [child]

            def receive(payloads: List[Any]) -> Any:
                return copy_result_into(payloads[-1], out)

            return CollectiveRequest(
                children, receive, op="iallreduce", root=0, tag=up_tag
            )
        children = [
            self.irecv(peer, up_tag)  # type: ignore[attr-defined]
            for peer in range(1, self.size)
        ]
        # Snapshot at post time, like the peers' sends (see igatherv_rows).
        own = copy_payload(obj)

        def fold_and_fan_out(payloads: List[Any]) -> Any:
            values = [own] + payloads  # rank-ascending order
            if fold_output_usable(out, values):
                result = op.fold_into(out, values)
            else:
                result = op.reduce_sequence(values)
            self._nb_fanout_deferred(result, 0, down_tag)
            return result

        return CollectiveRequest(
            children, fold_and_fan_out, op="iallreduce", root=0, tag=up_tag
        )

    def ialltoall(self, objs: Sequence[Any]) -> CollectiveRequest:
        """Nonblocking personalised all-to-all; ``wait()`` returns the
        rank-ordered received list.  Sends (and the self-delivery
        snapshot) happen at call time — value semantics match the
        blocking ``alltoall``."""
        if len(objs) != self.size:
            raise SmpiError(
                f"ialltoall needs exactly {self.size} items, got {len(objs)}"
            )
        own = copy_payload(objs[self.rank])
        if self.size == 1:
            return CollectiveRequest.completed([own])
        tag = self._nb_tag("alltoall", _OFF_ALLTOALL)
        sends = []
        for peer in range(self.size):
            if peer != self.rank:
                send = self._nb_post(objs[peer], peer, tag)
                if send is not None:
                    sends.append(send)
        receives = [
            self.irecv(peer, tag)  # type: ignore[attr-defined]
            for peer in range(self.size)
            if peer != self.rank
        ]

        def finalize(payloads: List[Any]) -> List[Any]:
            received: List[Any] = list(payloads[len(sends) :])
            received.insert(self.rank, own)
            return received

        return CollectiveRequest(
            sends + receives, finalize, op="ialltoall", tag=tag
        )
