"""Thin adapter exposing the :mod:`repro.smpi` communicator protocol over
a real ``mpi4py`` communicator.

The protocol (see :mod:`repro.smpi.factory`) deliberately mirrors mpi4py's
lowercase pickle methods, so most operations delegate one-to-one.  The
adapter fills the gaps:

* the derived collectives (``gatherv_rows``/``scatterv_rows``, the
  :class:`~repro.smpi.reduction.ReduceOp` reductions and scans) come from
  the same :class:`~repro.smpi.derived.DerivedCollectivesMixin` the
  threaded backend uses, so reductions stay a deterministic rank-ordered
  fold — bit-identical to the in-process backends instead of depending on
  the MPI library's reduction tree;
* the nonblocking collectives (``ibcast``/``igatherv_rows``/
  ``iallreduce``/``ialltoall``) come from :class:`~repro.smpi.nonblocking.
  NonblockingCollectivesMixin`, layered on mpi4py's native pickle-mode
  ``isend``/``irecv`` (their requests duck-type ``wait``/``test``);
  traffic uses the reserved high tag band documented there;
* ``split``/``dup`` — re-wrap the child communicator in the adapter.

mpi4py is optional: this module imports without it, and
:data:`HAVE_MPI4PY` tells callers (and the test suite, which skips) whether
the ``"mpi4py"`` backend is usable.  Run adapted programs under a real
launcher, e.g. ``mpiexec -n 4 python driver.py``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .derived import DerivedCollectivesMixin
from .exceptions import SmpiError
from .nonblocking import NonblockingCollectivesMixin

__all__ = ["HAVE_MPI4PY", "Mpi4pyCommunicator"]

try:  # pragma: no cover - exercised only where mpi4py is installed
    from mpi4py import MPI as _MPI

    HAVE_MPI4PY = True
except ImportError:  # pragma: no cover - the common case in this container
    _MPI = None
    HAVE_MPI4PY = False


class Mpi4pyCommunicator(NonblockingCollectivesMixin, DerivedCollectivesMixin):
    """Wrap an ``mpi4py`` communicator behind the smpi protocol.

    Parameters
    ----------
    mpi_comm:
        An ``mpi4py.MPI.Comm``; defaults to ``COMM_WORLD``.
    irecv_buffer_bytes:
        Size of the receive buffer allocated per ``irecv``.  mpi4py's
        pickle-mode ``irecv`` cannot probe-size a preposted receive and
        *truncates* messages larger than its (small) default buffer, so
        every preposted receive here carries an explicit buffer.  Raise
        this when preposting receives for large payloads (e.g. gathered
        mode blocks); blocking ``recv`` probe-sizes and is unaffected.
    """

    def __init__(
        self, mpi_comm: Any = None, irecv_buffer_bytes: int = 1 << 24
    ) -> None:
        if not HAVE_MPI4PY:
            raise SmpiError(
                "the 'mpi4py' backend requires the mpi4py package, which is "
                "not installed; use the 'threads' or 'self' backend instead"
            )
        if int(irecv_buffer_bytes) < 1:
            raise SmpiError(
                f"irecv_buffer_bytes must be >= 1, got {irecv_buffer_bytes!r}"
            )
        self._comm = _MPI.COMM_WORLD if mpi_comm is None else mpi_comm
        self._irecv_buffer_bytes = int(irecv_buffer_bytes)
        self.rank = int(self._comm.Get_rank())
        self.size = int(self._comm.Get_size())

    @property
    def irecv_buffer_bytes(self) -> int:
        """Per-``irecv`` preposted receive-buffer size (bytes).  Propagates
        through :meth:`split`/:meth:`dup`; configure it via
        :class:`repro.config.BackendConfig.irecv_buffer_bytes`."""
        return self._irecv_buffer_bytes

    # -- mpi4py-style accessors ------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._comm.send(obj, dest=dest, tag=tag)

    def recv(self, source: int = -1, tag: int = -1) -> Any:
        return self._comm.recv(
            source=_MPI.ANY_SOURCE if source == -1 else source,
            tag=_MPI.ANY_TAG if tag == -1 else tag,
        )

    def isend(self, obj: Any, dest: int, tag: int = 0):
        return self._comm.isend(obj, dest=dest, tag=tag)

    def irecv(self, source: int = -1, tag: int = -1):
        # Explicit buffer: see irecv_buffer_bytes in the class docstring.
        return self._comm.irecv(
            bytearray(self._irecv_buffer_bytes),
            source=_MPI.ANY_SOURCE if source == -1 else source,
            tag=_MPI.ANY_TAG if tag == -1 else tag,
        )

    def sendrecv(self, obj: Any, dest: int, source: int) -> Any:
        return self._comm.sendrecv(obj, dest=dest, source=source)

    def iprobe(self, source: int = -1, tag: int = -1) -> bool:
        return bool(
            self._comm.iprobe(
                source=_MPI.ANY_SOURCE if source == -1 else source,
                tag=_MPI.ANY_TAG if tag == -1 else tag,
            )
        )

    # -- collectives -------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._comm.bcast(obj, root=root)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        return self._comm.gather(obj, root=root)

    def allgather(self, obj: Any) -> List[Any]:
        return self._comm.allgather(obj)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        return self._comm.scatter(objs, root=root)

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        return self._comm.alltoall(objs)

    def barrier(self) -> None:
        self._comm.barrier()

    # (gatherv_rows / scatterv_rows / reduce / allreduce / scan / exscan /
    # reduce_scatter come from DerivedCollectivesMixin — deterministic
    # rank-ordered folds, shared with the threaded backend.)

    # -- communicator management -------------------------------------------
    def split(
        self, color: Optional[int], key: int = 0
    ) -> Optional["Mpi4pyCommunicator"]:
        mpi_color = _MPI.UNDEFINED if color is None else int(color)
        child = self._comm.Split(mpi_color, int(key))
        if child == _MPI.COMM_NULL:
            return None
        return Mpi4pyCommunicator(child, self._irecv_buffer_bytes)

    def dup(self) -> "Mpi4pyCommunicator":
        return Mpi4pyCommunicator(self._comm.Dup(), self._irecv_buffer_bytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mpi4pyCommunicator(rank={self.rank}, size={self.size})"
