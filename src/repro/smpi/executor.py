"""SPMD executor: run a function on ``n`` ranks, one thread per rank.

This replaces ``mpiexec -n <p> python script.py``.  The target function
receives its rank's :class:`~repro.smpi.communicator.Communicator` as first
argument, exactly as an mpi4py program receives ``MPI.COMM_WORLD``.

Threads (not processes) are used because the workload is NumPy/BLAS-bound —
which releases the GIL — and, more importantly, because the goal of the
substrate is *algorithmic fidelity* (identical communication pattern and
numerics to an MPI run), not single-machine speedup; parallel performance is
studied with the calibrated model in :mod:`repro.perf`.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .communicator import Communicator
from .exceptions import FailedRankError, SmpiError
from .mailbox import DEFAULT_TIMEOUT
from .tracer import CommTracer
from .world import World

__all__ = ["run_spmd", "ParallelFailure", "RankFailure"]


class RankFailure:
    """Captured exception from one rank: rank id, exception, traceback text."""

    def __init__(self, rank: int, exception: BaseException, tb: str) -> None:
        self.rank = rank
        self.exception = exception
        self.traceback = tb

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankFailure(rank={self.rank}, exception={self.exception!r})"


class ParallelFailure(SmpiError):
    """One or more ranks raised during an SPMD run.

    Attributes
    ----------
    failures:
        List of :class:`RankFailure`, rank-ordered.
    """

    def __init__(self, failures: Sequence[RankFailure]) -> None:
        self.failures = list(failures)
        lines = [f"{len(self.failures)} rank(s) failed during SPMD run:"]
        for failure in self.failures:
            first = str(failure.exception).splitlines() or [""]
            lines.append(
                f"  rank {failure.rank}: "
                f"{type(failure.exception).__name__}: {first[0]}"
            )
        # Prefer a root-cause traceback: when one rank dies its peers all
        # unwind with secondary FailedRankErrors — show the original crash.
        primary = next(
            (
                f
                for f in self.failures
                if not isinstance(f.exception, FailedRankError)
            ),
            self.failures[0],
        )
        lines.append(
            f"--- rank {primary.rank} traceback (root cause) ---"
        )
        lines.append(primary.traceback)
        super().__init__("\n".join(lines))


def run_spmd(
    nprocs: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = DEFAULT_TIMEOUT,
    trace: bool = False,
    **kwargs: Any,
) -> Any:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` ranks.

    Parameters
    ----------
    nprocs:
        Number of SPMD ranks.
    fn:
        Rank entry point; first positional argument is the communicator.
    timeout:
        Seconds each blocking receive may wait (deadlock detection) and the
        join timeout per thread.
    trace:
        Wrap every rank's communicator in a :class:`CommTracer`; the call
        then returns ``(results, tracers)``.

    Returns
    -------
    results:
        ``[fn result of rank 0, ..., fn result of rank nprocs-1]``
        (or ``(results, tracers)`` when ``trace=True``).

    Raises
    ------
    ParallelFailure
        If any rank raises; carries all per-rank failures.
    """
    if nprocs <= 0:
        raise SmpiError(f"nprocs must be positive, got {nprocs}")

    world = World(nprocs, timeout=timeout)
    group = tuple(range(nprocs))
    # Same observer hook as create_communicator: a no-op unless
    # repro.obs is installed with metrics, in which case every rank's
    # communicator reports per-op metrics (CommTracer stacks on top).
    from ..faults.runtime import inject_communicator
    from ..obs.runtime import observe_communicator

    # Fault injection wraps *outside* the observer so injected delays are
    # metered like genuine slowness; both are no-ops unless installed.
    comms: List[Any] = [
        inject_communicator(
            observe_communicator(
                Communicator(world, World.WORLD_CONTEXT, group, rank)
            )
        )
        for rank in range(nprocs)
    ]
    tracers: Optional[List[CommTracer]] = None
    if trace:
        tracers = [CommTracer(comm) for comm in comms]
        comms = list(tracers)

    results: List[Any] = [None] * nprocs
    failures: List[Optional[RankFailure]] = [None] * nprocs

    if nprocs == 1:
        # Run inline: cheaper, and keeps single-rank debugging trivial.
        try:
            results[0] = fn(comms[0], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            raise ParallelFailure(
                [RankFailure(0, exc, traceback.format_exc())]
            ) from exc
        return (results, tracers) if trace else results

    def worker(rank: int) -> None:
        try:
            results[rank] = fn(comms[rank], *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - collected below
            failures[rank] = RankFailure(rank, exc, traceback.format_exc())
            # Fail fast: wake every peer blocked on a receive so they
            # raise FailedRankError naming this rank instead of waiting
            # out the deadlock timeout.  Secondary FailedRankErrors (a
            # rank unwinding because a *peer* died) don't re-mark — the
            # unwinding rank is healthy, just cascaded.
            if not isinstance(exc, FailedRankError):
                world.fail_rank(rank, exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"smpi-rank-{rank}")
        for rank in range(nprocs)
    ]
    for thread in threads:
        thread.start()
    # Grace period beyond the mailbox timeout: a deadlocked rank needs
    # `timeout` seconds to raise DeadlockError and unwind before the join
    # can succeed.
    join_deadline = timeout + 5.0
    for thread in threads:
        thread.join(timeout=join_deadline)
    stuck = [t.name for t in threads if t.is_alive()]
    if stuck:
        raise SmpiError(
            f"SPMD threads did not terminate within {join_deadline}s: "
            f"{stuck} (likely deadlock; see smpi.DeadlockError timeouts)"
        )

    collected = [failure for failure in failures if failure is not None]
    if collected:
        raise ParallelFailure(collected)
    return (results, tracers) if trace else results
