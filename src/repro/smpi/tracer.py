"""Traffic accounting for communicators.

A :class:`CommTracer` is a transparent proxy for a
:class:`~repro.smpi.communicator.Communicator` that records, per operation,
the payload bytes the *algorithm* handed to the communication layer.  These
records feed the α–β communication cost model in :mod:`repro.perf` that
reproduces the paper's weak-scaling study: the model needs "how many bytes
does one APMOS step gather/broadcast at p ranks", and the tracer measures
exactly that on small, runnable rank counts so the analytic extrapolation
can be validated against it.

Accounting conventions (bytes are payload sizes from
:func:`repro.smpi.message.payload_nbytes`):

* ``send``/``recv``: size of the object sent/received.
* ``bcast``: root records ``(size-1) * nbytes``; receivers record ``nbytes``.
* ``gather``: senders record ``nbytes``; root records the sum of received
  contributions (its own, memory-local copy is not traffic).
* ``reduce``/``allreduce``/``allgather``/``alltoall``/``scatter``: analogous.
* ``barrier``: zero bytes, one record (latency-only event).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .communicator import Communicator
from .message import payload_nbytes
from .reduction import ReduceOp
from .request import Request, _wait_child

__all__ = ["COLLECTIVE_OPS", "CommRecord", "CommTracer", "TrafficSummary"]

#: Operation names recorded for collective calls (nonblocking variants
#: record under their blocking op's name) — the subset that must agree in
#: kind and order across every rank of an SPMD program, and therefore the
#: stream :meth:`CommTracer.schedule` exports for the cross-rank
#: conformance checker in :mod:`repro.verify.schedule`.
COLLECTIVE_OPS = frozenset(
    {
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "gatherv",
        "scatterv",
        "reduce",
        "allreduce",
        "alltoall",
        "scan",
        "exscan",
        "reduce_scatter",
        "barrier",
    }
)


def _payload_meta(obj: Any) -> tuple:
    """(dtype, shape) of an array payload; ``(None, None)`` otherwise."""
    if isinstance(obj, np.ndarray):
        return str(obj.dtype), tuple(int(dim) for dim in obj.shape)
    return None, None


class _TracedRequest(Request):
    """Proxy completing an inner request and recording its result's size.

    Nonblocking receives don't know their size until completion, so the
    tracer wraps the request and records once, on whichever
    ``wait``/``test`` call first observes completion.
    """

    def __init__(self, inner, record) -> None:
        # ``record(result, t_start, duration_s)`` — the completing
        # wait/test call's window, so nonblocking records carry the time
        # actually spent blocked on completion.
        self._inner = inner
        self._record = record

    def _observe(self, result, t_start: float, duration_s: float) -> None:
        if self._record is not None:
            self._record(result, t_start, duration_s)
            self._record = None

    def wait(self, timeout=None):
        # _wait_child forwards timeout= only to requests that take it
        # (foreign mpi4py requests put status first).
        t0 = time.perf_counter()
        result = _wait_child(self._inner, timeout)
        self._observe(result, t0, time.perf_counter() - t0)
        return result

    def test(self):
        t0 = time.perf_counter()
        done, result = self._inner.test()
        if done:
            self._observe(result, t0, time.perf_counter() - t0)
        return done, result


@dataclasses.dataclass(frozen=True)
class CommRecord:
    """One recorded communication event on one rank.

    ``root``, ``dtype`` and ``shape`` describe the collective's schedule
    (for rooted collectives, and array payloads respectively) and feed
    the cross-rank conformance checker; they stay ``None`` for events
    where they do not apply (p2p traffic, non-array payloads).  For
    gather-flavoured ops the recorded shape is this rank's *contribution*
    (row counts legitimately differ across ranks).

    ``t_start`` (a ``time.perf_counter`` stamp) and ``duration_s`` carry
    wall-clock data: for blocking ops the duration of the call, for
    nonblocking receive-side records the time blocked in the completing
    ``wait``/``test``.  Both default (``None``/``0.0``) so records
    serialized before these fields existed still deserialize."""

    op: str
    nbytes: int
    peer: Optional[int] = None
    root: Optional[int] = None
    dtype: Optional[str] = None
    shape: Optional[tuple] = None
    t_start: Optional[float] = None
    duration_s: float = 0.0


@dataclasses.dataclass
class TrafficSummary:
    """Aggregate view of a rank's traffic.

    ``total_seconds``/``seconds_by_op`` roll up the records' wall-clock
    durations (communication time, per op and overall) — the measured
    counterpart to the byte counts the α–β model consumes.  Both default
    so the pre-timing constructor signature keeps working."""

    events: int
    total_bytes: int
    by_op: Dict[str, int]
    total_seconds: float = 0.0
    seconds_by_op: Dict[str, float] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_records(cls, records: Sequence[CommRecord]) -> "TrafficSummary":
        by_op: Dict[str, int] = {}
        seconds_by_op: Dict[str, float] = {}
        total_seconds = 0.0
        for record in records:
            by_op[record.op] = by_op.get(record.op, 0) + record.nbytes
            duration = getattr(record, "duration_s", 0.0)
            seconds_by_op[record.op] = (
                seconds_by_op.get(record.op, 0.0) + duration
            )
            total_seconds += duration
        return cls(
            events=len(records),
            total_bytes=sum(r.nbytes for r in records),
            by_op=by_op,
            total_seconds=total_seconds,
            seconds_by_op=seconds_by_op,
        )


class CommTracer:
    """Recording proxy around a communicator (same call surface)."""

    def __init__(self, comm: Communicator) -> None:
        self._comm = comm
        self.records: List[CommRecord] = []

    # -- proxied attributes --------------------------------------------------
    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def Get_rank(self) -> int:
        return self._comm.rank

    def Get_size(self) -> int:
        return self._comm.size

    def _record(
        self,
        op: str,
        nbytes: int,
        peer: Optional[int] = None,
        root: Optional[int] = None,
        obj: Any = None,
        t_start: Optional[float] = None,
        duration_s: float = 0.0,
    ) -> None:
        dtype, shape = _payload_meta(obj)
        self.records.append(
            CommRecord(
                op=op,
                nbytes=int(nbytes),
                peer=peer,
                root=root,
                dtype=dtype,
                shape=shape,
                t_start=t_start if t_start is not None else time.perf_counter(),
                duration_s=duration_s,
            )
        )

    # -- point-to-point --------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._record("send", payload_nbytes(obj), peer=dest)
        self._comm.send(obj, dest, tag)

    def recv(self, source: int = -1, tag: int = -1) -> Any:
        t0 = time.perf_counter()
        obj = self._comm.recv(source, tag)
        self._record(
            "recv",
            payload_nbytes(obj),
            peer=source,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return obj

    def isend(self, obj: Any, dest: int, tag: int = 0):
        self._record("send", payload_nbytes(obj), peer=dest)
        return self._comm.isend(obj, dest, tag)

    def irecv(self, source: int = -1, tag: int = -1):
        # Received size is unknown until completion; record it on whichever
        # wait()/test() call first observes the payload.
        return _TracedRequest(
            self._comm.irecv(source, tag),
            lambda result, t0, dt: self._record(
                "recv",
                payload_nbytes(result),
                peer=source,
                t_start=t0,
                duration_s=dt,
            ),
        )

    def sendrecv(self, obj: Any, dest: int, source: int) -> Any:
        t0 = time.perf_counter()
        self._record("send", payload_nbytes(obj), peer=dest, t_start=t0)
        out = self._comm.sendrecv(obj, dest, source)
        self._record(
            "recv",
            payload_nbytes(out),
            peer=source,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    # -- collectives ------------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        t0 = time.perf_counter()
        if self._comm.rank == root:
            out = self._comm.bcast(obj, root)
            self._record(
                "bcast",
                payload_nbytes(obj) * (self._comm.size - 1),
                root=root,
                obj=obj,
                t_start=t0,
                duration_s=time.perf_counter() - t0,
            )
            return out
        out = self._comm.bcast(obj, root)
        self._record(
            "bcast",
            payload_nbytes(out),
            root=root,
            obj=out,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        t0 = time.perf_counter()
        if self._comm.rank == root:
            out = self._comm.gather(obj, root)
            assert out is not None
            received = sum(
                payload_nbytes(item)
                for peer, item in enumerate(out)
                if peer != root
            )
            self._record(
                "gather",
                received,
                root=root,
                obj=obj,
                t_start=t0,
                duration_s=time.perf_counter() - t0,
            )
            return out
        out = self._comm.gather(obj, root)
        self._record(
            "gather",
            payload_nbytes(obj),
            root=root,
            obj=obj,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    def allgather(self, obj: Any) -> List[Any]:
        t0 = time.perf_counter()
        out = self._comm.allgather(obj)
        others = sum(
            payload_nbytes(item)
            for peer, item in enumerate(out)
            if peer != self._comm.rank
        )
        self._record(
            "allgather",
            payload_nbytes(obj) + others,
            obj=obj,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        t0 = time.perf_counter()
        if self._comm.rank == root:
            sent = 0
            if objs is not None:
                sent = sum(
                    payload_nbytes(item)
                    for peer, item in enumerate(objs)
                    if peer != root
                )
            out = self._comm.scatter(objs, root)
            self._record(
                "scatter",
                sent,
                root=root,
                obj=out,
                t_start=t0,
                duration_s=time.perf_counter() - t0,
            )
            return out
        out = self._comm.scatter(objs, root)
        self._record(
            "scatter",
            payload_nbytes(out),
            root=root,
            obj=out,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    def gatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        t0 = time.perf_counter()
        if self._comm.rank == root:
            stacked = self._comm.gatherv_rows(sendbuf, root, out=out)
            assert stacked is not None
            self._record(
                "gatherv",
                max(payload_nbytes(stacked) - payload_nbytes(sendbuf), 0),
                root=root,
                obj=sendbuf,
                t_start=t0,
                duration_s=time.perf_counter() - t0,
            )
            return stacked
        result = self._comm.gatherv_rows(sendbuf, root, out=out)
        self._record(
            "gatherv",
            payload_nbytes(sendbuf),
            root=root,
            obj=sendbuf,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return result

    def scatterv_rows(
        self, sendbuf: Optional[np.ndarray], counts: Sequence[int], root: int = 0
    ) -> np.ndarray:
        t0 = time.perf_counter()
        out = self._comm.scatterv_rows(sendbuf, counts, root)
        duration = time.perf_counter() - t0
        if self._comm.rank == root:
            sent = payload_nbytes(sendbuf) - payload_nbytes(out) if sendbuf is not None else 0
            self._record(
                "scatterv",
                max(sent, 0),
                root=root,
                obj=out,
                t_start=t0,
                duration_s=duration,
            )
        else:
            self._record(
                "scatterv",
                payload_nbytes(out),
                root=root,
                obj=out,
                t_start=t0,
                duration_s=duration,
            )
        return out

    def reduce(self, obj: Any, op: ReduceOp, root: int = 0) -> Any:
        t0 = time.perf_counter()
        if self._comm.rank == root:
            out = self._comm.reduce(obj, op, root)
            self._record(
                "reduce",
                payload_nbytes(obj) * (self._comm.size - 1),
                root=root,
                obj=obj,
                t_start=t0,
                duration_s=time.perf_counter() - t0,
            )
            return out
        result = self._comm.reduce(obj, op, root)
        self._record(
            "reduce",
            payload_nbytes(obj),
            root=root,
            obj=obj,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return result

    def allreduce(
        self, obj: Any, op: ReduceOp, out: Optional[np.ndarray] = None
    ) -> Any:
        t0 = time.perf_counter()
        result = self._comm.allreduce(obj, op, out=out)
        self._record(
            "allreduce",
            payload_nbytes(obj) * 2,
            obj=obj,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return result

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        sent = sum(
            payload_nbytes(item)
            for peer, item in enumerate(objs)
            if peer != self._comm.rank
        )
        t0 = time.perf_counter()
        out = self._comm.alltoall(objs)
        duration = time.perf_counter() - t0
        received = sum(
            payload_nbytes(item)
            for peer, item in enumerate(out)
            if peer != self._comm.rank
        )
        self._record(
            "alltoall",
            sent + received,
            obj=objs[self._comm.rank],
            t_start=t0,
            duration_s=duration,
        )
        return out

    def scan(self, obj: Any, op: ReduceOp) -> Any:
        t0 = time.perf_counter()
        out = self._comm.scan(obj, op)
        # up: own contribution; down: the received prefix
        self._record(
            "scan",
            payload_nbytes(obj) + payload_nbytes(out),
            obj=obj,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    def exscan(self, obj: Any, op: ReduceOp) -> Any:
        t0 = time.perf_counter()
        out = self._comm.exscan(obj, op)
        self._record(
            "exscan",
            payload_nbytes(obj) + payload_nbytes(out),
            obj=obj,
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    def reduce_scatter(self, objs: Sequence[Any], op: ReduceOp) -> Any:
        sent = sum(
            payload_nbytes(item)
            for peer, item in enumerate(objs)
            if peer != self._comm.rank
        )
        t0 = time.perf_counter()
        out = self._comm.reduce_scatter(objs, op)
        self._record(
            "reduce_scatter",
            sent + payload_nbytes(out),
            obj=objs[self._comm.rank],
            t_start=t0,
            duration_s=time.perf_counter() - t0,
        )
        return out

    # -- nonblocking collectives ----------------------------------------------
    # Send-side bytes are recorded at call time (they are known and the
    # traffic is already in flight); receive-side bytes are recorded when
    # the returned request completes, under the blocking op's name.

    def ibcast(self, obj: Any, root: int = 0):
        if self._comm.rank == root:
            self._record(
                "bcast",
                payload_nbytes(obj) * (self._comm.size - 1),
                root=root,
                obj=obj,
            )
            return self._comm.ibcast(obj, root)
        return _TracedRequest(
            self._comm.ibcast(obj, root),
            lambda result, t0, dt: self._record(
                "bcast",
                payload_nbytes(result),
                root=root,
                obj=result,
                t_start=t0,
                duration_s=dt,
            ),
        )

    def igatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ):
        if self._comm.rank != root:
            self._record(
                "gatherv", payload_nbytes(sendbuf), root=root, obj=sendbuf
            )
            return self._comm.igatherv_rows(sendbuf, root, out=out)
        own = payload_nbytes(sendbuf)
        return _TracedRequest(
            self._comm.igatherv_rows(sendbuf, root, out=out),
            lambda result, t0, dt: self._record(
                "gatherv",
                max(payload_nbytes(result) - own, 0),
                root=root,
                obj=sendbuf,
                t_start=t0,
                duration_s=dt,
            ),
        )

    def iallreduce(
        self, obj: Any, op: ReduceOp, out: Optional[np.ndarray] = None
    ):
        self._record("allreduce", payload_nbytes(obj) * 2, obj=obj)
        return self._comm.iallreduce(obj, op, out=out)

    def ialltoall(self, objs: Sequence[Any]):
        sent = sum(
            payload_nbytes(item)
            for peer, item in enumerate(objs)
            if peer != self._comm.rank
        )
        self._record("alltoall", sent, obj=objs[self._comm.rank])
        rank = self._comm.rank
        return _TracedRequest(
            self._comm.ialltoall(objs),
            lambda result, t0, dt: self._record(
                "alltoall",
                sum(
                    payload_nbytes(item)
                    for peer, item in enumerate(result)
                    if peer != rank
                ),
                t_start=t0,
                duration_s=dt,
            ),
        )

    def iprobe(self, source: int = -1, tag: int = -1) -> bool:
        # probing moves no data; not recorded
        return self._comm.iprobe(source, tag)

    def barrier(self) -> None:
        t0 = time.perf_counter()
        self._comm.barrier()
        self._record(
            "barrier", 0, t_start=t0, duration_s=time.perf_counter() - t0
        )

    # -- uppercase buffer ops (delegate; account like their lowercase kin) --
    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        self._record("send", payload_nbytes(buf), peer=dest)
        self._comm.Send(buf, dest, tag)

    def Recv(self, buf: np.ndarray, source: int = -1, tag: int = -1) -> None:
        self._comm.Recv(buf, source, tag)
        self._record("recv", payload_nbytes(buf), peer=source)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        if self._comm.rank == root:
            self._record(
                "bcast",
                payload_nbytes(buf) * (self._comm.size - 1),
                root=root,
                obj=buf,
            )
        else:
            self._record("bcast", payload_nbytes(buf), root=root, obj=buf)
        self._comm.Bcast(buf, root)

    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        if self._comm.rank == root:
            self._record(
                "gather",
                payload_nbytes(sendbuf) * (self._comm.size - 1),
                root=root,
                obj=sendbuf,
            )
        else:
            self._record(
                "gather", payload_nbytes(sendbuf), root=root, obj=sendbuf
            )
        self._comm.Gather(sendbuf, recvbuf, root)

    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        if self._comm.rank == root:
            self._record(
                "scatter",
                payload_nbytes(recvbuf) * (self._comm.size - 1),
                root=root,
                obj=recvbuf,
            )
        else:
            self._record(
                "scatter", payload_nbytes(recvbuf), root=root, obj=recvbuf
            )
        self._comm.Scatter(sendbuf, recvbuf, root)

    def Allgather(self, sendbuf, recvbuf) -> None:
        self._comm.Allgather(sendbuf, recvbuf)
        own = payload_nbytes(sendbuf)
        self._record(
            "allgather", payload_nbytes(recvbuf) - own + own, obj=sendbuf
        )

    def Allreduce(self, sendbuf, recvbuf, op: ReduceOp) -> None:
        self._comm.Allreduce(sendbuf, recvbuf, op)
        self._record("allreduce", payload_nbytes(sendbuf) * 2, obj=sendbuf)

    # -- management -----------------------------------------------------------
    def split(self, color: Optional[int], key: int = 0):
        sub = self._comm.split(color, key)
        if sub is None:
            return None
        return CommTracer(sub)

    def dup(self) -> "CommTracer":
        return CommTracer(self._comm.dup())

    # -- reporting --------------------------------------------------------------
    def summary(self) -> TrafficSummary:
        """Aggregate events/bytes recorded so far on this rank."""
        return TrafficSummary.from_records(self.records)

    def schedule(self) -> List[CommRecord]:
        """This rank's *collective* op stream, in issue order.

        The SPMD contract requires every rank to produce the same stream
        (same kinds, same order, compatible roots/dtypes); the cross-rank
        conformance checker (:mod:`repro.verify.schedule`) aligns these
        per-rank streams and reports the first divergence.  Point-to-point
        traffic is excluded — it legitimately differs per rank.  Caveat:
        receive-side *nonblocking* collectives record at completion time,
        so heavily overlapped runs can reorder records relative to issue
        order; the checker is exact for blocking-dominant schedules.
        """
        return [r for r in self.records if r.op in COLLECTIVE_OPS]

    def reset(self) -> None:
        """Discard all records (e.g. between benchmark phases)."""
        self.records.clear()

    def bytes_for(self, op: str) -> int:
        """Total bytes recorded under operation name ``op``."""
        return sum(r.nbytes for r in self.records if r.op == op)
