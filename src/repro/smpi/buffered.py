"""mpi4py-style uppercase (buffer) operations.

mpi4py distinguishes lowercase pickle-based methods (``comm.send``) from
uppercase buffer methods (``comm.Send``) that transfer NumPy arrays
in-place, without pickling, into a caller-provided receive buffer.  The
hpc-parallel guide calls the latter "the fast way"; real codes use them for
all bulk numeric traffic.

This module adds the uppercase subset as a mixin used by
:class:`~repro.smpi.communicator.Communicator`:

``Send/Recv/Bcast/Gather/Scatter/Allreduce/Allgather``

Semantics mirrored from MPI:

* receive buffers must be C-contiguous NumPy arrays, pre-sized by the
  caller; dtype and element count are checked at delivery;
* ``Recv`` fills the buffer in place and returns ``None``;
* root buffers for ``Gather`` have shape ``(size, *sendbuf.shape)``
  (mpi4py's convention for equal contributions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .exceptions import SmpiError
from .reduction import ReduceOp

__all__ = ["BufferedOpsMixin"]


def _require_buffer(buf: np.ndarray, name: str) -> np.ndarray:
    if not isinstance(buf, np.ndarray):
        raise SmpiError(f"{name} must be a numpy array, got {type(buf).__name__}")
    if not buf.flags.c_contiguous:
        raise SmpiError(f"{name} must be C-contiguous")
    return buf


def _check_match(recvbuf: np.ndarray, payload: np.ndarray, what: str) -> None:
    if recvbuf.dtype != payload.dtype:
        raise SmpiError(
            f"{what}: buffer dtype {recvbuf.dtype} != message dtype "
            f"{payload.dtype}"
        )
    if recvbuf.size != payload.size:
        raise SmpiError(
            f"{what}: buffer has {recvbuf.size} elements, message has "
            f"{payload.size}"
        )


class BufferedOpsMixin:
    """Uppercase buffer-mode operations, layered on the object transport.

    The in-process transport already moves array payloads with a single
    copy, so buffer mode here is about *API compatibility and in-place
    delivery semantics*, not a separate wire format.
    """

    # the mixin relies on the host class's lowercase primitives
    rank: int
    size: int

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Send a contiguous array (buffer mode)."""
        buf = _require_buffer(buf, "sendbuf")
        self.send(buf, dest, tag)  # type: ignore[attr-defined]

    def Recv(
        self, buf: np.ndarray, source: int = -1, tag: int = -1
    ) -> None:
        """Receive into ``buf`` in place; shape/dtype are validated."""
        buf = _require_buffer(buf, "recvbuf")
        payload = self.recv(source, tag)  # type: ignore[attr-defined]
        payload = np.asarray(payload)
        _check_match(buf, payload, "Recv")
        buf.reshape(-1)[:] = payload.reshape(-1)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        """Broadcast ``buf`` from ``root`` into every rank's ``buf``."""
        buf = _require_buffer(buf, "buf")
        if self.rank == root:
            self.bcast(buf, root)  # type: ignore[attr-defined]
        else:
            payload = np.asarray(self.bcast(None, root))  # type: ignore[attr-defined]
            _check_match(buf, payload, "Bcast")
            buf.reshape(-1)[:] = payload.reshape(-1)

    def Gather(
        self,
        sendbuf: np.ndarray,
        recvbuf: Optional[np.ndarray],
        root: int = 0,
    ) -> None:
        """Gather equal-size contributions into ``recvbuf`` at ``root``.

        ``recvbuf`` must have shape ``(size, *sendbuf.shape)`` at the root
        and may be ``None`` elsewhere.
        """
        sendbuf = _require_buffer(sendbuf, "sendbuf")
        gathered = self.gather(sendbuf, root)  # type: ignore[attr-defined]
        if self.rank != root:
            return
        if recvbuf is None:
            raise SmpiError("Gather root requires a receive buffer")
        recvbuf = _require_buffer(recvbuf, "recvbuf")
        expected = (self.size,) + sendbuf.shape
        if recvbuf.shape != expected:
            raise SmpiError(
                f"Gather recvbuf shape {recvbuf.shape} != expected {expected}"
            )
        for i, piece in enumerate(gathered):
            piece = np.asarray(piece)
            _check_match(recvbuf[i], piece, "Gather")
            recvbuf[i].reshape(-1)[:] = piece.reshape(-1)

    def Scatter(
        self,
        sendbuf: Optional[np.ndarray],
        recvbuf: np.ndarray,
        root: int = 0,
    ) -> None:
        """Scatter equal slices of ``sendbuf`` (shape ``(size, ...)``) into
        each rank's ``recvbuf``."""
        recvbuf = _require_buffer(recvbuf, "recvbuf")
        if self.rank == root:
            if sendbuf is None:
                raise SmpiError("Scatter root requires a send buffer")
            sendbuf = _require_buffer(sendbuf, "sendbuf")
            if sendbuf.shape[0] != self.size:
                raise SmpiError(
                    f"Scatter sendbuf leading dim {sendbuf.shape[0]} != "
                    f"size {self.size}"
                )
            pieces = [np.ascontiguousarray(sendbuf[i]) for i in range(self.size)]
        else:
            pieces = None
        piece = np.asarray(self.scatter(pieces, root))  # type: ignore[attr-defined]
        _check_match(recvbuf, piece, "Scatter")
        recvbuf.reshape(-1)[:] = piece.reshape(-1)

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """Allgather equal contributions into ``recvbuf`` of shape
        ``(size, *sendbuf.shape)`` on every rank."""
        sendbuf = _require_buffer(sendbuf, "sendbuf")
        recvbuf = _require_buffer(recvbuf, "recvbuf")
        expected = (self.size,) + sendbuf.shape
        if recvbuf.shape != expected:
            raise SmpiError(
                f"Allgather recvbuf shape {recvbuf.shape} != expected "
                f"{expected}"
            )
        gathered = self.allgather(sendbuf)  # type: ignore[attr-defined]
        for i, piece in enumerate(gathered):
            piece = np.asarray(piece)
            _check_match(recvbuf[i], piece, "Allgather")
            recvbuf[i].reshape(-1)[:] = piece.reshape(-1)

    def Allreduce(
        self, sendbuf: np.ndarray, recvbuf: np.ndarray, op: ReduceOp
    ) -> None:
        """Elementwise reduction of ``sendbuf`` across ranks into
        ``recvbuf`` on every rank."""
        sendbuf = _require_buffer(sendbuf, "sendbuf")
        recvbuf = _require_buffer(recvbuf, "recvbuf")
        reduced = np.asarray(self.allreduce(sendbuf, op))  # type: ignore[attr-defined]
        _check_match(recvbuf, reduced, "Allreduce")
        recvbuf.reshape(-1)[:] = reduced.reshape(-1)
