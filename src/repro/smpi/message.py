"""Message envelopes and payload copy semantics.

MPI has *value* semantics: the bytes on the wire are a snapshot of the send
buffer at send time, and mutating the buffer afterwards must not affect the
receiver.  A naive in-process implementation that passes object references
would silently violate this, so every payload is deep-copied at send time
(:func:`copy_payload`), with a fast path for NumPy arrays.

Envelopes carry ``(source, tag, payload, nbytes)``; ``nbytes`` is the
estimated wire size used by the traffic tracer and the scaling cost model.
"""

from __future__ import annotations

import copy
import dataclasses
import pickle
from typing import Any

import numpy as np

__all__ = ["Envelope", "copy_payload", "payload_nbytes"]


def copy_payload(obj: Any) -> Any:
    """Deep-copy ``obj`` with a fast path for NumPy arrays.

    Immutable scalars (int, float, complex, bool, str, bytes, None) are
    returned as-is; arrays are copied with ``np.array(..., copy=True)``;
    containers holding arrays fall back to :func:`copy.deepcopy`, which
    handles arrays correctly via their ``__deepcopy__``.
    """
    if obj is None or isinstance(obj, (int, float, complex, bool, str, bytes)):
        return obj
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    return copy.deepcopy(obj)


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes.

    NumPy arrays report their buffer size (what MPI would transfer for
    buffer-mode sends); everything else is sized by its pickle, mirroring
    mpi4py's lowercase pickle-based transport.  Sizing failures degrade to 0
    rather than breaking communication — the estimate only feeds accounting.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if isinstance(obj, (int, float, complex, bool)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


@dataclasses.dataclass
class Envelope:
    """One in-flight message: source rank, tag, copied payload, wire size."""

    source: int
    tag: int
    payload: Any
    nbytes: int

    @classmethod
    def make(cls, source: int, tag: int, payload: Any) -> "Envelope":
        """Snapshot ``payload`` and size it, producing a sendable envelope."""
        copied = copy_payload(payload)
        return cls(
            source=source, tag=tag, payload=copied, nbytes=payload_nbytes(copied)
        )

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope satisfy a ``recv(source, tag)`` with wildcard
        support?  Wildcards are encoded as ``-1`` (ANY_SOURCE / ANY_TAG)."""
        source_ok = source == -1 or source == self.source
        tag_ok = tag == -1 or tag == self.tag
        return source_ok and tag_ok
