"""Message envelopes and payload copy semantics.

MPI has *value* semantics: the bytes on the wire are a snapshot of the send
buffer at send time, and mutating the buffer afterwards must not affect the
receiver.  A naive in-process implementation that passes object references
would silently violate this, so every payload is deep-copied at send time
(:func:`copy_payload`), with a fast path for NumPy arrays.

Two fast lanes keep the snapshot cost off the streaming hot path:

* **read-only arrays are shared, not copied** — an ndarray with
  ``writeable=False`` is already an immutable snapshot, so
  :func:`copy_payload` returns it as-is.  :func:`freeze_payload` produces
  such snapshots (one copy, then ``arr.flags.writeable = False``), which is
  how a broadcast root pays for *one* copy shared by all ``p - 1``
  envelopes instead of ``p - 1`` deep copies;
* **wire sizes are computed lazily** — ``Envelope.nbytes`` walks the
  payload only when something (the traffic tracer, the cost model) actually
  reads it, so untraced runs never pay for the recursive sizing walk;
* **envelope shells are pooled** — delivered envelopes return their
  (payload-stripped) shell to a bounded arena (:class:`EnvelopePool`), so
  a steady-state streaming loop's request churn allocates no envelope
  objects at all.  Consumers release shells through :func:`take_payload`;
  anything still *referenced* (e.g. a ``peek``-ed envelope) is simply
  never released.
"""

from __future__ import annotations

import copy
import pickle
import threading
from typing import Any, List, Tuple

import numpy as np

from .provenance import TRACKER

__all__ = [
    "Envelope",
    "EnvelopePool",
    "ENVELOPE_POOL",
    "copy_payload",
    "freeze_payload",
    "payload_nbytes",
    "take_payload",
]


def _is_immutable_snapshot(arr: np.ndarray) -> bool:
    """Is ``arr`` safe to share without copying?

    Read-only is necessary but not sufficient: a ``writeable=False`` *view*
    of a writable base (``np.broadcast_to``, a flag-frozen slice) still
    changes when the base is mutated, so sharing it would leak sender
    mutations to receivers.  Only read-only arrays that own their buffer
    (``base is None`` — e.g. :func:`freeze_payload` snapshots) qualify.
    """
    return not arr.flags.writeable and arr.base is None


def copy_payload(obj: Any) -> Any:
    """Deep-copy ``obj`` with a fast path for NumPy arrays.

    Immutable scalars (int, float, complex, bool, str, bytes, None) are
    returned as-is; *immutable-snapshot* arrays (read-only and owning
    their buffer, e.g. produced by :func:`freeze_payload`) are also
    returned as-is; every other array is copied with
    ``np.array(..., copy=True)``; containers holding arrays fall back to
    :func:`copy.deepcopy`, which handles arrays correctly via their
    ``__deepcopy__``.
    """
    if obj is None or isinstance(obj, (int, float, complex, bool, str, bytes)):
        return obj
    if isinstance(obj, np.ndarray):
        if _is_immutable_snapshot(obj):
            return obj
        return np.array(obj, copy=True)
    if isinstance(obj, tuple):
        # Recurse so tuple members keep the array fast paths: a tuple of
        # pre-frozen arrays (e.g. a pipelined TSQR reply) is snapshotted
        # by *sharing* its immutable members instead of deep-copying them.
        return tuple(copy_payload(item) for item in obj)
    if isinstance(obj, list):
        # A fresh list of snapshotted items preserves value semantics:
        # neither side's container mutations reach the other.
        return [copy_payload(item) for item in obj]
    return copy.deepcopy(obj)


def freeze_payload(obj: Any) -> Tuple[Any, bool]:
    """Produce an immutable snapshot of ``obj`` safe to *share* across
    receivers, if possible.

    Returns ``(snapshot, shareable)``.  When ``shareable`` is true the
    snapshot is immutable all the way down — scalars, read-only arrays
    (``writeable=False``), and tuples thereof — so a single object can back
    every receiver's envelope without breaking value semantics: the sender
    mutating its original cannot reach the snapshot, and no receiver can
    mutate what it got.  When ``shareable`` is false (mutable containers,
    arbitrary objects) the caller must fall back to one
    :func:`copy_payload` per receiver.
    """
    if obj is None or isinstance(obj, (int, float, complex, bool, str, bytes)):
        return obj, True
    if isinstance(obj, np.ndarray):
        if _is_immutable_snapshot(obj):
            # Already an immutable snapshot (e.g. re-broadcast of a
            # previously frozen payload) — share it outright.  Read-only
            # *views* of writable bases do NOT qualify and are copied.
            return obj, True
        frozen = np.array(obj, copy=True)
        frozen.flags.writeable = False
        return frozen, True
    if isinstance(obj, tuple):
        items = []
        for item in obj:
            frozen, shareable = freeze_payload(item)
            if not shareable:
                return obj, False
            items.append(frozen)
        return tuple(items), True
    return obj, False


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes.

    NumPy arrays report their buffer size (what MPI would transfer for
    buffer-mode sends); everything else is sized by its pickle, mirroring
    mpi4py's lowercase pickle-based transport.  Sizing failures degrade to 0
    rather than breaking communication — the estimate only feeds accounting.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if isinstance(obj, (int, float, complex, bool)):
        return 8
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 0


class Envelope:
    """One in-flight message: source rank, tag, copied payload.

    ``nbytes`` (the estimated wire size used by the traffic tracer and the
    scaling cost model) is computed lazily on first read and cached — an
    untraced run never walks the payload just to size it.
    """

    __slots__ = ("source", "tag", "payload", "_nbytes", "__weakref__")

    def __init__(self, source: int, tag: int, payload: Any) -> None:
        self.source = source
        self.tag = tag
        self.payload = payload
        self._nbytes: Any = None

    @property
    def nbytes(self) -> int:
        """Estimated wire size of the payload (lazy, cached)."""
        if self._nbytes is None:
            self._nbytes = payload_nbytes(self.payload)
        return self._nbytes

    @classmethod
    def make(cls, source: int, tag: int, payload: Any) -> "Envelope":
        """Snapshot ``payload``, producing a sendable envelope (shell drawn
        from the arena pool)."""
        return ENVELOPE_POOL.acquire(source, tag, copy_payload(payload))

    @classmethod
    def presnapshotted(cls, source: int, tag: int, payload: Any) -> "Envelope":
        """Wrap an *already snapshotted* payload (no copy).

        The caller vouches that ``payload`` is safe to hand to the receiver
        without copying — e.g. a :func:`freeze_payload` snapshot shared by
        every receiver of a broadcast.
        """
        return ENVELOPE_POOL.acquire(source, tag, payload)

    def matches(self, source: int, tag: int) -> bool:
        """Does this envelope satisfy a ``recv(source, tag)`` with wildcard
        support?  Wildcards are encoded as ``-1`` (ANY_SOURCE / ANY_TAG)."""
        source_ok = source == -1 or source == self.source
        tag_ok = tag == -1 or tag == self.tag
        return source_ok and tag_ok

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Envelope(source={self.source}, tag={self.tag}, "
            f"payload={type(self.payload).__name__})"
        )


class EnvelopePool:
    """Bounded arena of recycled :class:`Envelope` shells.

    The threads transport creates one envelope per message; on the
    streaming hot path that is pure churn — the shell carries three slots
    and dies the moment the payload is extracted.  The pool keeps up to
    ``capacity`` dead shells on a lock-protected freelist and reinitialises
    them on :meth:`acquire`, so steady-state request traffic allocates no
    envelope objects.  Payload references are dropped at :meth:`release`
    time (a pooled shell never pins an array).
    """

    def __init__(self, capacity: int = 512) -> None:
        self._lock = threading.Lock()
        self._free: List[Envelope] = []
        self._capacity = int(capacity)

    def acquire(self, source: int, tag: int, payload: Any) -> Envelope:
        """A (re)initialised envelope carrying ``payload`` as-is (the
        caller has already applied the copy/snapshot policy)."""
        with self._lock:
            envelope = self._free.pop() if self._free else None
        if envelope is None:
            envelope = Envelope(source, tag, payload)
        else:
            envelope.source = source
            envelope.tag = tag
            envelope.payload = payload
            envelope._nbytes = None
        # Leak-detection hook: while provenance tracking is enabled
        # (repro.verify leak scopes), every envelope leaving the arena is
        # registered so shutdown reports can name sent-but-never-consumed
        # messages with their creation site.  Disabled, this is one
        # attribute check.
        if TRACKER.enabled:
            TRACKER.note_envelope(envelope)
        return envelope

    def release(self, envelope: Envelope) -> None:
        """Return a delivered envelope's shell to the arena.

        The caller must own the envelope (taken via ``get``/``poll``, not
        ``peek``) and must have extracted the payload already.
        """
        if TRACKER.enabled:
            TRACKER.forget_envelope(envelope)
        envelope.payload = None
        envelope._nbytes = None
        with self._lock:
            if len(self._free) < self._capacity:
                self._free.append(envelope)

    def __len__(self) -> int:
        with self._lock:
            return len(self._free)


#: Process-wide shell arena shared by every threads-backend world.
ENVELOPE_POOL = EnvelopePool()


def take_payload(envelope: Envelope) -> Any:
    """Extract a delivered envelope's payload and recycle its shell.

    The single helper every consuming call site uses, so ownership rules
    (release exactly once, never release a ``peek``-ed envelope) live in
    one place.
    """
    payload = envelope.payload
    ENVELOPE_POOL.release(envelope)
    return payload
