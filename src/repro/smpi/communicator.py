"""Communicators: point-to-point and collective operations.

The public surface mirrors mpi4py's lowercase ("generic object") methods,
which is what the paper's listings use::

    wglobal = comm.gather(wlocal, root=0)
    x = comm.bcast(x, root=0)
    comm.send(block, dest=rank, tag=rank + 10)
    qpiece = comm.recv(source=0, tag=comm.rank + 10)

Collectives are deliberately implemented *on top of* point-to-point sends so
that (a) there is a single, well-tested delivery path and (b) a traffic
tracer wrapping the communicator sees exactly the bytes the algorithm moves.

Semantics guaranteed (and exercised by the test suite):

* value semantics — payloads are snapshotted at send time; mutating a sent
  array never affects the receiver;
* non-overtaking delivery per ``(source, tag)`` pair;
* deterministic reduction order (rank-ascending left fold);
* context isolation — ``split``/``dup`` communicators never cross-match
  traffic with their parent.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .buffered import BufferedOpsMixin
from .derived import DerivedCollectivesMixin, rows_output_buffer
from .exceptions import RankError, SmpiError, TagError
from .mailbox import DEFAULT_TIMEOUT
from .message import Envelope, copy_payload, freeze_payload, take_payload
from .nonblocking import NonblockingCollectivesMixin
from .reduction import ReduceOp
from .request import RecvRequest, SendRequest
from .world import World

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "SelfComm"]

#: Wildcard source for ``recv`` (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for ``recv`` (matches any tag).
ANY_TAG = -1

# Internal tag space for collective plumbing.  User tags must be >= 0, so
# negative tags can never collide with application traffic.
_TAG_BCAST = -10
_TAG_GATHER = -11
_TAG_SCATTER = -12
_TAG_BARRIER_IN = -13
_TAG_BARRIER_OUT = -14
_TAG_ALLTOALL = -15
_TAG_SPLIT = -16
_TAG_SENDRECV = -17
_TAG_GATHERV = -18


class Communicator(
    NonblockingCollectivesMixin, DerivedCollectivesMixin, BufferedOpsMixin
):
    """A group of ranks that can exchange messages within one context.

    Each SPMD thread holds its *own* ``Communicator`` instance; instances of
    the same group/context share mailboxes through the :class:`World`.

    Attributes
    ----------
    rank:
        This process's rank within the communicator, ``0 <= rank < size``.
    size:
        Number of ranks in the communicator.
    """

    def __init__(
        self,
        world: World,
        context: int,
        group: Sequence[int],
        rank: int,
    ) -> None:
        group = tuple(int(g) for g in group)
        if len(set(group)) != len(group):
            raise SmpiError(f"group contains duplicate world ranks: {group}")
        if not (0 <= rank < len(group)):
            raise RankError(f"rank {rank} outside group of size {len(group)}")
        self._world = world
        self._context = context
        self._group = group
        self.rank = rank
        self.size = len(group)

    # -- mpi4py-style accessors ------------------------------------------
    def Get_rank(self) -> int:
        """mpi4py-compatible alias for :attr:`rank`."""
        return self.rank

    def Get_size(self) -> int:
        """mpi4py-compatible alias for :attr:`size`."""
        return self.size

    # -- health plumbing ---------------------------------------------------
    @property
    def world(self) -> World:
        """The shared :class:`World` backing this communicator — the
        attachment point for heartbeat/health monitoring."""
        return self._world

    @property
    def world_rank(self) -> int:
        """This rank's world rank (identity on the world communicator)."""
        return self._group[self.rank]

    # -- helpers -----------------------------------------------------------
    def _check_peer(self, peer: int, what: str) -> None:
        if not (0 <= peer < self.size):
            raise RankError(
                f"{what} rank {peer} outside [0, {self.size}) "
                f"on communicator of size {self.size}"
            )

    def _check_tag(self, tag: int) -> None:
        if tag < 0:
            raise TagError(
                f"user tags must be nonnegative (negative tags are reserved "
                f"for collectives), got {tag}"
            )

    def _mailbox_of(self, comm_rank: int):
        return self._world.mailbox(self._context, self._group[comm_rank])

    def _post(self, dest: int, tag: int, payload: Any) -> None:
        envelope = Envelope.make(source=self.rank, tag=tag, payload=payload)
        self._mailbox_of(dest).put(envelope)

    def _take(self, source: int, tag: int) -> Any:
        envelope = self._mailbox_of(self.rank).get(source, tag)
        return take_payload(envelope)

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send of a generic object (buffered; returns immediately)."""
        self._check_peer(dest, "dest")
        self._check_tag(tag)
        self._post(dest, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; wildcards :data:`ANY_SOURCE` / :data:`ANY_TAG`."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        if tag != ANY_TAG:
            self._check_tag(tag)
        return self._take(source, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> SendRequest:
        """Nonblocking send; the returned request is already complete."""
        self.send(obj, dest, tag)
        return SendRequest()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Nonblocking receive; complete it with ``wait()`` or ``test()``."""
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        if tag != ANY_TAG:
            self._check_tag(tag)
        return RecvRequest(self._mailbox_of(self.rank), source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int) -> Any:
        """Combined send+receive (deadlock-free by construction here)."""
        self._check_peer(dest, "dest")
        self._check_peer(source, "source")
        self._post(dest, _TAG_SENDRECV, obj)
        return self._take(source, _TAG_SENDRECV)

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking probe: is a matching message already queued?

        Unlike ``recv`` this does not consume the message.
        """
        if source != ANY_SOURCE:
            self._check_peer(source, "source")
        if tag != ANY_TAG:
            self._check_tag(tag)
        return self._mailbox_of(self.rank).peek(source, tag) is not None

    # -- collectives ---------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value.

        The root returns its own object unchanged (as mpi4py does); other
        ranks receive an independent snapshot.

        Snapshot-once fast lane: array (and tuple-of-array) payloads are
        frozen *once* (one copy, ``writeable=False``) and that immutable
        snapshot is shared by all ``p - 1`` envelopes — instead of one deep
        copy per peer.  Value semantics hold because neither the root
        (which keeps its original) nor any receiver (the snapshot is
        read-only) can mutate what the others observe.  Payloads that
        cannot be frozen (mutable containers, arbitrary objects) fall back
        to the per-peer deep copy.
        """
        self._check_peer(root, "root")
        if self.size == 1:
            return obj
        if self.rank == root:
            snapshot, shareable = freeze_payload(obj)
            for peer in range(self.size):
                if peer != root:
                    if shareable:
                        envelope = Envelope.presnapshotted(
                            self.rank, _TAG_BCAST, snapshot
                        )
                    else:
                        envelope = Envelope.make(self.rank, _TAG_BCAST, obj)
                    self._mailbox_of(peer).put(envelope)
            return obj
        return self._take(root, _TAG_BCAST)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Gather one object per rank into a rank-ordered list at ``root``.

        Non-root ranks return ``None``, as in mpi4py.
        """
        self._check_peer(root, "root")
        if self.size == 1:
            return [obj]
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = obj
            for peer in range(self.size):
                if peer != root:
                    envelope = self._mailbox_of(self.rank).get(peer, _TAG_GATHER)
                    out[peer] = take_payload(envelope)
            return out
        self._post(root, _TAG_GATHER, obj)
        return None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather to rank 0 then broadcast: every rank gets the full list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Optional[Sequence[Any]], root: int = 0) -> Any:
        """Scatter ``objs[i]`` from ``root`` to rank ``i``; returns own item."""
        self._check_peer(root, "root")
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                got = "None" if objs is None else str(len(objs))
                raise SmpiError(
                    f"scatter root needs exactly {self.size} items, got {got}"
                )
            for peer in range(self.size):
                if peer != root:
                    self._post(peer, _TAG_SCATTER, objs[peer])
            return objs[root]
        return self._take(root, _TAG_SCATTER)

    # (scatterv_rows / reduce / allreduce / scan / exscan / reduce_scatter
    # come from DerivedCollectivesMixin; gatherv_rows is overridden below
    # with a zero-copy assembly path.)

    def gatherv_rows(
        self,
        sendbuf: np.ndarray,
        root: int = 0,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Gather per-rank row blocks, assembled directly into one buffer.

        Fast-lane override of the generic mixin implementation: row counts
        are exchanged once (a tiny int gather), the root allocates — or
        reuses the caller-provided ``out`` — the full ``(sum_i M_i, n)``
        result, and every remote block is copied straight from its envelope
        snapshot into the right row slice.  No list of blocks is held and
        no ``np.concatenate`` re-copy happens; with ``out`` reuse a
        streaming loop's repeated assemblies allocate nothing at all.
        """
        self._check_peer(root, "root")
        arr = np.asarray(sendbuf)
        if arr.ndim != 2:
            raise SmpiError(
                f"gatherv_rows expects a 2-D row block, got ndim={arr.ndim}"
            )
        # One tiny header gather carries each block's row count and dtype:
        # the root sizes (and dtype-promotes, matching the generic mixin /
        # np.concatenate behavior) the output before any block arrives.
        headers = self.gather((int(arr.shape[0]), arr.dtype.str), root=root)
        if self.rank != root:
            self._post(root, _TAG_GATHERV, arr)
            return None
        assert headers is not None
        counts = [count for count, _ in headers]
        total = int(sum(counts))
        dtype = np.result_type(*[np.dtype(d) for _, d in headers])
        out = rows_output_buffer(total, arr.shape[1], dtype, out)
        offsets = [0]
        for count in counts:
            offsets.append(offsets[-1] + count)
        out[offsets[root] : offsets[root + 1]] = arr
        for peer in range(self.size):
            if peer == root:
                continue
            envelope = self._mailbox_of(self.rank).get(peer, _TAG_GATHERV)
            block = np.asarray(take_payload(envelope))
            if block.shape != (counts[peer], arr.shape[1]):
                raise SmpiError(
                    f"gatherv_rows: rank {peer} announced "
                    f"{counts[peer]} x {arr.shape[1]} rows but sent "
                    f"{block.shape}"
                )
            out[offsets[peer] : offsets[peer + 1]] = block
        return out

    def alltoall(self, objs: Sequence[Any]) -> List[Any]:
        """Personalised all-to-all: send ``objs[j]`` to rank ``j``; receive
        one object from every rank, rank-ordered."""
        if len(objs) != self.size:
            raise SmpiError(
                f"alltoall needs exactly {self.size} items, got {len(objs)}"
            )
        for peer in range(self.size):
            if peer != self.rank:
                self._post(peer, _TAG_ALLTOALL, objs[peer])
        out: List[Any] = [None] * self.size
        # Self-delivery: one snapshot preserves value semantics without the
        # envelope round trip (and, formerly, its eager sizing walk).
        out[self.rank] = copy_payload(objs[self.rank])
        for peer in range(self.size):
            if peer != self.rank:
                envelope = self._mailbox_of(self.rank).get(peer, _TAG_ALLTOALL)
                out[peer] = take_payload(envelope)
        return out

    # -- nonblocking collectives (zero-copy threads posting hooks) -----------
    # The collective protocols come from NonblockingCollectivesMixin; these
    # hooks swap its generic isend/send posting for the threads transport's
    # fast lanes: direct mailbox posts (no request objects to retain — the
    # buffered transport completes sends at post time) and the blocking
    # bcast's freeze-once snapshot sharing for fan-outs.

    def _nb_post(self, obj: Any, dest: int, tag: int) -> None:
        self._post(dest, tag, obj)
        return None

    def _nb_fanout_posted(self, obj: Any, skip: int, tag: int) -> List[Any]:
        self._nb_fanout_deferred(obj, skip, tag)
        return []

    def _nb_fanout_deferred(self, obj: Any, skip: int, tag: int) -> None:
        """Fan ``obj`` out, sharing one frozen snapshot across all
        envelopes when the payload allows it."""
        snapshot, shareable = freeze_payload(obj)
        for peer in range(self.size):
            if peer != skip:
                if shareable:
                    envelope = Envelope.presnapshotted(self.rank, tag, snapshot)
                else:
                    envelope = Envelope.make(self.rank, tag, obj)
                self._mailbox_of(peer).put(envelope)

    def barrier(self) -> None:
        """Synchronise all ranks (fan-in to rank 0, fan-out back)."""
        if self.size == 1:
            return
        if self.rank == 0:
            for peer in range(1, self.size):
                take_payload(
                    self._mailbox_of(self.rank).get(peer, _TAG_BARRIER_IN)
                )
            for peer in range(1, self.size):
                self._post(peer, _TAG_BARRIER_OUT, None)
        else:
            self._post(0, _TAG_BARRIER_IN, None)
            self._take(0, _TAG_BARRIER_OUT)

    # -- communicator management -------------------------------------------
    def split(self, color: Optional[int], key: int = 0) -> Optional["Communicator"]:
        """Partition the communicator by ``color``; order ranks by ``key``.

        Ranks passing ``color=None`` (MPI's ``MPI_UNDEFINED``) receive
        ``None``.  Within each color, ranks are ordered by ``(key, old
        rank)``.  Collective over the parent communicator.
        """
        contributions = self.gather((color, key, self.rank), root=0)
        if self.rank == 0:
            assert contributions is not None
            colors = sorted(
                {c for (c, _, _) in contributions if c is not None}
            )
            contexts = self._world.allocate_contexts(max(len(colors), 1))
            plan = {}
            for context_id, c in zip(contexts, colors):
                members = sorted(
                    (
                        (k, old_rank)
                        for (cc, k, old_rank) in contributions
                        if cc == c
                    )
                )
                group = tuple(self._group[old] for (_, old) in members)
                for new_rank, (_, old) in enumerate(members):
                    plan[old] = (context_id, group, new_rank)
            decided = plan
        else:
            decided = None
        decided = self.bcast(decided, root=0)
        mine = decided.get(self.rank)
        if mine is None:
            return None
        context_id, group, new_rank = mine
        return Communicator(self._world, context_id, group, new_rank)

    def dup(self) -> "Communicator":
        """Duplicate the communicator into a fresh context (same group)."""
        new = self.split(color=0, key=self.rank)
        assert new is not None
        return new

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Communicator(rank={self.rank}, size={self.size}, "
            f"context={self._context})"
        )


class SelfComm(Communicator):
    """A standalone single-rank communicator (MPI's ``COMM_SELF``).

    Lets the parallel algorithms run unmodified with one rank, without an
    executor: every collective degenerates to the identity.
    """

    def __init__(self, timeout: Optional[float] = None) -> None:
        effective = DEFAULT_TIMEOUT if timeout is None else timeout
        super().__init__(
            World(1, timeout=effective), World.WORLD_CONTEXT, (0,), 0
        )
