"""Errors raised by the in-process MPI substitute."""

from __future__ import annotations

from ..exceptions import CommunicatorError

__all__ = [
    "SmpiError",
    "RankError",
    "TagError",
    "DeadlockError",
    "FailedRankError",
]


class SmpiError(CommunicatorError):
    """Base class for smpi errors."""


class RankError(SmpiError):
    """A rank argument is outside ``[0, size)`` or equals the caller where
    self-messaging is disallowed."""


class TagError(SmpiError):
    """A message tag is invalid (negative tags are reserved for internal
    collective plumbing, mirroring MPI's reserved tag space)."""


class DeadlockError(SmpiError):
    """A blocking operation timed out — the communication pattern deadlocked.

    Real MPI would hang; the simulator turns an apparent deadlock into a
    diagnosable failure after a configurable timeout.
    """


class FailedRankError(SmpiError):
    """A peer rank died, so this blocking operation can never complete.

    Distinct from :class:`DeadlockError` — the pattern was fine, a
    participant crashed.  The :class:`~repro.smpi.world.World` records which
    ranks failed (see ``World.fail_rank``) and every blocked receiver is
    woken immediately with this error naming them, instead of spinning out
    the full deadlock timeout.  Recovery layers key on this type to decide
    a restart is worthwhile.

    Attributes
    ----------
    failed_ranks:
        Sorted world ranks known dead when the error was raised.
    """

    def __init__(self, message: str, failed_ranks: tuple = ()) -> None:
        super().__init__(message)
        self.failed_ranks = tuple(sorted(failed_ranks))
