"""Errors raised by the in-process MPI substitute."""

from __future__ import annotations

from ..exceptions import CommunicatorError

__all__ = ["SmpiError", "RankError", "TagError", "DeadlockError"]


class SmpiError(CommunicatorError):
    """Base class for smpi errors."""


class RankError(SmpiError):
    """A rank argument is outside ``[0, size)`` or equals the caller where
    self-messaging is disallowed."""


class TagError(SmpiError):
    """A message tag is invalid (negative tags are reserved for internal
    collective plumbing, mirroring MPI's reserved tag space)."""


class DeadlockError(SmpiError):
    """A blocking operation timed out — the communication pattern deadlocked.

    Real MPI would hang; the simulator turns an apparent deadlock into a
    diagnosable failure after a configurable timeout.
    """
