"""Lightweight wall-clock timing utilities.

Used by the benchmark harness and the scaling studies to measure the local
compute kernels that calibrate the machine model.  ``perf_counter`` is the
highest-resolution monotonic clock Python exposes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["WallTimer", "TimerRegistry"]


class WallTimer:
    """A start/stop wall timer usable as a context manager.

    >>> with WallTimer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def start(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("WallTimer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def __enter__(self) -> "WallTimer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class TimerRegistry:
    """Accumulates named timing samples (e.g. per-phase costs of a pipeline).

    >>> reg = TimerRegistry()
    >>> with reg.measure("qr"):
    ...     pass
    >>> reg.count("qr")
    1
    """

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = {}

    class _Measure:
        def __init__(self, registry: "TimerRegistry", name: str) -> None:
            self._registry = registry
            self._name = name
            self._timer = WallTimer()

        def __enter__(self) -> "WallTimer":
            return self._timer.start()

        def __exit__(self, *exc_info: object) -> None:
            self._timer.stop()
            self._registry.add(self._name, self._timer.elapsed)

    def measure(self, name: str) -> "_Measure":
        """Context manager recording one sample under ``name``."""
        return TimerRegistry._Measure(self, name)

    def add(self, name: str, seconds: float) -> None:
        self._samples.setdefault(name, []).append(float(seconds))

    def samples(self, name: str) -> List[float]:
        return list(self._samples.get(name, []))

    def total(self, name: str) -> float:
        return float(sum(self._samples.get(name, [])))

    def mean(self, name: str) -> float:
        samples = self._samples.get(name)
        if not samples:
            raise KeyError(f"no samples recorded under {name!r}")
        return float(sum(samples) / len(samples))

    def count(self, name: str) -> int:
        return len(self._samples.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._samples)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-name ``{count, total, mean}`` summary dictionary."""
        return {
            name: {
                "count": float(len(samples)),
                "total": float(sum(samples)),
                "mean": float(sum(samples) / len(samples)),
            }
            for name, samples in self._samples.items()
        }
