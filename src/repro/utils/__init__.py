"""Shared numerical and infrastructure utilities."""

from .linalg import (
    economy_qr,
    economy_svd,
    qr_positive,
    align_signs,
    orthogonality_defect,
    subspace_angles_deg,
    truncate_svd,
)
from .partition import BlockPartition, block_partition
from .rng import resolve_rng, spawn_rank_rngs
from .timers import WallTimer

__all__ = [
    "economy_qr",
    "economy_svd",
    "qr_positive",
    "align_signs",
    "orthogonality_defect",
    "subspace_angles_deg",
    "truncate_svd",
    "BlockPartition",
    "block_partition",
    "resolve_rng",
    "spawn_rank_rngs",
    "WallTimer",
]
