"""Dense linear-algebra helpers used throughout the library.

Conventions
-----------
* Economy-size factorizations everywhere (``full_matrices=False`` /
  ``mode="reduced"``) — the snapshot matrices of the paper are tall-skinny
  (``M >> N``) and the full factors would be catastrophically large.
* QR sign canonicalisation: ``numpy.linalg.qr`` returns a factorization that
  is unique only up to the signs of the columns of ``Q`` (and the rows of
  ``R``).  The paper works around the resulting serial/parallel mismatch with
  an ad-hoc global sign flip (``qglobal = -qglobal  # Trick for consistency``
  in Listing 4).  We instead canonicalise every QR so that ``diag(R) >= 0``
  (:func:`qr_positive`), which makes local and global factors deterministic
  and removes the need for hand-placed flips.
* Singular vectors are defined up to a global sign per mode; comparisons use
  :func:`align_signs` first.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ShapeError

try:  # pragma: no cover - exercised via economy_qr/economy_svd
    from scipy.linalg import qr as _scipy_qr
    from scipy.linalg import svd as _scipy_svd

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - numpy-only environments
    _scipy_qr = None
    _scipy_svd = None
    HAVE_SCIPY = False

__all__ = [
    "as_floating",
    "economy_qr",
    "economy_svd",
    "qr_positive",
    "align_signs",
    "orthogonality_defect",
    "subspace_angles_deg",
    "truncate_svd",
]


def as_floating(a, name: str = "array") -> np.ndarray:
    """Coerce ``a`` to a floating NumPy array, *preserving* float32/float64.

    Integer and bool inputs promote to float64; float32 stays float32 so
    memory-constrained pipelines keep their precision choice end to end.
    Complex input is rejected — the library implements the real-matrix
    algorithms of the paper.
    """
    arr = np.asarray(a)
    if np.issubdtype(arr.dtype, np.complexfloating):
        raise ShapeError(f"{name} must be real, got dtype {arr.dtype}")
    if not np.issubdtype(arr.dtype, np.floating):
        arr = arr.astype(np.float64)
    return arr


def _require_2d(a: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be a 2-D array, got ndim={arr.ndim}")
    return arr


def economy_svd(
    a: np.ndarray, overwrite_a: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Economy-size SVD ``a = U @ diag(s) @ Vt``.

    Backed by ``scipy.linalg.svd`` with ``check_finite=False`` when SciPy is
    available (both route to LAPACK ``gesdd``, so the numbers are identical
    to :func:`numpy.linalg.svd` — SciPy just skips the finite-ness
    pre-scan of the whole matrix); falls back to NumPy otherwise.  Kept as
    a function so callers never accidentally request full factors of a
    tall-skinny matrix (guide: "ask for an incomplete version of the SVD").

    Parameters
    ----------
    overwrite_a:
        Allow the backend to destroy ``a``'s contents (SciPy only).  Pass
        ``True`` only for scratch buffers the caller owns and no longer
        needs — e.g. the streaming workspace after its factors are taken.
    """
    a = _require_2d(a, "a")
    if HAVE_SCIPY and np.issubdtype(np.asarray(a).dtype, np.floating):
        return _scipy_svd(
            a,
            full_matrices=False,
            check_finite=False,
            overwrite_a=overwrite_a,
        )
    return np.linalg.svd(a, full_matrices=False)


def economy_qr(
    a: np.ndarray, overwrite_a: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Economy-size (reduced) QR factorization ``a = Q @ R``.

    SciPy-backed (``mode="economic"``, ``check_finite=False``) when
    available, with a NumPy fallback.  ``overwrite_a`` as in
    :func:`economy_svd`: opt-in scratch destruction, SciPy only.
    """
    a = _require_2d(a, "a")
    if HAVE_SCIPY and np.issubdtype(np.asarray(a).dtype, np.floating):
        return _scipy_qr(
            a, mode="economic", check_finite=False, overwrite_a=overwrite_a
        )
    return np.linalg.qr(a, mode="reduced")


def qr_positive(
    a: np.ndarray, overwrite_a: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduced QR with the sign convention ``diag(R) >= 0``.

    Flips the sign of each column ``j`` of ``Q`` (and row ``j`` of ``R``)
    whose diagonal entry ``R[j, j]`` is negative.  With this convention the
    factorization of a full-column-rank matrix is unique, which is what makes
    the distributed TSQR reduction deterministic across rank counts.  The
    sign flips are applied *in place* on the freshly factored ``Q``/``R``
    (no extra full-size temporaries on the streaming hot path).

    Returns
    -------
    (Q, R):
        ``Q`` has orthonormal columns, ``R`` is upper triangular with a
        nonnegative diagonal and ``a == Q @ R`` to round-off.
    """
    q, r = economy_qr(a, overwrite_a=overwrite_a)
    k = min(r.shape)
    signs = np.sign(np.diagonal(r)[:k])
    # sign(0) == 0 would zero out columns of a rank-deficient factor; keep
    # those columns untouched instead.
    signs = np.where(signs == 0.0, 1.0, signs)
    if k < q.shape[1]:
        q = q[:, :k]
    if k < r.shape[0]:
        r = r[:k, :]
    # q/r are freshly allocated by the factorization, so canonicalising in
    # place is safe and saves two full-size copies per QR.
    q *= signs[np.newaxis, :]
    r *= signs[:, np.newaxis]
    return q, r


def truncate_svd(
    u: np.ndarray, s: np.ndarray, vt: Optional[np.ndarray], rank: int
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Retain the leading ``rank`` triplets of an SVD, preserving order.

    ``rank`` larger than the available number of triplets is clipped rather
    than raised: streaming callers routinely ask for ``K`` modes before ``K``
    snapshots have been seen.  ``vt`` may be ``None`` (callers that only
    track the left factors — the streaming classes — need no throwaway
    right-vector dummy); it is then returned as ``None``.
    """
    if rank <= 0:
        raise ShapeError(f"rank must be positive, got {rank}")
    k = min(rank, s.shape[0])
    return u[:, :k], s[:k], None if vt is None else vt[:k, :]


def align_signs(reference: np.ndarray, candidate: np.ndarray) -> np.ndarray:
    """Flip columns of ``candidate`` to best match the signs of ``reference``.

    Singular vectors are defined up to a per-mode factor of ``-1``; any
    serial-vs-parallel comparison must be performed modulo that ambiguity.
    The returned array is a sign-flipped *copy* of ``candidate``.
    """
    reference = _require_2d(reference, "reference")
    candidate = _require_2d(candidate, "candidate")
    if reference.shape != candidate.shape:
        raise ShapeError(
            "align_signs requires equal shapes, got "
            f"{reference.shape} vs {candidate.shape}"
        )
    dots = np.einsum("ij,ij->j", reference, candidate)
    signs = np.where(dots < 0.0, -1.0, 1.0)
    return candidate * signs[np.newaxis, :]


def orthogonality_defect(q: np.ndarray) -> float:
    """``max |Q^T Q - I|`` — how far the columns of ``Q`` are from orthonormal."""
    q = _require_2d(q, "q")
    gram = q.T @ q
    return float(np.max(np.abs(gram - np.eye(gram.shape[0]))))


def subspace_angles_deg(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Principal angles (degrees) between the column spaces of ``a`` and ``b``.

    Both inputs are orthonormalised internally, so raw (non-orthonormal)
    bases are accepted.  The result is sorted ascending; a perfect subspace
    match yields all-zero angles.
    """
    a = _require_2d(a, "a")
    b = _require_2d(b, "b")
    if a.shape[0] != b.shape[0]:
        raise ShapeError(
            f"subspace bases must share the ambient dimension, got "
            f"{a.shape[0]} vs {b.shape[0]}"
        )
    qa, _ = economy_qr(a)
    qb, _ = economy_qr(b)
    sigma = np.linalg.svd(qa.T @ qb, compute_uv=False)
    sigma = np.clip(sigma, -1.0, 1.0)
    return np.degrees(np.arccos(sigma))[::-1]
