"""Per-rank logging.

SPMD programs need log lines that identify their rank and only one rank
(usually 0) chattering by default.  :func:`get_rank_logger` returns a
standard :class:`logging.Logger` whose records carry a ``[rank i/n]``
prefix; :func:`root_only` wraps any logger so that non-root ranks drop
messages below WARNING (errors always get through).
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_rank_logger", "root_only", "RankFilter"]

_FORMAT = "%(asctime)s [rank %(rank)s/%(nranks)s] %(levelname)s %(message)s"


class RankFilter(logging.Filter):
    """Injects rank/nranks fields into every record (for the formatter)."""

    def __init__(self, rank: int, nranks: int) -> None:
        super().__init__()
        self.rank = rank
        self.nranks = nranks

    def filter(self, record: logging.LogRecord) -> bool:
        record.rank = self.rank
        record.nranks = self.nranks
        return True


class _RootOnlyFilter(logging.Filter):
    """Drops sub-WARNING records on non-root ranks."""

    def __init__(self, rank: int) -> None:
        super().__init__()
        self.rank = rank

    def filter(self, record: logging.LogRecord) -> bool:
        return self.rank == 0 or record.levelno >= logging.WARNING


def get_rank_logger(
    name: str,
    rank: int,
    nranks: int,
    level: int = logging.INFO,
    handler: Optional[logging.Handler] = None,
) -> logging.Logger:
    """Logger whose records are tagged ``[rank i/n]``.

    Each ``(name, rank)`` pair gets its own logger object so ranks do not
    share handler state.  Passing an explicit ``handler`` (e.g. a
    ``logging.FileHandler`` per rank) replaces the default stream handler.
    """
    if not (0 <= rank < nranks):
        raise ValueError(f"rank {rank} outside [0, {nranks})")
    logger = logging.getLogger(f"{name}.rank{rank}")
    logger.setLevel(level)
    logger.propagate = False
    # idempotent: reconfigure rather than stack handlers on repeat calls
    logger.handlers.clear()
    logger.filters.clear()
    if handler is None:
        handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    logger.addHandler(handler)
    logger.addFilter(RankFilter(rank, nranks))
    return logger


def root_only(logger: logging.Logger, rank: int) -> logging.Logger:
    """Silence INFO/DEBUG on non-root ranks (WARNING+ always passes)."""
    logger.addFilter(_RootOnlyFilter(rank))
    return logger
