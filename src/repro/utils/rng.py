"""Seeded random-number-generator plumbing.

Randomized sketches must be reproducible (tests, benchmarks) yet independent
across SPMD ranks.  NumPy's ``SeedSequence.spawn`` gives statistically
independent child streams from one base seed, which is the recommended way to
seed parallel workers.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

__all__ = ["resolve_rng", "spawn_rank_rngs", "rank_rng"]

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def resolve_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so callers can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rank_rngs(
    seed: Optional[int], nranks: int
) -> List[np.random.Generator]:
    """Create ``nranks`` independent generators from one base seed.

    With ``seed=None`` the streams are seeded from OS entropy (still
    independent, just not reproducible).
    """
    if nranks <= 0:
        raise ValueError(f"nranks must be positive, got {nranks}")
    base = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in base.spawn(nranks)]


def rank_rng(seed: Optional[int], rank: int, nranks: int) -> np.random.Generator:
    """Generator for one rank, consistent with :func:`spawn_rank_rngs`.

    ``rank_rng(s, i, n)`` produces the same stream as
    ``spawn_rank_rngs(s, n)[i]`` without materialising the other streams,
    which lets each SPMD rank seed itself locally.
    """
    if not (0 <= rank < nranks):
        raise ValueError(f"rank {rank} outside [0, {nranks})")
    base = np.random.SeedSequence(seed)
    return np.random.default_rng(base.spawn(nranks)[rank])
