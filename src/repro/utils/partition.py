"""1-D block domain decomposition.

APMOS assumes a row-block ("domain") decomposition of the snapshot matrix:
rank ``i`` owns ``M_i`` contiguous grid points.  This module centralises the
arithmetic so every component (data generators, IO readers, the parallel SVD,
the cost model) agrees on who owns what.

The decomposition follows the standard MPI convention: with ``n`` items and
``p`` parts, the first ``n % p`` parts receive ``n // p + 1`` items and the
remainder receive ``n // p``, keeping all parts contiguous.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["BlockPartition", "block_partition"]


@dataclasses.dataclass(frozen=True)
class BlockPartition:
    """A contiguous 1-D block decomposition of ``total`` items over ``parts``.

    Attributes
    ----------
    total:
        Number of items being decomposed (e.g. global grid points ``M``).
    parts:
        Number of parts (e.g. MPI ranks).
    counts:
        ``counts[i]`` is the number of items owned by part ``i``.
    displs:
        ``displs[i]`` is the global index of the first item of part ``i``.
    """

    total: int
    parts: int
    counts: Tuple[int, ...]
    displs: Tuple[int, ...]

    def range_of(self, part: int) -> Tuple[int, int]:
        """Half-open global index range ``[start, stop)`` owned by ``part``."""
        self._check_part(part)
        start = self.displs[part]
        return start, start + self.counts[part]

    def slice_of(self, part: int) -> slice:
        """Global :class:`slice` owned by ``part``."""
        start, stop = self.range_of(part)
        return slice(start, stop)

    def owner_of(self, index: int) -> int:
        """Part owning global item ``index``."""
        if not (0 <= index < self.total):
            raise ConfigurationError(
                f"index {index} outside [0, {self.total})"
            )
        # displs is sorted; find the rightmost displacement <= index.
        return int(np.searchsorted(np.asarray(self.displs), index, side="right")) - 1

    def local_index(self, index: int) -> Tuple[int, int]:
        """Map a global index to ``(owner, local_index_within_owner)``."""
        owner = self.owner_of(index)
        return owner, index - self.displs[owner]

    def scatter(self, array: np.ndarray, axis: int = 0) -> List[np.ndarray]:
        """Split ``array`` along ``axis`` into the per-part blocks (views)."""
        if array.shape[axis] != self.total:
            raise ConfigurationError(
                f"array has {array.shape[axis]} items along axis {axis}, "
                f"partition expects {self.total}"
            )
        out = []
        for part in range(self.parts):
            index = [slice(None)] * array.ndim
            index[axis] = self.slice_of(part)
            out.append(array[tuple(index)])
        return out

    def gather(self, blocks: List[np.ndarray], axis: int = 0) -> np.ndarray:
        """Concatenate per-part blocks back into the global array."""
        if len(blocks) != self.parts:
            raise ConfigurationError(
                f"expected {self.parts} blocks, got {len(blocks)}"
            )
        for part, block in enumerate(blocks):
            if block.shape[axis] != self.counts[part]:
                raise ConfigurationError(
                    f"block {part} has {block.shape[axis]} items along axis "
                    f"{axis}, expected {self.counts[part]}"
                )
        return np.concatenate(blocks, axis=axis)

    def _check_part(self, part: int) -> None:
        if not (0 <= part < self.parts):
            raise ConfigurationError(f"part {part} outside [0, {self.parts})")

    def __iter__(self):
        """Iterate over the per-part ``(start, stop)`` ranges."""
        return (self.range_of(part) for part in range(self.parts))


def block_partition(total: int, parts: int) -> BlockPartition:
    """Build the canonical contiguous block partition.

    >>> p = block_partition(10, 3)
    >>> p.counts
    (4, 3, 3)
    >>> p.displs
    (0, 4, 7)
    """
    if total < 0:
        raise ConfigurationError(f"total must be nonnegative, got {total}")
    if parts <= 0:
        raise ConfigurationError(f"parts must be positive, got {parts}")
    base, extra = divmod(total, parts)
    counts = tuple(base + (1 if part < extra else 0) for part in range(parts))
    displs = tuple(int(x) for x in np.concatenate(([0], np.cumsum(counts)[:-1])))
    return BlockPartition(total=total, parts=parts, counts=counts, displs=displs)
