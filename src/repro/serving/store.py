"""``ModeBaseStore`` — versioned on-disk registry of named mode bases.

The paper's end product is a set of computed POD/SVD mode bases; everything
downstream (projection, reconstruction, compression, DMD) is a *query*
against a basis.  The store is the catalogue those queries resolve names
through: a directory of single-file **gathered checkpoints** (the
``kind="gathered"`` format of :mod:`repro.core.checkpoint`) plus a JSON
manifest mapping ``name -> monotonically increasing versions``.

Layout::

    <root>/
        manifest.json          {"format": 1, "bases": {name: {...}}}
        <name>.v<version>.npz  one gathered checkpoint per published version

Publishing never mutates an existing version file — a version, once
assigned, is immutable — so readers holding an open version are unaffected
by later publishes and the manifest can be rewritten atomically
(``os.replace``).

>>> store = ModeBaseStore(tmpdir)
>>> v = store.publish("burgers", modes, singular_values)
>>> base = store.get("burgers")          # latest version
>>> base.modes.shape
(2048, 10)
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import re
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..config import SVDConfig
from ..exceptions import BasisNotFoundError, ServingError, ShapeError
from ..core.checkpoint import read_checkpoint, write_checkpoint

__all__ = ["ModeBase", "ModeBaseStore", "MANIFEST_NAME"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

#: Basis names become file stems; keep them shell- and filesystem-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

PathLike = Union[str, pathlib.Path]


@dataclasses.dataclass(frozen=True)
class ModeBase:
    """One immutable published version of a named basis.

    ``modes`` are the gathered ``(n_dof, K)`` global left singular vectors;
    ``config``/``iteration``/``n_seen`` carry the streaming-SVD provenance
    recorded at publish time.
    """

    name: str
    version: int
    modes: np.ndarray
    singular_values: np.ndarray
    config: SVDConfig
    iteration: int
    n_seen: int
    path: pathlib.Path

    @property
    def n_dof(self) -> int:
        """Rows (grid degrees of freedom) of the basis."""
        return int(self.modes.shape[0])

    @property
    def n_modes(self) -> int:
        """Columns (retained modes) of the basis."""
        return int(self.modes.shape[1])


class ModeBaseStore:
    """Directory-backed registry of named, versioned mode bases.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if missing.

    Notes
    -----
    The store is a plain directory — safe to rsync, inspect with
    ``np.load``, or rebuild from the version files alone.  One process
    publishes; many may read (the serving pattern).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        if not self._manifest_path.exists():
            # A missing manifest over existing version files means a
            # damaged catalogue (partial rsync, crash) — initialising an
            # empty manifest would let publish() reassign "immutable"
            # version numbers over live data.
            strays = sorted(self.root.glob("*.v*.npz"))
            if strays:
                raise ServingError(
                    f"{self.root} holds {len(strays)} version file(s) "
                    f"(e.g. {strays[0].name}) but no {MANIFEST_NAME}; "
                    f"refusing to initialise an empty catalogue over them "
                    f"— restore the manifest or move the files away"
                )
            self._write_manifest({"format": MANIFEST_FORMAT, "bases": {}})

    # -- manifest ----------------------------------------------------------
    def _read_manifest(self) -> dict:
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ServingError(
                f"{self._manifest_path}: unreadable store manifest: {exc}"
            ) from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ServingError(
                f"{self._manifest_path}: manifest format "
                f"{manifest.get('format')!r} is not {MANIFEST_FORMAT}"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self._manifest_path.with_name(MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self._manifest_path)

    # -- catalogue queries -------------------------------------------------
    def names(self) -> List[str]:
        """Registered basis names, sorted."""
        return sorted(self._read_manifest()["bases"])

    def __contains__(self, name: str) -> bool:
        return name in self._read_manifest()["bases"]

    def versions(self, name: str) -> List[int]:
        """Published versions of ``name``, ascending."""
        entry = self._entry(name)
        return sorted(int(v) for v in entry["versions"])

    def latest_version(self, name: str) -> int:
        """The most recently published version of ``name``."""
        return int(self._entry(name)["latest"])

    def _version_record(
        self, name: str, version: Optional[int]
    ) -> Tuple[int, dict]:
        """Resolve ``version`` (``None`` = latest) to its manifest record
        with a single manifest read."""
        entry = self._entry(name)
        if version is None:
            version = int(entry["latest"])
        record = entry["versions"].get(str(int(version)))
        if record is None:
            raise BasisNotFoundError(
                f"basis {name!r} has no version {version} "
                f"(published: {sorted(int(v) for v in entry['versions'])})"
            )
        return int(version), record

    def version_info(
        self, name: str, version: Optional[int] = None
    ) -> Tuple[int, int, int]:
        """``(version, n_dof, n_modes)`` of ``name``/``version`` (default:
        latest) from the manifest alone — one file read, no array IO.

        The serving engine's per-query resolution/validation path.
        """
        version, record = self._version_record(name, version)
        return version, int(record["n_dof"]), int(record["n_modes"])

    def path_for(self, name: str, version: Optional[int] = None) -> pathlib.Path:
        """On-disk checkpoint file of ``name``/``version`` (default latest)."""
        version, record = self._version_record(name, version)
        return self.root / record["file"]

    def _entry(self, name: str) -> dict:
        entry = self._read_manifest()["bases"].get(name)
        if entry is None:
            raise BasisNotFoundError(
                f"no basis named {name!r} in store {self.root} "
                f"(registered: {self.names()})"
            )
        return entry

    # -- publish -----------------------------------------------------------
    def publish(
        self,
        name: str,
        modes: np.ndarray,
        singular_values: np.ndarray,
        *,
        config: Optional[SVDConfig] = None,
        iteration: int = 0,
        n_seen: int = 0,
    ) -> int:
        """Publish a new immutable version of ``name``; returns the version.

        ``modes`` is the gathered ``(n_dof, K)`` matrix.  ``config``
        defaults to an :class:`SVDConfig` with ``K`` matching the basis
        width, so raw arrays (e.g. from :func:`numpy.linalg.svd`) publish
        without ceremony.
        """
        if not _NAME_RE.match(name):
            raise ServingError(
                f"basis name {name!r} is not filesystem-safe "
                f"(use letters, digits, '_', '-', '.')"
            )
        modes = np.asarray(modes)
        singular_values = np.asarray(singular_values)
        if modes.ndim != 2:
            raise ShapeError(f"modes must be 2-D, got ndim={modes.ndim}")
        if singular_values.ndim != 1 or singular_values.shape[0] != modes.shape[1]:
            raise ShapeError(
                f"singular_values must be 1-D with {modes.shape[1]} entries, "
                f"got shape {singular_values.shape}"
            )
        if config is None:
            config = SVDConfig(K=modes.shape[1], ff=1.0)
        manifest = self._read_manifest()
        entry = manifest["bases"].setdefault(
            name, {"latest": 0, "versions": {}}
        )
        version = int(entry["latest"]) + 1
        filename = f"{name}.v{version}.npz"
        target = self.root / filename
        if target.exists():
            raise ServingError(
                f"{target} already exists but is not in the manifest; "
                f"versions are immutable — refusing to overwrite"
            )
        write_checkpoint(
            target,
            config,
            modes,
            singular_values,
            iteration=iteration,
            n_seen=n_seen,
            kind="gathered",
        )
        entry["versions"][str(version)] = {
            "file": filename,
            "n_dof": int(modes.shape[0]),
            "n_modes": int(modes.shape[1]),
        }
        entry["latest"] = version
        self._write_manifest(manifest)
        return version

    def publish_checkpoint(self, name: str, checkpoint_path: PathLike) -> int:
        """Ingest an existing single-file gathered checkpoint as a new
        version of ``name`` (the ``save_checkpoint(..., gathered=True)``
        export path)."""
        state = read_checkpoint(checkpoint_path)
        if state["kind"] != "gathered":
            raise ServingError(
                f"{checkpoint_path}: kind {state['kind']!r} is not "
                f"'gathered'; per-rank shards cannot be served directly — "
                f"re-save with save_checkpoint(..., gathered=True)"
            )
        return self.publish(
            name,
            state["modes"],
            state["singular_values"],
            config=state["config"],
            iteration=state["iteration"],
            n_seen=state["n_seen"],
        )

    # -- read --------------------------------------------------------------
    def get(self, name: str, version: Optional[int] = None) -> ModeBase:
        """Load ``name``/``version`` (default: latest) into a
        :class:`ModeBase`."""
        version, record = self._version_record(name, version)
        path = self.root / record["file"]
        state = read_checkpoint(path)
        return ModeBase(
            name=name,
            version=int(version),
            modes=state["modes"],
            singular_values=state["singular_values"],
            config=state["config"],
            iteration=state["iteration"],
            n_seen=state["n_seen"],
            path=path,
        )

    def describe(self) -> Dict[str, List[int]]:
        """``{name: [versions...]}`` summary of the catalogue."""
        return {name: self.versions(name) for name in self.names()}
