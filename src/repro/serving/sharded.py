"""``ShardedBasis`` — one mode basis row-partitioned across ranks.

Serving a basis is dominated by two GEMMs: projection (``U^T A``, a
row-reduction) and reconstruction (``U c``, a row-concatenation).  Both
decompose exactly along the row-block ("domain") layout the SVD itself was
computed in, so each serving rank holds only its
:func:`~repro.utils.partition.block_partition` block of ``U`` and the
distributed answers are

* ``project``: local partial products ``U_i^T A_i`` summed with a
  deterministic rank-ordered ``allreduce`` — the coefficients land,
  replicated, on every rank;
* ``reconstruct``: local products ``U_i c`` stacked with ``gatherv_rows``
  (+ broadcast), the same collective pair mode assembly uses;
* ``reconstruction_error``: the orthonormal-basis identity
  ``||A - U U^T A||_F^2 = ||A||_F^2 - ||U^T A||_F^2`` — one projection and
  one scalar reduction, no reconstruction materialised.

Any communicator satisfying the :mod:`repro.smpi.factory` protocol works,
so the same serving code runs on ``"threads"``, ``"self"``, or real MPI.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.workspace import Workspace
from ..exceptions import ShapeError
from ..smpi.reduction import SUM
from ..utils.partition import BlockPartition, block_partition

__all__ = ["ShardedBasis"]


class ShardedBasis:
    """A row-sharded orthonormal mode basis answering distributed queries.

    Construct via :meth:`from_global` (every rank holds the full matrix —
    the SPMD pattern), :meth:`from_store` (every rank reads the store
    entry and keeps only its block), or directly from a local block.

    Parameters
    ----------
    comm:
        Communicator for this rank (any :mod:`repro.smpi` backend).
    local_modes:
        This rank's ``(M_i, K)`` row block of the global basis.
    singular_values:
        Optional ``(K,)`` spectrum, replicated on every rank.
    partition:
        The global row partition; ``local_modes`` must match this rank's
        count.
    """

    def __init__(
        self,
        comm,
        local_modes: np.ndarray,
        singular_values: Optional[np.ndarray] = None,
        partition: Optional[BlockPartition] = None,
    ) -> None:
        local_modes = np.asarray(local_modes)
        if local_modes.ndim != 2:
            raise ShapeError(
                f"local_modes must be 2-D, got ndim={local_modes.ndim}"
            )
        if partition is None:
            # Single-rank convenience: the local block is the global basis.
            if comm.size != 1:
                raise ShapeError(
                    "a partition is required when comm.size > 1 "
                    "(use from_global/from_store)"
                )
            partition = block_partition(local_modes.shape[0], 1)
        if local_modes.shape[0] != partition.counts[comm.rank]:
            raise ShapeError(
                f"rank {comm.rank} holds {local_modes.shape[0]} rows but the "
                f"partition assigns it {partition.counts[comm.rank]}"
            )
        if partition.parts != comm.size:
            raise ShapeError(
                f"partition has {partition.parts} parts for a "
                f"{comm.size}-rank communicator"
            )
        self.comm = comm
        self.partition = partition
        self._local_modes = local_modes
        self._singular_values = (
            None if singular_values is None else np.asarray(singular_values)
        )
        # Reusable local-GEMM outputs: the partial products feeding the
        # collectives are scratch (the reduction/gather snapshots them), so
        # repeated queries of the same batch width allocate nothing.  Only
        # usable when the collective actually copies — on a single rank the
        # identity collectives return the buffer itself, which must then be
        # a fresh array (it escapes to the caller).
        self._workspace = Workspace()

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_global(
        cls,
        comm,
        modes: np.ndarray,
        singular_values: Optional[np.ndarray] = None,
    ) -> "ShardedBasis":
        """Shard a globally replicated ``(M, K)`` basis: each rank keeps its
        canonical block (no communication — every rank slices locally)."""
        modes = np.asarray(modes)
        if modes.ndim != 2:
            raise ShapeError(f"modes must be 2-D, got ndim={modes.ndim}")
        part = block_partition(modes.shape[0], comm.size)
        local = np.array(modes[part.slice_of(comm.rank), :])
        return cls(comm, local, singular_values, part)

    @classmethod
    def from_store(
        cls, comm, store, name: str, version: Optional[int] = None
    ) -> "ShardedBasis":
        """Load ``name``/``version`` from a
        :class:`~repro.serving.ModeBaseStore` and shard it.

        Every rank reads the (single, gathered) version file independently
        — the parallel-IO pattern of :mod:`repro.data.io` — and keeps only
        its row block.
        """
        base = store.get(name, version)
        return cls.from_global(comm, base.modes, base.singular_values)

    # -- geometry ----------------------------------------------------------
    @property
    def n_dof(self) -> int:
        """Global rows of the basis."""
        return self.partition.total

    @property
    def n_modes(self) -> int:
        """Retained modes (columns)."""
        return int(self._local_modes.shape[1])

    @property
    def local_modes(self) -> np.ndarray:
        """This rank's ``(M_i, K)`` block."""
        return self._local_modes

    @property
    def singular_values(self) -> Optional[np.ndarray]:
        """The basis spectrum, if published with one."""
        return self._singular_values

    def local_rows(self, data: np.ndarray) -> np.ndarray:
        """This rank's row block of a globally replicated ``(M, b)`` array."""
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] != self.n_dof:
            raise ShapeError(
                f"global data must be ({self.n_dof}, b), got "
                f"{getattr(data, 'shape', None)}"
            )
        return data[self.partition.slice_of(self.comm.rank), :]

    def _resolve_local(self, data: np.ndarray, local: bool) -> np.ndarray:
        if not local:
            return self.local_rows(data)
        data = np.asarray(data)
        expected = self.partition.counts[self.comm.rank]
        if data.ndim != 2 or data.shape[0] != expected:
            raise ShapeError(
                f"local data must be ({expected}, b) on rank "
                f"{self.comm.rank}, got {getattr(data, 'shape', None)}"
            )
        return data

    # -- distributed queries (collective: call on every rank) --------------
    def project(self, data: np.ndarray, local: bool = False) -> np.ndarray:
        """Coefficients ``U^T A`` of snapshots in the basis, replicated on
        every rank.

        ``data`` is the globally replicated ``(M, b)`` snapshot block, or —
        with ``local=True`` — this rank's ``(M_i, b)`` rows only (the
        in-situ case where no rank ever holds the global field).
        """
        rows = self._resolve_local(data, local)
        if self.comm.size > 1:
            dtype = np.result_type(self._local_modes.dtype, rows.dtype)
            partial = self._workspace.get(
                "project", (self.n_modes, rows.shape[1]), dtype
            )
            np.matmul(self._local_modes.T, rows, out=partial)
        else:
            partial = self._local_modes.T @ rows
        return self.comm.allreduce(partial, SUM)

    def reconstruct(self, coefficients: np.ndarray) -> np.ndarray:
        """Lift replicated ``(K, b)`` coefficients back to the global
        ``(M, b)`` field, assembled on every rank."""
        coefficients = np.asarray(coefficients)
        if coefficients.ndim != 2 or coefficients.shape[0] != self.n_modes:
            raise ShapeError(
                f"coefficients must be ({self.n_modes}, b), got "
                f"{getattr(coefficients, 'shape', None)}"
            )
        if self.comm.size > 1:
            dtype = np.result_type(
                self._local_modes.dtype, coefficients.dtype
            )
            local = self._workspace.get(
                "reconstruct",
                (self._local_modes.shape[0], coefficients.shape[1]),
                dtype,
            )
            np.matmul(self._local_modes, coefficients, out=local)
        else:
            local = self._local_modes @ coefficients
        stacked = self.comm.gatherv_rows(local, root=0)
        return self.comm.bcast(stacked, root=0)

    def reconstruction_error(
        self, data: np.ndarray, local: bool = False
    ) -> float:
        """Relative Frobenius error ``||A - U U^T A||_F / ||A||_F`` of
        representing ``data`` in the basis (0 when ``||A|| = 0``)."""
        rows = self._resolve_local(data, local)
        coeffs = self.project(rows, local=True)
        total_sq = float(self.comm.allreduce(np.sum(rows * rows), SUM))
        if total_sq == 0.0:
            return 0.0
        captured_sq = float(np.sum(coeffs * coeffs))
        residual_sq = max(total_sq - captured_sq, 0.0)
        return float(np.sqrt(residual_sq) / np.sqrt(total_sq))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedBasis(n_dof={self.n_dof}, n_modes={self.n_modes}, "
            f"shards={self.partition.parts}, rank={self.comm.rank})"
        )
