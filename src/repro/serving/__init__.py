"""``repro.serving`` — sharded serving of computed mode bases.

The compute engine (:mod:`repro.core`) *produces* bases; this subsystem
*serves* them.  Three layers:

* :class:`ModeBaseStore` — a versioned on-disk registry of named bases,
  persisted as single-file gathered checkpoints
  (``save_checkpoint(..., gathered=True)`` /
  :meth:`~repro.core.parallel.ParSVDParallel.export_to_store`).
* :class:`ShardedBasis` — one basis row-partitioned across ranks
  (:func:`~repro.utils.partition.block_partition` + the communicator
  protocol), answering project / reconstruct / reconstruction-error
  queries with distributed GEMMs.
* :class:`QueryEngine` — request micro-batching (pending queries coalesce
  into one GEMM per ``(basis, kind)`` group at flush) and an LRU cache of
  hot bases.

Quickstart::

    from repro.serving import ModeBaseStore, QueryEngine

    store = ModeBaseStore("bases/")
    store.publish("burgers", modes, singular_values)

    def serve(comm):
        engine = QueryEngine(comm, store)
        tickets = [engine.submit_project("burgers", q) for q in queries]
        engine.flush()                     # one distributed GEMM
        return [t.result() for t in tickets]

    run_backend("threads", 4, serve)
"""

from .engine import QUERY_KINDS, QueryEngine, QueryTicket
from .sharded import ShardedBasis
from .store import MANIFEST_NAME, ModeBase, ModeBaseStore

__all__ = [
    "ModeBase",
    "ModeBaseStore",
    "MANIFEST_NAME",
    "ShardedBasis",
    "QueryEngine",
    "QueryTicket",
    "QUERY_KINDS",
]
