"""``QueryEngine`` — micro-batched query serving over sharded mode bases.

Under heavy traffic the unit of work must not be the *query* (one skinny
GEMM plus one collective each) but the *flush*: the engine queues pending
queries and, per ``(basis, kind)`` group, coalesces their payloads
column-wise into **one** distributed GEMM and (at most) one extra reduction
— arithmetic intensity and collective count both improve by the batching
factor.  The answer columns are then scattered back to per-query tickets.

The engine also keeps an LRU cache of loaded :class:`ShardedBasis` objects
so hot bases are sharded once and served many times, while cold bases are
evicted instead of accumulating.

SPMD contract: the engine is a *per-rank* object and flushing is
collective.  Every rank must submit the same queries in the same order and
flush together (the natural situation when a frontend broadcasts the
request log to all serving ranks); results are replicated on every rank.

>>> engine = QueryEngine(comm, store)
>>> t1 = engine.submit_project("burgers", snapshots)
>>> t2 = engine.submit_error("burgers", snapshots)
>>> engine.flush()
2
>>> coeffs = t1.result()
"""

from __future__ import annotations

import collections
import hashlib
import threading
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..core.workspace import Workspace
from ..exceptions import BasisNotFoundError, CommunicatorError, ServingError, ShapeError
from ..obs import runtime as _obs
from ..smpi.exceptions import SmpiError
from ..smpi.reduction import SUM
from ..smpi.selfcomm import SelfCommunicator
from ..utils.partition import block_partition
from .sharded import ShardedBasis

__all__ = ["QueryEngine", "QueryTicket", "QUERY_KINDS"]

#: Query kinds the engine answers.
QUERY_KINDS = ("project", "reconstruct", "reconstruction_error")

#: In-memory bases registered via :meth:`QueryEngine.add_basis` get this
#: pseudo-version in cache keys (store versions are positive ints).
_MEM_VERSION = 0


class QueryTicket:
    """Handle to one submitted query; redeem with :meth:`result` after the
    engine flushed.

    ``degraded`` is ``True`` when the answer came from a local replica
    after the primary shard group stopped answering (see
    :meth:`QueryEngine.flush` failover) — the value is still exact, but
    it was served without the shard group's parallelism.  ``cached`` is
    ``True`` when the answer was served from the engine's keyed result
    cache without touching the shard group at all.
    """

    __slots__ = (
        "kind",
        "basis",
        "version",
        "degraded",
        "cached",
        "_value",
        "_done",
        "_fulfilled",
    )

    def __init__(self, kind: str, basis: str, version: int) -> None:
        self.kind = kind
        self.basis = basis
        self.version = version
        self.degraded = False
        self.cached = False
        self._value = None
        self._done = False
        # Cross-thread completion signal: the serving frontend redeems
        # tickets (result(timeout=...)) from HTTP handler threads while a
        # dedicated engine thread flushes.
        self._fulfilled = threading.Event()

    @property
    def done(self) -> bool:
        """Whether the answer has been computed."""
        return self._done

    def result(self, timeout: Optional[float] = None):
        """The query answer.

        Without ``timeout`` (the default) the call is instant: a pending
        ticket raises :class:`ServingError` immediately — the original
        submit/flush/redeem contract.  With ``timeout=`` (seconds) the
        call *blocks* until another thread's flush fulfils the ticket,
        raising a descriptive :class:`ServingError` on expiry — what the
        long-poll job endpoint of :mod:`repro.net` builds on.
        """
        if self._done:
            return self._value
        if timeout is None:
            raise ServingError(
                f"{self.kind} query on {self.basis!r} is still pending — "
                f"call QueryEngine.flush() first"
            )
        if not self._fulfilled.wait(timeout):
            raise ServingError(
                f"{self.kind} query on {self.basis!r} v{self.version} was "
                f"not fulfilled within {timeout:g}s — no flush answered it "
                f"in time (is a deadline scheduler running, or is the "
                f"flush_deadline_ms budget larger than the timeout?)"
            )
        return self._value

    def _fulfil(self, value, degraded: bool = False, cached: bool = False) -> None:
        self._value = value
        self.degraded = degraded
        self.cached = cached
        self._done = True
        self._fulfilled.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._done else "pending"
        if self._done and self.degraded:
            state = "done, degraded"
        return f"QueryTicket({self.kind}, {self.basis!r}, {state})"


class _Pending(NamedTuple):
    """One queued query: its ticket, payload, and bookkeeping for the
    deadline scheduler (submit time) and result cache (key, or ``None``
    when the query is uncacheable)."""

    ticket: QueryTicket
    payload: np.ndarray
    local: bool
    t_submit: float
    cache_key: Optional[Tuple[str, int, str, str]]


def payload_digest(payload: np.ndarray) -> str:
    """Content digest of a query payload (dtype + shape + raw bytes).

    The result-cache key component: two submissions with bit-identical
    payloads collide (a *hit*), any differing byte, shape or dtype does
    not.  SHA-1 is used as a content hash, not for security.
    """
    arr = np.ascontiguousarray(payload)
    hasher = hashlib.sha1()
    hasher.update(str(arr.dtype).encode())
    hasher.update(repr(arr.shape).encode())
    hasher.update(arr.tobytes())
    return hasher.hexdigest()


class QueryEngine:
    """Serve project / reconstruct / reconstruction-error queries over
    sharded bases, with request coalescing and an LRU basis cache.

    Parameters
    ----------
    comm:
        Communicator for this rank (any :mod:`repro.smpi` backend).
    store:
        Optional :class:`~repro.serving.ModeBaseStore` that basis names
        resolve through.  Without a store, register bases with
        :meth:`add_basis`.
    max_cached_bases:
        LRU capacity; least recently used sharded bases are evicted (store
        bases reload transparently on next use).
    flush_threshold:
        Auto-flush once this many queries are pending — bounds the batch
        latency without the caller managing flushes.
    flush_deadline_ms:
        Latency budget (milliseconds) of a pending query.  The engine
        never flushes spontaneously (flushing is collective) — instead
        :meth:`flush_due` turns ``True`` once the oldest pending ticket
        is older than this budget, and a scheduler (e.g. the
        :class:`repro.net.DeadlineScheduler` behind ``repro serve``)
        polls it and drives the flush.  ``None`` (the default) disables
        deadline accounting: only the size watermark flushes.
    result_cache_entries:
        Capacity of the keyed result cache: ``(basis name, version,
        kind, payload digest) -> result``.  A repeated projection /
        reconstruction / error query with a bit-identical payload is
        answered instantly at submit time, without queueing — no GEMM,
        no collective.  Version bumps miss naturally (versions resolve
        at submit).  ``local=True`` queries are never cached (their
        payloads are rank-dependent, so caching would desynchronise the
        SPMD flush schedule), and degraded (failover) results are never
        *stored* (the replica answer is exact, but a shard-group
        recovery would serve stale provenance).  ``0`` (default)
        disables the cache.
    replicate:
        Keep a full-copy *replica* of every registered/loaded basis on
        this rank (a :class:`ShardedBasis` over a single-rank
        communicator).  When a flush against the primary shard group
        fails with a communicator error — a rank crashed, a collective
        deadlocked — the engine re-runs the group against the replica,
        fulfils the outstanding tickets with ``degraded=True``, marks
        the shard group down, and serves every later flush from
        replicas too.  Store-backed bases can always fail over (the
        replica is rebuilt from the store on demand); in-memory bases
        need ``replicate`` on.  Queries submitted with ``local=True``
        cannot fail over — their payloads only cover the primary
        partition's row block.
    """

    def __init__(
        self,
        comm,
        store=None,
        *,
        max_cached_bases: int = 8,
        flush_threshold: int = 64,
        flush_deadline_ms: Optional[float] = None,
        result_cache_entries: int = 0,
        replicate: bool = False,
    ) -> None:
        if max_cached_bases < 1:
            raise ServingError(
                f"max_cached_bases must be >= 1, got {max_cached_bases}"
            )
        if flush_threshold < 1:
            raise ServingError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        if flush_deadline_ms is not None and not flush_deadline_ms > 0.0:
            raise ServingError(
                f"flush_deadline_ms must be positive or None, got "
                f"{flush_deadline_ms}"
            )
        if result_cache_entries < 0:
            raise ServingError(
                f"result_cache_entries must be >= 0, got {result_cache_entries}"
            )
        self.comm = comm
        self.store = store
        self.max_cached_bases = max_cached_bases
        self.flush_threshold = flush_threshold
        self.flush_deadline_ms = flush_deadline_ms
        self.result_cache_entries = result_cache_entries
        self.replicate = replicate
        self._cache: "collections.OrderedDict[Tuple[str, int], ShardedBasis]" = (
            collections.OrderedDict()
        )
        self._pinned: set = set()  # in-memory bases are not evictable
        # Full-copy failover replicas, keyed like the cache.  Kept outside
        # the LRU: a replica must survive exactly as long as failing over
        # to it is possible.
        self._replicas: Dict[Tuple[str, int], ShardedBasis] = {}
        # Set after the first failover: the primary shard group is down,
        # so every later flush goes straight to replicas (no point paying
        # another deadlock timeout per flush).
        self._shard_group_down = False
        self._pending: List[_Pending] = []
        # Keyed result cache: (name, version, kind, digest) -> immutable
        # answer.  Hits fulfil at submit; stores happen at flush (never
        # for degraded answers).
        self._result_cache: "collections.OrderedDict[Tuple[str, int, str, str], object]" = (
            collections.OrderedDict()
        )
        # Age (seconds) of the oldest ticket of the last flush batch, at
        # flush time — the observable the deadline-SLO tests/metrics read.
        self._last_flush_oldest_age_s = 0.0
        # Reusable column-stacking buffer for flush batches: the stacked
        # payload only feeds the distributed GEMM (which snapshots/copies),
        # so steady-state flushes of a stable batch shape allocate nothing.
        self._workspace = Workspace()
        self._stats = {
            "queries": 0,
            "flushes": 0,
            "gemms": 0,
            "collectives": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "evictions": 0,
            "failovers": 0,
            "health_reroutes": 0,
            "result_cache_hits": 0,
            "result_cache_misses": 0,
            "result_cache_evictions": 0,
            "deadline_flushes": 0,
        }

    # -- basis resolution --------------------------------------------------
    def add_basis(
        self,
        name: str,
        modes_or_basis,
        singular_values: Optional[np.ndarray] = None,
        replicate: Optional[bool] = None,
    ) -> ShardedBasis:
        """Register an in-memory basis under ``name`` (pseudo-version 0).

        Accepts a ready :class:`ShardedBasis` or a globally replicated
        modes matrix (sharded via :meth:`ShardedBasis.from_global`).
        In-memory bases are pinned: the LRU never evicts them, since there
        is no store to reload them from.  ``replicate`` (default: the
        engine's setting) additionally keeps a full local replica for
        failover — only possible when the global modes matrix is given,
        since a pre-sharded basis cannot be reassembled without the very
        shard group the replica is there to replace.
        """
        replicate = self.replicate if replicate is None else replicate
        if isinstance(modes_or_basis, ShardedBasis):
            if replicate:
                raise ServingError(
                    f"cannot replicate basis {name!r} from a pre-sharded "
                    f"ShardedBasis; pass the global modes matrix instead"
                )
            basis = modes_or_basis
        else:
            basis = ShardedBasis.from_global(
                self.comm, modes_or_basis, singular_values
            )
            if replicate:
                self._replicas[(name, _MEM_VERSION)] = ShardedBasis.from_global(
                    SelfCommunicator(), modes_or_basis, singular_values
                )
        key = (name, _MEM_VERSION)
        self._cache[key] = basis
        self._cache.move_to_end(key)
        self._pinned.add(key)
        return basis

    def _resolve_info(
        self, name: str, version: Optional[int]
    ) -> Tuple[int, int, int]:
        """``(version, n_dof, n_modes)`` for ``name``/``version`` (``None``
        = latest), with one manifest read; raises
        :class:`BasisNotFoundError` for names/versions that do not exist —
        at *submit* time, so a bad query can never poison a flush."""
        if self.store is not None:
            try:
                return self.store.version_info(name, version)
            except BasisNotFoundError:
                # Store versions are positive; only the in-memory
                # pseudo-version may still resolve below.
                if version is not None and version != _MEM_VERSION:
                    raise
        mem = self._cache.get((name, _MEM_VERSION))
        if mem is not None and version in (None, _MEM_VERSION):
            return _MEM_VERSION, mem.n_dof, mem.n_modes
        raise BasisNotFoundError(
            f"no basis named {name!r} "
            + (
                f"in store {self.store.root}"
                if self.store is not None
                else "(no store attached; use add_basis)"
            )
        )

    def _resolve_version(self, name: str, version: Optional[int]) -> int:
        return self._resolve_info(name, version)[0]

    def load(self, name: str, version: Optional[int] = None) -> ShardedBasis:
        """The sharded basis for ``name``/``version`` (default: latest),
        through the LRU cache."""
        version = self._resolve_version(name, version)
        key = (name, version)
        basis = self._cache.get(key)
        st = _obs.state()
        if basis is not None:
            self._cache.move_to_end(key)
            self._stats["cache_hits"] += 1
            if st is not None and st.registry is not None:
                st.registry.counter("repro.serving.cache_hits").inc()
            return basis
        if version == _MEM_VERSION or self.store is None:
            raise BasisNotFoundError(
                f"no basis named {name!r} version {version} is loadable"
            )
        basis = ShardedBasis.from_store(self.comm, self.store, name, version)
        self._stats["cache_misses"] += 1
        if st is not None and st.registry is not None:
            st.registry.counter("repro.serving.cache_misses").inc()
        self._cache[key] = basis
        if self.replicate and key not in self._replicas:
            self._replicas[key] = ShardedBasis.from_store(
                SelfCommunicator(), self.store, name, version
            )
        self._evict()
        return basis

    def _replica(self, name: str, version: int) -> Optional[ShardedBasis]:
        """The failover replica for ``name``/``version``, building one from
        the store on demand (store bases can always fail over)."""
        key = (name, version)
        replica = self._replicas.get(key)
        if replica is not None:
            return replica
        if self.store is None or version == _MEM_VERSION:
            return None
        try:
            replica = ShardedBasis.from_store(
                SelfCommunicator(), self.store, name, version
            )
        except BasisNotFoundError:
            return None
        self._replicas[key] = replica
        return replica

    def _evict(self) -> None:
        # Capacity governs the *evictable* population only: pinned
        # in-memory bases must not starve store bases out of the cache.
        evictable = [k for k in self._cache if k not in self._pinned]
        while len(evictable) > self.max_cached_bases:
            oldest = evictable.pop(0)
            del self._cache[oldest]
            # The replica follows its basis out (store replicas rebuild
            # on demand, so failover capability is preserved).
            self._replicas.pop(oldest, None)
            self._stats["evictions"] += 1

    @property
    def cached_bases(self) -> List[Tuple[str, int]]:
        """Cache keys, least recently used first."""
        return list(self._cache)

    # -- submission --------------------------------------------------------
    def submit(
        self,
        kind: str,
        name: str,
        payload: np.ndarray,
        version: Optional[int] = None,
        local: bool = False,
    ) -> QueryTicket:
        """Queue one query; returns its ticket.

        ``payload`` is a 2-D column block: snapshots for ``project`` /
        ``reconstruction_error`` (global rows, or this rank's block with
        ``local=True``), coefficients for ``reconstruct``.  Auto-flushes at
        ``flush_threshold`` pending queries.
        """
        if kind not in QUERY_KINDS:
            raise ServingError(
                f"query kind must be one of {QUERY_KINDS}, got {kind!r}"
            )
        payload = np.asarray(payload)
        if payload.ndim == 1:
            payload = payload[:, np.newaxis]
        if payload.ndim != 2:
            raise ShapeError(
                f"query payload must be 1-D or 2-D, got ndim={payload.ndim}"
            )
        version, n_dof, n_modes = self._resolve_info(name, version)
        # Validate rows NOW: a malformed query must fail at submission,
        # not poison the whole flush it would have batched into.
        if kind == "reconstruct":
            expected = n_modes
        elif local:
            cached = self._cache.get((name, version))
            expected = (
                cached.partition.counts[self.comm.rank]
                if cached is not None
                # Store bases shard canonically (from_store -> from_global).
                else block_partition(n_dof, self.comm.size).counts[
                    self.comm.rank
                ]
            )
        else:
            expected = n_dof
        if payload.shape[0] != expected:
            raise ShapeError(
                f"{kind} payload for basis {name!r} must have {expected} "
                f"rows{' (local block)' if local else ''}, got "
                f"{payload.shape[0]}"
            )
        ticket = QueryTicket(kind, name, version)
        self._stats["queries"] += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.serving.queries").inc()
        cache_key = None
        if self.result_cache_entries > 0 and not local:
            cache_key = (name, version, kind, payload_digest(payload))
            hit = self._result_cache.get(cache_key)
            if hit is not None:
                # Answered without queueing: no GEMM, no collective.  The
                # hit value is immutable (stored read-only); the ticket
                # gets its own writable copy, like any flush answer.
                self._result_cache.move_to_end(cache_key)
                self._stats["result_cache_hits"] += 1
                if st is not None and st.registry is not None:
                    st.registry.counter(
                        "repro.serving.result_cache_hits"
                    ).inc()
                value = hit
                if isinstance(value, np.ndarray):
                    value = np.array(value)
                ticket._fulfil(value, cached=True)
                return ticket
            self._stats["result_cache_misses"] += 1
            if st is not None and st.registry is not None:
                st.registry.counter("repro.serving.result_cache_misses").inc()
        self._pending.append(
            _Pending(ticket, payload, local, time.monotonic(), cache_key)
        )
        if len(self._pending) >= self.flush_threshold:
            self.flush()
        return ticket

    def submit_project(self, name, data, version=None, local=False):
        """Queue a projection (``U^T A``) query."""
        return self.submit("project", name, data, version, local)

    def submit_reconstruct(self, name, coefficients, version=None):
        """Queue a reconstruction (``U c``) query."""
        return self.submit("reconstruct", name, coefficients, version)

    def submit_error(self, name, data, version=None, local=False):
        """Queue a relative reconstruction-error query."""
        return self.submit("reconstruction_error", name, data, version, local)

    # -- immediate convenience wrappers ------------------------------------
    def project(self, name, data, version=None, local=False) -> np.ndarray:
        """Submit + flush + return: projection coefficients."""
        ticket = self.submit_project(name, data, version, local)
        self.flush()
        return ticket.result()

    def reconstruct(self, name, coefficients, version=None) -> np.ndarray:
        """Submit + flush + return: reconstructed global field."""
        ticket = self.submit_reconstruct(name, coefficients, version)
        self.flush()
        return ticket.result()

    def reconstruction_error(self, name, data, version=None, local=False) -> float:
        """Submit + flush + return: relative reconstruction error."""
        ticket = self.submit_error(name, data, version, local)
        self.flush()
        return ticket.result()

    # -- the batched flush -------------------------------------------------
    def flush(self) -> int:
        """Answer every pending query; returns how many were served.

        Collective: every rank must flush with identical pending queues.
        Queries are grouped by ``(basis, version, kind, local)``; each
        group's payloads are concatenated column-wise and answered by a
        single distributed GEMM (plus one scalar-vector reduction for the
        error kind), then split back onto the tickets.

        **Failover**: when a group's collective fails — a shard rank
        crashed, or this rank timed out waiting on one — the group is
        re-run against the basis's local full-copy replica (see
        ``replicate``) and its tickets are fulfilled with
        ``degraded=True``; the shard group is then marked down and every
        later flush serves from replicas directly.  A group that cannot
        fail over (no replica, or ``local=True`` payloads) re-raises as
        :class:`ServingError` with the original failure chained.
        """
        pending, self._pending = self._pending, []
        if not pending:
            return 0
        now = time.monotonic()
        oldest_age = max(now - entry.t_submit for entry in pending)
        self._last_flush_oldest_age_s = oldest_age
        if (
            self.flush_deadline_ms is not None
            and oldest_age * 1000.0 >= self.flush_deadline_ms
        ):
            self._stats["deadline_flushes"] += 1
        self._stats["flushes"] += 1
        st = _obs.state()
        t0 = time.perf_counter() if st is not None else 0.0
        with _obs.span("serving.flush", phase="flush", rank=self.comm.rank):
            groups: Dict[
                Tuple[str, int, str, bool],
                List[Tuple[QueryTicket, np.ndarray]],
            ] = collections.OrderedDict()
            for ticket, payload, local, _, _ in pending:
                key = (ticket.basis, ticket.version, ticket.kind, local)
                groups.setdefault(key, []).append((ticket, payload))
            if not self._shard_group_down and self._shard_group_unhealthy():
                # Proactive routing: a peer of the shard group is already
                # failed, suspect or dead per the health monitor — serve
                # this flush from replicas instead of committing to a
                # collective that can only time out or fail.
                self._shard_group_down = True
                self._stats["health_reroutes"] += 1
                if st is not None and st.registry is not None:
                    st.registry.counter(
                        "repro.serving.health_reroutes"
                    ).inc()
            for (name, version, kind, local), items in groups.items():
                if self._shard_group_down:
                    self._flush_degraded(name, version, kind, items, local)
                    continue
                basis = self.load(name, version)
                try:
                    if kind == "project":
                        self._flush_project(basis, items, local)
                    elif kind == "reconstruct":
                        self._flush_reconstruct(basis, items)
                    else:
                        self._flush_error(basis, items, local)
                except (CommunicatorError, SmpiError) as exc:
                    # The shard group stopped answering mid-flush.  No
                    # ticket of this group has been fulfilled yet (tickets
                    # are only fulfilled after the collectives complete),
                    # so the whole group re-runs against the replica.
                    self._shard_group_down = True
                    self._flush_degraded(
                        name, version, kind, items, local, cause=exc
                    )
            self._store_results(pending)
        if st is not None and st.registry is not None:
            st.registry.histogram("repro.serving.flush_batch").observe(
                float(len(pending))
            )
            st.registry.gauge("repro.serving.last_flush_oldest_age_s").set(
                oldest_age
            )
            st.registry.histogram("repro.serving.flush_seconds").observe(
                time.perf_counter() - t0
            )
        return len(pending)

    def _flush_degraded(
        self,
        name: str,
        version: int,
        kind: str,
        items: List[Tuple[QueryTicket, np.ndarray]],
        local: bool,
        cause: Optional[BaseException] = None,
    ) -> None:
        """Serve one flush group from the local replica (shard group down)."""
        replica = None if local else self._replica(name, version)
        if replica is None:
            reason = (
                "its payloads are rank-local blocks of the down shard group"
                if local
                else "no replica is available (register with replicate=True,"
                " or serve from a store)"
            )
            raise ServingError(
                f"cannot fail over {kind} queries on basis {name!r} "
                f"v{version}: {reason}"
            ) from cause
        self._stats["failovers"] += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.recovery.failovers").inc()
        if kind == "project":
            self._flush_project(replica, items, local=False, degraded=True)
        elif kind == "reconstruct":
            self._flush_reconstruct(replica, items, degraded=True)
        else:
            self._flush_error(replica, items, local=False, degraded=True)

    def _shard_group_unhealthy(self) -> bool:
        """Proactive probe of the shard group's health: any already-failed
        world rank, or any peer the attached
        :class:`~repro.health.monitor.HealthMonitor` classifies suspect or
        dead.  ``False`` on worlds without health state (nothing to
        consult) — the reactive failover path still covers those."""
        from ..health.daemon import communicator_world

        world, _ = communicator_world(self.comm)
        if world is None:
            return False
        if world.failed_ranks():
            return True
        health = getattr(world, "health", None)
        return health is not None and health.has_unhealthy()

    @staticmethod
    def _spans(payloads: List[np.ndarray]) -> List[Tuple[int, int]]:
        spans, offset = [], 0
        for payload in payloads:
            spans.append((offset, offset + payload.shape[1]))
            offset = spans[-1][1]
        return spans

    def _stack_columns(self, blocks: List[np.ndarray]) -> np.ndarray:
        """Column-stack a flush group into the reusable workspace buffer.

        A single-query group is passed through untouched (no copy at all);
        larger groups fill one pooled ``(rows, total_cols)`` buffer instead
        of ``np.concatenate``-ing a fresh batch array every flush.
        """
        if len(blocks) == 1:
            return blocks[0]
        width = sum(b.shape[1] for b in blocks)
        dtype = np.result_type(*[b.dtype for b in blocks])
        stacked = self._workspace.get(
            "flush_stack", (blocks[0].shape[0], width), dtype
        )
        offset = 0
        for block in blocks:
            stacked[:, offset : offset + block.shape[1]] = block
            offset += block.shape[1]
        return stacked

    def _flush_project(self, basis, items, local, degraded=False) -> None:
        payloads = [p for _, p in items]
        stacked = self._stack_columns(
            [basis._resolve_local(p, local) for p in payloads]
        )
        coeffs = basis.project(stacked, local=True)
        self._stats["gemms"] += 1
        self._stats["collectives"] += 1
        for (ticket, _), (a, b) in zip(items, self._spans(payloads)):
            # True copy (ascontiguousarray would pass a full-width slice
            # through uncopied): tickets must own writable storage — never
            # alias the batch array (mutation bleed-through, whole-batch
            # retention) or a read-only broadcast snapshot.
            ticket._fulfil(np.array(coeffs[:, a:b]), degraded)

    def _flush_reconstruct(self, basis, items, degraded=False) -> None:
        payloads = [p for _, p in items]
        stacked = basis.reconstruct(self._stack_columns(payloads))
        self._stats["gemms"] += 1
        self._stats["collectives"] += 2  # gatherv_rows + bcast
        for (ticket, _), (a, b) in zip(items, self._spans(payloads)):
            ticket._fulfil(np.array(stacked[:, a:b]), degraded)

    def _flush_error(self, basis, items, local, degraded=False) -> None:
        payloads = [p for _, p in items]
        rows = [basis._resolve_local(p, local) for p in payloads]
        coeffs = basis.project(self._stack_columns(rows), local=True)
        self._stats["gemms"] += 1
        # One vector allreduce carries every query's ||A||^2 at once,
        # folded into a pooled buffer (out=) — the per-flush reduction
        # result is consumed below and never escapes, so repeated flushes
        # allocate nothing for it.
        local_sq = np.array([float(np.sum(r * r)) for r in rows])
        total_sq = np.asarray(
            basis.comm.allreduce(
                local_sq,
                SUM,
                out=self._workspace.get(
                    "error_norms", local_sq.shape, local_sq.dtype
                ),
            )
        )
        self._stats["collectives"] += 2
        for (ticket, _), (a, b), tot in zip(
            items, self._spans(payloads), total_sq
        ):
            if tot <= 0.0:
                ticket._fulfil(0.0, degraded)
                continue
            captured = float(np.sum(coeffs[:, a:b] ** 2))
            residual = max(float(tot) - captured, 0.0)
            ticket._fulfil(
                float(np.sqrt(residual) / np.sqrt(float(tot))), degraded
            )

    # -- result cache ------------------------------------------------------
    def _store_results(self, pending: List[_Pending]) -> None:
        """Populate the result cache from a flushed batch.

        Degraded (failover) answers are never stored — the primary shard
        group may recover, and a stale replica-era entry would then keep
        masking it.  Stored arrays are frozen (``writeable=False``) so a
        ticket owner mutating *their* copy can never corrupt the cache.
        """
        if self.result_cache_entries < 1:
            return
        for entry in pending:
            if entry.cache_key is None:
                continue
            ticket = entry.ticket
            if not ticket.done or ticket.degraded:
                continue
            value = ticket._value
            if isinstance(value, np.ndarray):
                value = np.array(value)
                value.setflags(write=False)
            self._result_cache[entry.cache_key] = value
            self._result_cache.move_to_end(entry.cache_key)
        while len(self._result_cache) > self.result_cache_entries:
            self._result_cache.popitem(last=False)
            self._stats["result_cache_evictions"] += 1

    @property
    def cached_results(self) -> List[Tuple[str, int, str, str]]:
        """Result-cache keys ``(name, version, kind, digest)``, least
        recently used first."""
        return list(self._result_cache)

    # -- deadline accounting ----------------------------------------------
    def oldest_pending_age_s(self, now: Optional[float] = None) -> float:
        """Age (seconds) of the oldest pending ticket; ``0.0`` when the
        queue is empty.  The queue-pressure signal the deadline scheduler
        and ``/metrics`` poll."""
        if not self._pending:
            return 0.0
        if now is None:
            now = time.monotonic()
        return max(now - self._pending[0].t_submit, 0.0)

    def flush_due(self, now: Optional[float] = None) -> bool:
        """Whether the oldest pending ticket has exhausted its
        ``flush_deadline_ms`` latency budget (always ``False`` without a
        budget, or with an empty queue)."""
        if self.flush_deadline_ms is None or not self._pending:
            return False
        return (
            self.oldest_pending_age_s(now) * 1000.0 >= self.flush_deadline_ms
        )

    # -- instrumentation ---------------------------------------------------
    @property
    def pending(self) -> int:
        """Queries queued but not yet flushed."""
        return len(self._pending)

    def pending_by_group(self) -> Dict[Tuple[str, str], int]:
        """Pending-queue depth per ``(basis, kind)`` group — how many
        GEMM groups the next flush will pay, and how deep each is."""
        depths: Dict[Tuple[str, str], int] = {}
        for entry in self._pending:
            key = (entry.ticket.basis, entry.ticket.kind)
            depths[key] = depths.get(key, 0) + 1
        return depths

    @property
    def shard_group_down(self) -> bool:
        """Whether a failover has marked the primary shard group down
        (all flushes now serve degraded, from replicas)."""
        return self._shard_group_down

    def stats(self) -> dict:
        """Counters plus live queue pressure (a fresh dict; mutating it
        does not affect the engine).

        Counter keys: queries, flushes, gemms, collectives, cache_hits/
        cache_misses/evictions (the *basis* LRU), result_cache_hits/
        result_cache_misses/result_cache_evictions (the keyed *result*
        cache), deadline_flushes, failovers, health_reroutes.  Queue
        keys: ``pending`` (total), ``pending_by_group`` (per
        ``(basis, kind)``, keyed ``"<basis>:<kind>"`` so the dict is
        JSON-serialisable), ``oldest_pending_age_s`` and
        ``last_flush_oldest_age_s`` — what the deadline scheduler and
        the ``/metrics`` endpoint read.
        """
        snapshot = dict(self._stats)
        snapshot["pending"] = len(self._pending)
        snapshot["pending_by_group"] = {
            f"{basis}:{kind}": depth
            for (basis, kind), depth in sorted(self.pending_by_group().items())
        }
        snapshot["oldest_pending_age_s"] = self.oldest_pending_age_s()
        snapshot["last_flush_oldest_age_s"] = self._last_flush_oldest_age_s
        return snapshot
