"""``QueryEngine`` — micro-batched query serving over sharded mode bases.

Under heavy traffic the unit of work must not be the *query* (one skinny
GEMM plus one collective each) but the *flush*: the engine queues pending
queries and, per ``(basis, kind)`` group, coalesces their payloads
column-wise into **one** distributed GEMM and (at most) one extra reduction
— arithmetic intensity and collective count both improve by the batching
factor.  The answer columns are then scattered back to per-query tickets.

The engine also keeps an LRU cache of loaded :class:`ShardedBasis` objects
so hot bases are sharded once and served many times, while cold bases are
evicted instead of accumulating.

SPMD contract: the engine is a *per-rank* object and flushing is
collective.  Every rank must submit the same queries in the same order and
flush together (the natural situation when a frontend broadcasts the
request log to all serving ranks); results are replicated on every rank.

>>> engine = QueryEngine(comm, store)
>>> t1 = engine.submit_project("burgers", snapshots)
>>> t2 = engine.submit_error("burgers", snapshots)
>>> engine.flush()
2
>>> coeffs = t1.result()
"""

from __future__ import annotations

import collections
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.workspace import Workspace
from ..exceptions import BasisNotFoundError, CommunicatorError, ServingError, ShapeError
from ..obs import runtime as _obs
from ..smpi.exceptions import SmpiError
from ..smpi.reduction import SUM
from ..smpi.selfcomm import SelfCommunicator
from ..utils.partition import block_partition
from .sharded import ShardedBasis

__all__ = ["QueryEngine", "QueryTicket", "QUERY_KINDS"]

#: Query kinds the engine answers.
QUERY_KINDS = ("project", "reconstruct", "reconstruction_error")

#: In-memory bases registered via :meth:`QueryEngine.add_basis` get this
#: pseudo-version in cache keys (store versions are positive ints).
_MEM_VERSION = 0


class QueryTicket:
    """Handle to one submitted query; redeem with :meth:`result` after the
    engine flushed.

    ``degraded`` is ``True`` when the answer came from a local replica
    after the primary shard group stopped answering (see
    :meth:`QueryEngine.flush` failover) — the value is still exact, but
    it was served without the shard group's parallelism.
    """

    __slots__ = ("kind", "basis", "version", "degraded", "_value", "_done")

    def __init__(self, kind: str, basis: str, version: int) -> None:
        self.kind = kind
        self.basis = basis
        self.version = version
        self.degraded = False
        self._value = None
        self._done = False

    @property
    def done(self) -> bool:
        """Whether the answer has been computed."""
        return self._done

    def result(self):
        """The query answer; raises :class:`ServingError` before flush."""
        if not self._done:
            raise ServingError(
                f"{self.kind} query on {self.basis!r} is still pending — "
                f"call QueryEngine.flush() first"
            )
        return self._value

    def _fulfil(self, value, degraded: bool = False) -> None:
        self._value = value
        self.degraded = degraded
        self._done = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self._done else "pending"
        if self._done and self.degraded:
            state = "done, degraded"
        return f"QueryTicket({self.kind}, {self.basis!r}, {state})"


class QueryEngine:
    """Serve project / reconstruct / reconstruction-error queries over
    sharded bases, with request coalescing and an LRU basis cache.

    Parameters
    ----------
    comm:
        Communicator for this rank (any :mod:`repro.smpi` backend).
    store:
        Optional :class:`~repro.serving.ModeBaseStore` that basis names
        resolve through.  Without a store, register bases with
        :meth:`add_basis`.
    max_cached_bases:
        LRU capacity; least recently used sharded bases are evicted (store
        bases reload transparently on next use).
    flush_threshold:
        Auto-flush once this many queries are pending — bounds the batch
        latency without the caller managing flushes.
    replicate:
        Keep a full-copy *replica* of every registered/loaded basis on
        this rank (a :class:`ShardedBasis` over a single-rank
        communicator).  When a flush against the primary shard group
        fails with a communicator error — a rank crashed, a collective
        deadlocked — the engine re-runs the group against the replica,
        fulfils the outstanding tickets with ``degraded=True``, marks
        the shard group down, and serves every later flush from
        replicas too.  Store-backed bases can always fail over (the
        replica is rebuilt from the store on demand); in-memory bases
        need ``replicate`` on.  Queries submitted with ``local=True``
        cannot fail over — their payloads only cover the primary
        partition's row block.
    """

    def __init__(
        self,
        comm,
        store=None,
        *,
        max_cached_bases: int = 8,
        flush_threshold: int = 64,
        replicate: bool = False,
    ) -> None:
        if max_cached_bases < 1:
            raise ServingError(
                f"max_cached_bases must be >= 1, got {max_cached_bases}"
            )
        if flush_threshold < 1:
            raise ServingError(
                f"flush_threshold must be >= 1, got {flush_threshold}"
            )
        self.comm = comm
        self.store = store
        self.max_cached_bases = max_cached_bases
        self.flush_threshold = flush_threshold
        self.replicate = replicate
        self._cache: "collections.OrderedDict[Tuple[str, int], ShardedBasis]" = (
            collections.OrderedDict()
        )
        self._pinned: set = set()  # in-memory bases are not evictable
        # Full-copy failover replicas, keyed like the cache.  Kept outside
        # the LRU: a replica must survive exactly as long as failing over
        # to it is possible.
        self._replicas: Dict[Tuple[str, int], ShardedBasis] = {}
        # Set after the first failover: the primary shard group is down,
        # so every later flush goes straight to replicas (no point paying
        # another deadlock timeout per flush).
        self._shard_group_down = False
        self._pending: List[Tuple[QueryTicket, np.ndarray, bool]] = []
        # Reusable column-stacking buffer for flush batches: the stacked
        # payload only feeds the distributed GEMM (which snapshots/copies),
        # so steady-state flushes of a stable batch shape allocate nothing.
        self._workspace = Workspace()
        self._stats = {
            "queries": 0,
            "flushes": 0,
            "gemms": 0,
            "collectives": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "evictions": 0,
            "failovers": 0,
            "health_reroutes": 0,
        }

    # -- basis resolution --------------------------------------------------
    def add_basis(
        self,
        name: str,
        modes_or_basis,
        singular_values: Optional[np.ndarray] = None,
        replicate: Optional[bool] = None,
    ) -> ShardedBasis:
        """Register an in-memory basis under ``name`` (pseudo-version 0).

        Accepts a ready :class:`ShardedBasis` or a globally replicated
        modes matrix (sharded via :meth:`ShardedBasis.from_global`).
        In-memory bases are pinned: the LRU never evicts them, since there
        is no store to reload them from.  ``replicate`` (default: the
        engine's setting) additionally keeps a full local replica for
        failover — only possible when the global modes matrix is given,
        since a pre-sharded basis cannot be reassembled without the very
        shard group the replica is there to replace.
        """
        replicate = self.replicate if replicate is None else replicate
        if isinstance(modes_or_basis, ShardedBasis):
            if replicate:
                raise ServingError(
                    f"cannot replicate basis {name!r} from a pre-sharded "
                    f"ShardedBasis; pass the global modes matrix instead"
                )
            basis = modes_or_basis
        else:
            basis = ShardedBasis.from_global(
                self.comm, modes_or_basis, singular_values
            )
            if replicate:
                self._replicas[(name, _MEM_VERSION)] = ShardedBasis.from_global(
                    SelfCommunicator(), modes_or_basis, singular_values
                )
        key = (name, _MEM_VERSION)
        self._cache[key] = basis
        self._cache.move_to_end(key)
        self._pinned.add(key)
        return basis

    def _resolve_info(
        self, name: str, version: Optional[int]
    ) -> Tuple[int, int, int]:
        """``(version, n_dof, n_modes)`` for ``name``/``version`` (``None``
        = latest), with one manifest read; raises
        :class:`BasisNotFoundError` for names/versions that do not exist —
        at *submit* time, so a bad query can never poison a flush."""
        if self.store is not None:
            try:
                return self.store.version_info(name, version)
            except BasisNotFoundError:
                # Store versions are positive; only the in-memory
                # pseudo-version may still resolve below.
                if version is not None and version != _MEM_VERSION:
                    raise
        mem = self._cache.get((name, _MEM_VERSION))
        if mem is not None and version in (None, _MEM_VERSION):
            return _MEM_VERSION, mem.n_dof, mem.n_modes
        raise BasisNotFoundError(
            f"no basis named {name!r} "
            + (
                f"in store {self.store.root}"
                if self.store is not None
                else "(no store attached; use add_basis)"
            )
        )

    def _resolve_version(self, name: str, version: Optional[int]) -> int:
        return self._resolve_info(name, version)[0]

    def load(self, name: str, version: Optional[int] = None) -> ShardedBasis:
        """The sharded basis for ``name``/``version`` (default: latest),
        through the LRU cache."""
        version = self._resolve_version(name, version)
        key = (name, version)
        basis = self._cache.get(key)
        st = _obs.state()
        if basis is not None:
            self._cache.move_to_end(key)
            self._stats["cache_hits"] += 1
            if st is not None and st.registry is not None:
                st.registry.counter("repro.serving.cache_hits").inc()
            return basis
        if version == _MEM_VERSION or self.store is None:
            raise BasisNotFoundError(
                f"no basis named {name!r} version {version} is loadable"
            )
        basis = ShardedBasis.from_store(self.comm, self.store, name, version)
        self._stats["cache_misses"] += 1
        if st is not None and st.registry is not None:
            st.registry.counter("repro.serving.cache_misses").inc()
        self._cache[key] = basis
        if self.replicate and key not in self._replicas:
            self._replicas[key] = ShardedBasis.from_store(
                SelfCommunicator(), self.store, name, version
            )
        self._evict()
        return basis

    def _replica(self, name: str, version: int) -> Optional[ShardedBasis]:
        """The failover replica for ``name``/``version``, building one from
        the store on demand (store bases can always fail over)."""
        key = (name, version)
        replica = self._replicas.get(key)
        if replica is not None:
            return replica
        if self.store is None or version == _MEM_VERSION:
            return None
        try:
            replica = ShardedBasis.from_store(
                SelfCommunicator(), self.store, name, version
            )
        except BasisNotFoundError:
            return None
        self._replicas[key] = replica
        return replica

    def _evict(self) -> None:
        # Capacity governs the *evictable* population only: pinned
        # in-memory bases must not starve store bases out of the cache.
        evictable = [k for k in self._cache if k not in self._pinned]
        while len(evictable) > self.max_cached_bases:
            oldest = evictable.pop(0)
            del self._cache[oldest]
            # The replica follows its basis out (store replicas rebuild
            # on demand, so failover capability is preserved).
            self._replicas.pop(oldest, None)
            self._stats["evictions"] += 1

    @property
    def cached_bases(self) -> List[Tuple[str, int]]:
        """Cache keys, least recently used first."""
        return list(self._cache)

    # -- submission --------------------------------------------------------
    def submit(
        self,
        kind: str,
        name: str,
        payload: np.ndarray,
        version: Optional[int] = None,
        local: bool = False,
    ) -> QueryTicket:
        """Queue one query; returns its ticket.

        ``payload`` is a 2-D column block: snapshots for ``project`` /
        ``reconstruction_error`` (global rows, or this rank's block with
        ``local=True``), coefficients for ``reconstruct``.  Auto-flushes at
        ``flush_threshold`` pending queries.
        """
        if kind not in QUERY_KINDS:
            raise ServingError(
                f"query kind must be one of {QUERY_KINDS}, got {kind!r}"
            )
        payload = np.asarray(payload)
        if payload.ndim == 1:
            payload = payload[:, np.newaxis]
        if payload.ndim != 2:
            raise ShapeError(
                f"query payload must be 1-D or 2-D, got ndim={payload.ndim}"
            )
        version, n_dof, n_modes = self._resolve_info(name, version)
        # Validate rows NOW: a malformed query must fail at submission,
        # not poison the whole flush it would have batched into.
        if kind == "reconstruct":
            expected = n_modes
        elif local:
            cached = self._cache.get((name, version))
            expected = (
                cached.partition.counts[self.comm.rank]
                if cached is not None
                # Store bases shard canonically (from_store -> from_global).
                else block_partition(n_dof, self.comm.size).counts[
                    self.comm.rank
                ]
            )
        else:
            expected = n_dof
        if payload.shape[0] != expected:
            raise ShapeError(
                f"{kind} payload for basis {name!r} must have {expected} "
                f"rows{' (local block)' if local else ''}, got "
                f"{payload.shape[0]}"
            )
        ticket = QueryTicket(kind, name, version)
        self._pending.append((ticket, payload, local))
        self._stats["queries"] += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.serving.queries").inc()
        if len(self._pending) >= self.flush_threshold:
            self.flush()
        return ticket

    def submit_project(self, name, data, version=None, local=False):
        """Queue a projection (``U^T A``) query."""
        return self.submit("project", name, data, version, local)

    def submit_reconstruct(self, name, coefficients, version=None):
        """Queue a reconstruction (``U c``) query."""
        return self.submit("reconstruct", name, coefficients, version)

    def submit_error(self, name, data, version=None, local=False):
        """Queue a relative reconstruction-error query."""
        return self.submit("reconstruction_error", name, data, version, local)

    # -- immediate convenience wrappers ------------------------------------
    def project(self, name, data, version=None, local=False) -> np.ndarray:
        """Submit + flush + return: projection coefficients."""
        ticket = self.submit_project(name, data, version, local)
        self.flush()
        return ticket.result()

    def reconstruct(self, name, coefficients, version=None) -> np.ndarray:
        """Submit + flush + return: reconstructed global field."""
        ticket = self.submit_reconstruct(name, coefficients, version)
        self.flush()
        return ticket.result()

    def reconstruction_error(self, name, data, version=None, local=False) -> float:
        """Submit + flush + return: relative reconstruction error."""
        ticket = self.submit_error(name, data, version, local)
        self.flush()
        return ticket.result()

    # -- the batched flush -------------------------------------------------
    def flush(self) -> int:
        """Answer every pending query; returns how many were served.

        Collective: every rank must flush with identical pending queues.
        Queries are grouped by ``(basis, version, kind, local)``; each
        group's payloads are concatenated column-wise and answered by a
        single distributed GEMM (plus one scalar-vector reduction for the
        error kind), then split back onto the tickets.

        **Failover**: when a group's collective fails — a shard rank
        crashed, or this rank timed out waiting on one — the group is
        re-run against the basis's local full-copy replica (see
        ``replicate``) and its tickets are fulfilled with
        ``degraded=True``; the shard group is then marked down and every
        later flush serves from replicas directly.  A group that cannot
        fail over (no replica, or ``local=True`` payloads) re-raises as
        :class:`ServingError` with the original failure chained.
        """
        pending, self._pending = self._pending, []
        if not pending:
            return 0
        self._stats["flushes"] += 1
        st = _obs.state()
        t0 = time.perf_counter() if st is not None else 0.0
        with _obs.span("serving.flush", phase="flush", rank=self.comm.rank):
            groups: Dict[
                Tuple[str, int, str, bool],
                List[Tuple[QueryTicket, np.ndarray]],
            ] = collections.OrderedDict()
            for ticket, payload, local in pending:
                key = (ticket.basis, ticket.version, ticket.kind, local)
                groups.setdefault(key, []).append((ticket, payload))
            if not self._shard_group_down and self._shard_group_unhealthy():
                # Proactive routing: a peer of the shard group is already
                # failed, suspect or dead per the health monitor — serve
                # this flush from replicas instead of committing to a
                # collective that can only time out or fail.
                self._shard_group_down = True
                self._stats["health_reroutes"] += 1
                if st is not None and st.registry is not None:
                    st.registry.counter(
                        "repro.serving.health_reroutes"
                    ).inc()
            for (name, version, kind, local), items in groups.items():
                if self._shard_group_down:
                    self._flush_degraded(name, version, kind, items, local)
                    continue
                basis = self.load(name, version)
                try:
                    if kind == "project":
                        self._flush_project(basis, items, local)
                    elif kind == "reconstruct":
                        self._flush_reconstruct(basis, items)
                    else:
                        self._flush_error(basis, items, local)
                except (CommunicatorError, SmpiError) as exc:
                    # The shard group stopped answering mid-flush.  No
                    # ticket of this group has been fulfilled yet (tickets
                    # are only fulfilled after the collectives complete),
                    # so the whole group re-runs against the replica.
                    self._shard_group_down = True
                    self._flush_degraded(
                        name, version, kind, items, local, cause=exc
                    )
        if st is not None and st.registry is not None:
            st.registry.histogram("repro.serving.flush_batch").observe(
                float(len(pending))
            )
            st.registry.histogram("repro.serving.flush_seconds").observe(
                time.perf_counter() - t0
            )
        return len(pending)

    def _flush_degraded(
        self,
        name: str,
        version: int,
        kind: str,
        items: List[Tuple[QueryTicket, np.ndarray]],
        local: bool,
        cause: Optional[BaseException] = None,
    ) -> None:
        """Serve one flush group from the local replica (shard group down)."""
        replica = None if local else self._replica(name, version)
        if replica is None:
            reason = (
                "its payloads are rank-local blocks of the down shard group"
                if local
                else "no replica is available (register with replicate=True,"
                " or serve from a store)"
            )
            raise ServingError(
                f"cannot fail over {kind} queries on basis {name!r} "
                f"v{version}: {reason}"
            ) from cause
        self._stats["failovers"] += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.recovery.failovers").inc()
        if kind == "project":
            self._flush_project(replica, items, local=False, degraded=True)
        elif kind == "reconstruct":
            self._flush_reconstruct(replica, items, degraded=True)
        else:
            self._flush_error(replica, items, local=False, degraded=True)

    def _shard_group_unhealthy(self) -> bool:
        """Proactive probe of the shard group's health: any already-failed
        world rank, or any peer the attached
        :class:`~repro.health.monitor.HealthMonitor` classifies suspect or
        dead.  ``False`` on worlds without health state (nothing to
        consult) — the reactive failover path still covers those."""
        from ..health.daemon import communicator_world

        world, _ = communicator_world(self.comm)
        if world is None:
            return False
        if world.failed_ranks():
            return True
        health = getattr(world, "health", None)
        return health is not None and health.has_unhealthy()

    @staticmethod
    def _spans(payloads: List[np.ndarray]) -> List[Tuple[int, int]]:
        spans, offset = [], 0
        for payload in payloads:
            spans.append((offset, offset + payload.shape[1]))
            offset = spans[-1][1]
        return spans

    def _stack_columns(self, blocks: List[np.ndarray]) -> np.ndarray:
        """Column-stack a flush group into the reusable workspace buffer.

        A single-query group is passed through untouched (no copy at all);
        larger groups fill one pooled ``(rows, total_cols)`` buffer instead
        of ``np.concatenate``-ing a fresh batch array every flush.
        """
        if len(blocks) == 1:
            return blocks[0]
        width = sum(b.shape[1] for b in blocks)
        dtype = np.result_type(*[b.dtype for b in blocks])
        stacked = self._workspace.get(
            "flush_stack", (blocks[0].shape[0], width), dtype
        )
        offset = 0
        for block in blocks:
            stacked[:, offset : offset + block.shape[1]] = block
            offset += block.shape[1]
        return stacked

    def _flush_project(self, basis, items, local, degraded=False) -> None:
        payloads = [p for _, p in items]
        stacked = self._stack_columns(
            [basis._resolve_local(p, local) for p in payloads]
        )
        coeffs = basis.project(stacked, local=True)
        self._stats["gemms"] += 1
        self._stats["collectives"] += 1
        for (ticket, _), (a, b) in zip(items, self._spans(payloads)):
            # True copy (ascontiguousarray would pass a full-width slice
            # through uncopied): tickets must own writable storage — never
            # alias the batch array (mutation bleed-through, whole-batch
            # retention) or a read-only broadcast snapshot.
            ticket._fulfil(np.array(coeffs[:, a:b]), degraded)

    def _flush_reconstruct(self, basis, items, degraded=False) -> None:
        payloads = [p for _, p in items]
        stacked = basis.reconstruct(self._stack_columns(payloads))
        self._stats["gemms"] += 1
        self._stats["collectives"] += 2  # gatherv_rows + bcast
        for (ticket, _), (a, b) in zip(items, self._spans(payloads)):
            ticket._fulfil(np.array(stacked[:, a:b]), degraded)

    def _flush_error(self, basis, items, local, degraded=False) -> None:
        payloads = [p for _, p in items]
        rows = [basis._resolve_local(p, local) for p in payloads]
        coeffs = basis.project(self._stack_columns(rows), local=True)
        self._stats["gemms"] += 1
        # One vector allreduce carries every query's ||A||^2 at once,
        # folded into a pooled buffer (out=) — the per-flush reduction
        # result is consumed below and never escapes, so repeated flushes
        # allocate nothing for it.
        local_sq = np.array([float(np.sum(r * r)) for r in rows])
        total_sq = np.asarray(
            basis.comm.allreduce(
                local_sq,
                SUM,
                out=self._workspace.get(
                    "error_norms", local_sq.shape, local_sq.dtype
                ),
            )
        )
        self._stats["collectives"] += 2
        for (ticket, _), (a, b), tot in zip(
            items, self._spans(payloads), total_sq
        ):
            if tot <= 0.0:
                ticket._fulfil(0.0, degraded)
                continue
            captured = float(np.sum(coeffs[:, a:b] ** 2))
            residual = max(float(tot) - captured, 0.0)
            ticket._fulfil(
                float(np.sqrt(residual) / np.sqrt(float(tot))), degraded
            )

    # -- instrumentation ---------------------------------------------------
    @property
    def pending(self) -> int:
        """Queries queued but not yet flushed."""
        return len(self._pending)

    @property
    def shard_group_down(self) -> bool:
        """Whether a failover has marked the primary shard group down
        (all flushes now serve degraded, from replicas)."""
        return self._shard_group_down

    @property
    def stats(self) -> dict:
        """Counters: queries, flushes, gemms, collectives, cache hits/
        misses, evictions, failovers, health_reroutes (a copy; mutating
        it does not affect the engine)."""
        return dict(self._stats)
