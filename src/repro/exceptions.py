"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to discriminate finer-grained failure classes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "NotInitializedError",
    "DataFormatError",
    "CommunicatorError",
    "ServingError",
    "BasisNotFoundError",
    "HealthError",
    "RescaleError",
    # Re-exported lazily from repro.smpi.exceptions (which imports this
    # module, so a top-level import here would be circular).
    "SmpiError",
    "DeadlockError",
    "FailedRankError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied (e.g. ``K <= 0``)."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible shape.

    Raised, for instance, when a streamed batch does not have the same number
    of rows as the batch used for initialization, or when a snapshot matrix is
    not two-dimensional.
    """


class NotInitializedError(ReproError, RuntimeError):
    """An operation requiring prior initialization was called too early.

    ``incorporate_data`` and the results properties (``modes``,
    ``singular_values``) require :meth:`initialize` to have been called first.
    """


class DataFormatError(ReproError, ValueError):
    """A snapshot container file is malformed or version-incompatible."""


class CommunicatorError(ReproError, RuntimeError):
    """An invalid communicator operation (bad rank, mismatched collective...)."""


class ServingError(ReproError, RuntimeError):
    """A mode-base serving operation was misused (e.g. reading a query
    ticket before the engine flushed it)."""


class BasisNotFoundError(ServingError):
    """A :class:`~repro.serving.ModeBaseStore` lookup named a basis or
    version that the store does not hold."""


class HealthError(ReproError, RuntimeError):
    """A liveness/health failure detected by :mod:`repro.health` — e.g. a
    peer rank stopped heartbeating and was declared dead."""


class RescaleError(HealthError):
    """A live mid-stream rescale could not be performed (invalid target
    size, no elastic capability, or the shrink floor was reached)."""


# ``DeadlockError``/``FailedRankError``/``SmpiError`` live in
# ``repro.smpi.exceptions`` (which subclasses ``CommunicatorError`` from
# this module — importing them eagerly here would be circular).  PEP 562
# module __getattr__ re-exports them so ``from repro.exceptions import
# FailedRankError`` works alongside the native classes above.
_SMPI_EXPORTS = ("SmpiError", "DeadlockError", "FailedRankError")


def __getattr__(name: str):
    if name in _SMPI_EXPORTS:
        from .smpi import exceptions as _smpi_exceptions

        return getattr(_smpi_exceptions, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
