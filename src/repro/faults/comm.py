"""``FaultyCommunicator`` — the injection proxy over any communicator.

Same transparent-proxy idiom as :class:`~repro.obs.comm.
ObservedCommunicator`: intercepted ops get a lazily built wrapper cached
on the instance (steady-state dispatch is one instance-dict hit),
everything else delegates to the wrapped communicator.  The wrapper
layers *outside* the metrics observer, so injected delays show up in the
observed op latencies — exactly like a genuinely slow rank would.

Crash stickiness lives here, not in the controller: once the controller
kills this rank, every further op on *this wrapper* raises again (the
rank is dead for the rest of the attempt), while the controller's
fire-once bookkeeping lets the next attempt's fresh wrappers run clean.
"""

from __future__ import annotations

from typing import Any, Optional

from ..smpi.request import SendRequest
from .controller import SEND_OPS, FaultController, InjectedCrash

__all__ = ["FaultyCommunicator"]

#: Every op the proxy intercepts (superset of the observed/timed ops —
#: anything that communicates).  Internals and probes pass through.
INTERCEPTED_OPS = frozenset(
    {
        "send",
        "recv",
        "sendrecv",
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "gatherv_rows",
        "scatterv_rows",
        "reduce",
        "allreduce",
        "alltoall",
        "scan",
        "exscan",
        "reduce_scatter",
        "barrier",
        "Send",
        "Recv",
        "Bcast",
        "Gather",
        "Scatter",
        "Allgather",
        "Allreduce",
        "isend",
        "irecv",
        "ibcast",
        "igatherv_rows",
        "iallreduce",
        "ialltoall",
    }
)


class FaultyCommunicator:
    """Fault-injecting proxy over a (possibly observed) communicator."""

    def __init__(self, comm: Any, controller: FaultController) -> None:
        self._comm = comm
        self._controller = controller
        self._dead: Optional[InjectedCrash] = None

    @property
    def inner(self) -> Any:
        return self._comm

    @property
    def controller(self) -> FaultController:
        return self._controller

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    def Get_rank(self) -> int:
        return self._comm.rank

    def Get_size(self) -> int:
        return self._comm.size

    def split(self, color: Optional[int], key: int = 0) -> Any:
        sub = self._comm.split(color, key)
        if sub is None:
            return None
        return FaultyCommunicator(sub, self._controller)

    def dup(self) -> "FaultyCommunicator":
        return FaultyCommunicator(self._comm.dup(), self._controller)

    def _make_faulty(self, op: str) -> Any:
        target = getattr(self._comm, op)
        controller = self._controller
        droppable = op in SEND_OPS
        nonblocking = op.startswith("i")

        def faulty(*args: Any, **kwargs: Any) -> Any:
            if self._dead is not None:
                # Sticky crash: the rank died earlier this attempt.
                raise InjectedCrash(
                    self._dead.rank, self._dead.op, self._dead.nth
                )
            try:
                drop = controller.apply(self._comm.rank, op)
            except InjectedCrash as exc:
                self._dead = exc
                raise
            if drop and droppable:
                # Swallowed send: the message never leaves this rank.
                return SendRequest() if nonblocking else None
            return target(*args, **kwargs)

        faulty.__name__ = op
        return faulty

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        if name in INTERCEPTED_OPS:
            wrapper = self._make_faulty(name)
            # Cache on the instance: subsequent calls bypass __getattr__.
            self.__dict__[name] = wrapper
            return wrapper
        return getattr(self._comm, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyCommunicator({self._comm!r})"
