"""Process-global fault-injection state, mirroring :mod:`repro.obs.runtime`.

The :mod:`repro.smpi` factories call :func:`inject_communicator` on every
communicator they hand out; unless a fault plan is installed it returns
the communicator untouched, so normal runs pay one module-global read.

``install`` is reference-counted like the obs runtime's: the per-rank
:class:`~repro.api.Session` objects of one threads run each install with
the same :class:`~repro.config.FaultConfig` and the state stays active
until the last one closes.  Crucially, a caller may pin a pre-built
:class:`~repro.faults.controller.FaultController` (``Session.run``'s
retry loop does) so the fire-once crash bookkeeping survives across
restart attempts — otherwise every attempt would re-create the
controller and re-crash forever.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from ..config import FaultConfig
from .controller import FaultController

__all__ = [
    "install",
    "uninstall",
    "state",
    "active",
    "inject_communicator",
]

_LOCK = threading.Lock()
_STATE: Optional[FaultController] = None
_DEPTH = 0


def install(
    config: Optional[FaultConfig] = None,
    *,
    controller: Optional[FaultController] = None,
) -> Optional[FaultController]:
    """Activate fault injection; reference-counted.

    The first install decides the controller — an explicitly pinned one,
    or a fresh :class:`FaultController` built from ``config``.  Nested
    installs (the per-rank sessions of one run) just increment the
    count; their config is ignored in favour of the active controller.
    Installing with neither a controller nor an *active* config
    (``config.active``) is a recorded no-op: it still increments the
    count (pair every call with :func:`uninstall`) but activates
    nothing.
    """
    global _STATE, _DEPTH
    with _LOCK:
        if _STATE is None:
            if controller is not None:
                _STATE = controller
            elif config is not None and config.active:
                _STATE = FaultController(config)
        _DEPTH += 1
        return _STATE


def uninstall() -> None:
    """Drop one install reference; deactivates at zero."""
    global _STATE, _DEPTH
    with _LOCK:
        if _DEPTH <= 0:
            return
        _DEPTH -= 1
        if _DEPTH == 0:
            _STATE = None


def state() -> Optional[FaultController]:
    """The active controller, or ``None`` when injection is off."""
    return _STATE


def active() -> bool:
    return _STATE is not None


def inject_communicator(comm: Any) -> Any:
    """Wrap ``comm`` for fault injection when active; pass through
    otherwise.  Idempotent — already-wrapped communicators are returned
    as-is."""
    st = _STATE
    if st is None:
        return comm
    from .comm import FaultyCommunicator

    if isinstance(comm, FaultyCommunicator):
        return comm
    return FaultyCommunicator(comm, st)
